//! Threaded real-time runtime.
//!
//! Drives the same [`Process`] state machines as the simulator, but on real
//! OS threads with real time: one thread per node, crossbeam channels as
//! links, `recv_timeout` as the timer wheel. Used by the examples and the
//! integration tests to show the production logic working outside the
//! simulator. Fault injection and the bandwidth model are simulator-only;
//! here messages deliver as fast as channels allow, and
//! [`Context::consume`](crate::process::Context::consume) optionally maps to
//! a real `sleep` via [`ThreadedConfig::time_dilation`].

// lint:allow-file(no-wall-clock): this runtime exists to drive real OS time;
// the determinism contract applies to the sim runtime only.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::process::{Action, Context, NodeId, Process, TimerToken};
use crate::rng::Rng;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

enum Envelope<M> {
    Msg { from: NodeId, msg: M },
    Stop,
}

/// Configuration for the threaded runtime.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// RNG seed (per-node generators are forked from it).
    pub seed: u64,
    /// Multiplier applied to `ctx.consume(us)` when converting it into a
    /// real sleep. `0.0` disables sleeping entirely (fastest); `1.0` sleeps
    /// the full consumed time.
    pub time_dilation: f64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { seed: 0, time_dilation: 0.0 }
    }
}

/// Builds a [`ThreadedCluster`].
pub struct ThreadedClusterBuilder<M: Send + 'static> {
    processes: Vec<Box<dyn Process<M> + Send>>,
    config: ThreadedConfig,
}

impl<M: Send + 'static> ThreadedClusterBuilder<M> {
    /// Creates a builder.
    pub fn new(config: ThreadedConfig) -> Self {
        ThreadedClusterBuilder { processes: Vec::new(), config }
    }

    /// Adds a node; ids are assigned in insertion order starting at 0.
    pub fn add_node(mut self, process: impl Process<M> + Send + 'static) -> Self {
        self.processes.push(Box::new(process));
        self
    }

    /// Spawns all node threads and returns the running cluster.
    pub fn build(self) -> ThreadedCluster<M> {
        let n = self.processes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let (client_tx, client_rx) = unbounded::<(NodeId, M)>();
        let trace = Arc::new(Mutex::new(Trace::new()));
        let start = Instant::now();
        let mut seed_rng = Rng::new(self.config.seed);

        let mut handles = Vec::with_capacity(n);
        for (i, process) in self.processes.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let rx = receivers[i].clone();
            let all_senders = senders.clone();
            let client_tx = client_tx.clone();
            let trace = Arc::clone(&trace);
            let mut rng = seed_rng.fork();
            let dilation = self.config.time_dilation;
            let handle = std::thread::Builder::new()
                .name(format!("mystore-node-{i}"))
                .spawn(move || {
                    node_main(
                        id,
                        process,
                        rx,
                        all_senders,
                        client_tx,
                        trace,
                        start,
                        &mut rng,
                        dilation,
                    )
                })
                .expect("spawn node thread");
            handles.push(handle);
        }

        ThreadedCluster { senders, handles, trace, client_rx, start }
    }
}

/// A running cluster of node threads.
pub struct ThreadedCluster<M: Send + 'static> {
    senders: Vec<Sender<Envelope<M>>>,
    handles: Vec<JoinHandle<()>>,
    trace: Arc<Mutex<Trace>>,
    client_rx: Receiver<(NodeId, M)>,
    start: Instant,
}

impl<M: Send + 'static> ThreadedCluster<M> {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends `msg` to `to` as [`NodeId::EXTERNAL`] (e.g. a test harness or a
    /// CLI acting as the client).
    pub fn send(&self, to: NodeId, msg: M) {
        if let Some(tx) = self.senders.get(to.0 as usize) {
            let _ = tx.send(Envelope::Msg { from: NodeId::EXTERNAL, msg });
        }
    }

    /// Receives the next message any node addressed to
    /// [`NodeId::EXTERNAL`], with a timeout. Returns `(sender, message)`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, M)> {
        self.client_rx.recv_timeout(timeout).ok()
    }

    /// Elapsed run time as a [`SimTime`] (µs since cluster start).
    pub fn elapsed(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    /// Snapshot of the recorded trace.
    pub fn trace_snapshot(&self) -> Trace {
        self.trace.lock().clone()
    }

    /// Stops all node threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn node_main<M: Send + 'static>(
    id: NodeId,
    mut process: Box<dyn Process<M> + Send>,
    rx: Receiver<Envelope<M>>,
    senders: Vec<Sender<Envelope<M>>>,
    client_tx: Sender<(NodeId, M)>,
    trace: Arc<Mutex<Trace>>,
    start: Instant,
    rng: &mut Rng,
    dilation: f64,
) {
    // (fire_at, token); Reverse for a min-heap.
    let mut timers: BinaryHeap<Reverse<(Instant, TimerToken)>> = BinaryHeap::new();
    let mut actions: Vec<Action<M>> = Vec::new();

    let run_handler = |process: &mut Box<dyn Process<M> + Send>,
                       actions: &mut Vec<Action<M>>,
                       rng: &mut Rng,
                       timers: &mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
                       input: HandlerInput<M>|
     -> bool {
        let now = SimTime(start.elapsed().as_micros() as u64);
        let consumed = {
            let mut ctx = Context::new(now, id, actions, rng, None);
            match input {
                HandlerInput::Start => process.on_start(&mut ctx),
                HandlerInput::Msg { from, msg } => process.on_message(&mut ctx, from, msg),
                HandlerInput::Timer(token) => process.on_timer(&mut ctx, token),
            }
            ctx.consumed()
        };
        if dilation > 0.0 && consumed > 0 {
            std::thread::sleep(Duration::from_micros((consumed as f64 * dilation) as u64));
        }
        let mut stop = false;
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if to == NodeId::EXTERNAL {
                        let _ = client_tx.send((id, msg));
                    } else if let Some(tx) = senders.get(to.0 as usize) {
                        let _ = tx.send(Envelope::Msg { from: id, msg });
                    }
                }
                Action::SetTimer { delay_us, token } => {
                    timers.push(Reverse((Instant::now() + Duration::from_micros(delay_us), token)));
                }
                Action::Record { name, value } => {
                    trace.lock().push(TraceEvent {
                        time: SimTime(start.elapsed().as_micros() as u64),
                        node: id,
                        name,
                        value,
                    });
                }
                Action::CrashSelf { .. } => {
                    // In the threaded runtime a crash simply stops the node
                    // thread; scripted recovery is a simulator feature.
                    stop = true;
                }
            }
        }
        stop
    };

    if run_handler(&mut process, &mut actions, rng, &mut timers, HandlerInput::Start) {
        return;
    }

    loop {
        // Fire due timers first.
        let now = Instant::now();
        while let Some(Reverse((at, _))) = timers.peek() {
            if *at > now {
                break;
            }
            let Reverse((_, token)) = timers.pop().expect("peeked");
            if run_handler(&mut process, &mut actions, rng, &mut timers, HandlerInput::Timer(token))
            {
                return;
            }
        }
        let timeout = timers
            .peek()
            .map(|Reverse((at, _))| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100));
        match rx.recv_timeout(timeout) {
            Ok(Envelope::Msg { from, msg }) => {
                if run_handler(
                    &mut process,
                    &mut actions,
                    rng,
                    &mut timers,
                    HandlerInput::Msg { from, msg },
                ) {
                    return;
                }
            }
            Ok(Envelope::Stop) => return,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

enum HandlerInput<M> {
    Start,
    Msg { from: NodeId, msg: M },
    Timer(TimerToken),
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Process<u64> for Echo {
        fn on_start(&mut self, _ctx: &mut Context<'_, u64>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            ctx.send(from, msg + 1);
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, _t: TimerToken) {}
    }

    struct Forwarder {
        next: NodeId,
    }
    impl Process<u64> for Forwarder {
        fn on_start(&mut self, _ctx: &mut Context<'_, u64>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            ctx.send(self.next, msg * 2);
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, _t: TimerToken) {}
    }

    struct Ticker {
        period_us: u64,
        ticks: u64,
        report_to: NodeId,
    }
    impl Process<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(self.period_us, 1);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _f: NodeId, _m: u64) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _t: TimerToken) {
            self.ticks += 1;
            ctx.record("tick", self.ticks as f64);
            if self.ticks < 3 {
                ctx.set_timer(self.period_us, 1);
            } else {
                ctx.send(self.report_to, self.ticks);
            }
        }
    }

    #[test]
    fn external_round_trip() {
        let cluster = ThreadedClusterBuilder::new(ThreadedConfig::default()).add_node(Echo).build();
        cluster.send(NodeId(0), 41);
        let (from, reply) = cluster.recv_timeout(Duration::from_secs(2)).expect("reply");
        assert_eq!(from, NodeId(0));
        assert_eq!(reply, 42);
        cluster.shutdown();
    }

    #[test]
    fn inter_node_forwarding_reaches_external() {
        // EXTERNAL -> fwd(0) -> fwd(1) -> echo replies to sender(1)? No:
        // chain 0 -> 1 -> EXTERNAL via a forwarder pointing at EXTERNAL.
        let cluster = ThreadedClusterBuilder::new(ThreadedConfig::default())
            .add_node(Forwarder { next: NodeId(1) })
            .add_node(Forwarder { next: NodeId::EXTERNAL })
            .build();
        cluster.send(NodeId(0), 3);
        let (from, v) = cluster.recv_timeout(Duration::from_secs(2)).expect("msg");
        assert_eq!(from, NodeId(1));
        assert_eq!(v, 12);
        cluster.shutdown();
    }

    #[test]
    fn timers_fire_and_record() {
        let cluster = ThreadedClusterBuilder::new(ThreadedConfig::default())
            .add_node(Ticker { period_us: 2_000, ticks: 0, report_to: NodeId::EXTERNAL })
            .build();
        let (_, ticks) = cluster.recv_timeout(Duration::from_secs(5)).expect("ticks");
        assert_eq!(ticks, 3);
        let trace = cluster.trace_snapshot();
        assert_eq!(trace.count("tick"), 3);
        cluster.shutdown();
    }
}
