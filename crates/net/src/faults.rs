//! Fault injection: the paper's Table 2 per-operation faults, plus a
//! deterministic, scriptable fault-event subsystem for availability drills.
//!
//! **Per-operation faults** ([`FaultPlan`]) reproduce the evaluation's four
//! fault types with fixed per-operation probabilities:
//!
//! | # | type  | reason              | probability |
//! |---|-------|---------------------|-------------|
//! | 1 | short | network exception   | 0.1         |
//! | 2 | short | disk IO error       | 0.002       |
//! | 3 | short | blocking processing | 0.002       |
//! | 4 | long  | node breakdown      | 0.001       |
//!
//! *Short* failures self-recover (paper §5.2.4); *long* failures persist
//! until membership action removes or restores the node. The runtime samples
//! at most one fault per handled operation and hands it to the process via
//! [`Context::take_op_fault`](crate::process::Context::take_op_fault); the
//! process decides what the fault means for the operation it is executing.
//!
//! **Fault schedules** ([`FaultSchedule`]) script cluster-level events in
//! virtual time: node crash/restart, symmetric and one-way link cuts (for
//! asymmetric partitions), heals, and per-link message chaos
//! ([`LinkFaultRule`]: drop / duplicate / delay / reorder with seeded
//! probabilities). Schedules are built programmatically or parsed from a
//! small text format (see [`FaultSchedule::parse`]) and applied to a
//! simulator with `Sim::apply_schedule`; everything derives from the
//! simulator seed, so a failed chaos run reproduces exactly.

use std::fmt;

use mystore_obs::{Counter, Registry};

use crate::process::NodeId;
use crate::rng::Rng;

/// A fault drawn for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFault {
    /// Short: the message effectively never reaches the replica (or its ack
    /// is lost). The coordinator sees a timeout.
    NetworkException,
    /// Short: the local storage engine returns an I/O error.
    DiskIoError,
    /// Short: the serving process stalls; the node's server is blocked for a
    /// sampled interval, delaying everything behind it.
    BlockedProcess,
    /// Long: the node breaks down and stays offline until recovered by the
    /// operator / membership layer.
    NodeBreakdown,
}

impl OpFault {
    /// True for the paper's *short failure* class.
    pub fn is_short(self) -> bool {
        !matches!(self, OpFault::NodeBreakdown)
    }
}

/// Per-operation fault probabilities (paper Table 2) plus recovery-interval
/// parameters for the short faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// P(network exception) per operation.
    pub p_network: f64,
    /// P(disk IO error) per operation.
    pub p_disk: f64,
    /// P(blocking process) per operation.
    pub p_block: f64,
    /// P(node breakdown) per operation.
    pub p_breakdown: f64,
    /// How long a blocked process stalls, sampled uniformly from this range (µs).
    pub block_range_us: (u64, u64),
}

impl FaultPlan {
    /// No faults at all (the paper's *no-fault* runs).
    pub fn none() -> Self {
        FaultPlan {
            p_network: 0.0,
            p_disk: 0.0,
            p_block: 0.0,
            p_breakdown: 0.0,
            block_range_us: (10_000, 100_000),
        }
    }

    /// Exactly Table 2 of the paper.
    pub fn paper_table2() -> Self {
        FaultPlan {
            p_network: 0.1,
            p_disk: 0.002,
            p_block: 0.002,
            p_breakdown: 0.001,
            block_range_us: (10_000, 100_000),
        }
    }

    /// True when every probability is zero (sampling can be skipped).
    pub fn is_none(&self) -> bool {
        self.p_network == 0.0
            && self.p_disk == 0.0
            && self.p_block == 0.0
            && self.p_breakdown == 0.0
    }

    /// Draws at most one fault for an operation. Faults are tested in Table 2
    /// order; probabilities are small enough that the order is immaterial in
    /// practice but a fixed order keeps runs deterministic.
    pub fn sample(&self, rng: &mut Rng) -> Option<OpFault> {
        if self.is_none() {
            return None;
        }
        if rng.chance(self.p_network) {
            Some(OpFault::NetworkException)
        } else if rng.chance(self.p_disk) {
            Some(OpFault::DiskIoError)
        } else if rng.chance(self.p_block) {
            Some(OpFault::BlockedProcess)
        } else if rng.chance(self.p_breakdown) {
            Some(OpFault::NodeBreakdown)
        } else {
            None
        }
    }

    /// Samples a blocked-process stall duration.
    pub fn sample_block_us(&self, rng: &mut Rng) -> u64 {
        let (lo, hi) = self.block_range_us;
        if lo >= hi {
            lo
        } else {
            rng.range_u64(lo, hi)
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

// ---- scripted fault events ------------------------------------------------

/// Per-link message chaos: each message crossing the link independently
/// draws drop, duplication, delay, and reorder faults. Delay and reorder
/// both add latency sampled from `delay_range_us`; reorder is accounted
/// separately because an extra-delayed message lets later traffic overtake
/// it, which is exactly what reordering means in an event-driven model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultRule {
    /// P(message silently dropped).
    pub p_drop: f64,
    /// P(message delivered twice, each copy with independent latency).
    pub p_dup: f64,
    /// P(message delayed by a sample from `delay_range_us`).
    pub p_delay: f64,
    /// Extra-latency range for delay and reorder faults (µs).
    pub delay_range_us: (u64, u64),
    /// P(message held back so later sends can overtake it).
    pub p_reorder: f64,
}

/// What the injector decided for one message crossing a chaotic link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkOutcome {
    /// The message never arrives.
    pub dropped: bool,
    /// The message arrives twice.
    pub duplicated: bool,
    /// Latency added on top of the network model (µs).
    pub extra_delay_us: u64,
    /// A delay fault fired.
    pub delayed: bool,
    /// A reorder fault fired.
    pub reordered: bool,
}

impl LinkFaultRule {
    /// A rule that never faults (useful as a neutral default).
    pub fn none() -> Self {
        LinkFaultRule {
            p_drop: 0.0,
            p_dup: 0.0,
            p_delay: 0.0,
            delay_range_us: (0, 0),
            p_reorder: 0.0,
        }
    }

    /// True when every probability is zero.
    pub fn is_none(&self) -> bool {
        self.p_drop == 0.0 && self.p_dup == 0.0 && self.p_delay == 0.0 && self.p_reorder == 0.0
    }

    fn sample_delay_us(&self, rng: &mut Rng) -> u64 {
        let (lo, hi) = self.delay_range_us;
        if lo >= hi {
            lo
        } else {
            rng.range_u64(lo, hi)
        }
    }

    /// Draws the faults for one message. A dropped message draws nothing
    /// else; drop/dup/delay/reorder are otherwise independent.
    pub fn sample(&self, rng: &mut Rng) -> LinkOutcome {
        let mut out = LinkOutcome::default();
        if rng.chance(self.p_drop) {
            out.dropped = true;
            return out;
        }
        out.duplicated = rng.chance(self.p_dup);
        if rng.chance(self.p_delay) {
            out.delayed = true;
            out.extra_delay_us += self.sample_delay_us(rng);
        }
        if rng.chance(self.p_reorder) {
            out.reordered = true;
            out.extra_delay_us += self.sample_delay_us(rng);
        }
        out
    }
}

impl Default for LinkFaultRule {
    fn default() -> Self {
        LinkFaultRule::none()
    }
}

/// One scripted cluster-level fault (or heal) event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Crash a node; `down_for_us: None` keeps it down until a
    /// [`FaultEvent::Restart`].
    Crash {
        /// The node to take down.
        node: NodeId,
        /// Auto-restart after this long; `None` means stay down.
        down_for_us: Option<u64>,
    },
    /// Restart a crashed node (its process replays its WAL and rejoins with
    /// a bumped boot generation).
    Restart {
        /// The node to bring back.
        node: NodeId,
    },
    /// Cut the link in both directions.
    CutLink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Cut only the `from → to` direction (asymmetric partition: `to` can
    /// still reach `from`).
    CutOneWay {
        /// Sending side of the dead direction.
        from: NodeId,
        /// Receiving side of the dead direction.
        to: NodeId,
    },
    /// Heal a symmetric cut.
    HealLink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Heal a one-way cut.
    HealOneWay {
        /// Sending side of the healed direction.
        from: NodeId,
        /// Receiving side of the healed direction.
        to: NodeId,
    },
    /// Cut every link between the two groups (both directions).
    Partition {
        /// Nodes on one side.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Heal every symmetric and one-way cut at once.
    HealAll,
    /// Install a chaos rule on the `a`↔`b` link (both directions).
    Chaos {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The rule every message on the link draws from.
        rule: LinkFaultRule,
    },
    /// Remove the chaos rule from the `a`↔`b` link.
    ChaosClear {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Degrade `node`'s disk: every fsync-bearing write costs `extra_us`
    /// additional service time until a matching [`FaultEvent::HealDisk`].
    /// Models a failing/contended drive; exercises the group-commit path
    /// under latency faults. Survives crashes (it is the hardware).
    SlowFsync {
        /// The node whose disk degrades.
        node: NodeId,
        /// Extra per-write latency (µs).
        extra_us: u64,
    },
    /// Restore `node`'s disk to full speed.
    HealDisk {
        /// The node whose disk recovers.
        node: NodeId,
    },
}

/// A [`FaultEvent`] pinned to a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// When the event fires (µs of virtual time).
    pub at_us: u64,
    /// What happens.
    pub event: FaultEvent,
}

/// A deterministic script of fault events, applied to a simulator with
/// `Sim::apply_schedule`. Events fire at their virtual times regardless of
/// cluster state; the same schedule plus the same seed reproduces the same
/// run bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scripted events (any order; the simulator's event queue sorts).
    pub events: Vec<ScheduledFault>,
}

/// Error from parsing a fault-schedule script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScheduleParseError {}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Builder-style: appends `event` at `at_us`.
    pub fn at(mut self, at_us: u64, event: FaultEvent) -> Self {
        self.events.push(ScheduledFault { at_us, event });
        self
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the line-oriented schedule format (documented in DESIGN.md):
    ///
    /// ```text
    /// # comment                      blank lines and #-comments are skipped
    /// <at_us> crash <node> [down_us]
    /// <at_us> restart <node>
    /// <at_us> cut <a> <b>            symmetric link cut
    /// <at_us> cut-oneway <from> <to> asymmetric: only from→to dies
    /// <at_us> heal <a> <b>
    /// <at_us> heal-oneway <from> <to>
    /// <at_us> partition <a,b|c,d,e>  cut every link between the groups
    /// <at_us> heal-all
    /// <at_us> chaos <a> <b> [drop=P] [dup=P] [delay=P:LO..HI] [reorder=P]
    /// <at_us> chaos-clear <a> <b>
    /// <at_us> slow-fsync <node> <extra_us>
    /// <at_us> heal-disk <node>
    /// ```
    pub fn parse(text: &str) -> Result<Self, ScheduleParseError> {
        let mut schedule = FaultSchedule::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let err = |message: String| ScheduleParseError { line, message };
            let trimmed = raw.split('#').next().unwrap_or("").trim();
            if trimmed.is_empty() {
                continue;
            }
            let mut tokens = trimmed.split_whitespace();
            let at_us: u64 = tokens
                .next()
                .ok_or_else(|| err("missing time".into()))?
                .parse()
                .map_err(|e| err(format!("bad time: {e}")))?;
            let verb = tokens.next().ok_or_else(|| err("missing verb".into()))?;
            let rest: Vec<&str> = tokens.collect();
            let node = |s: &str| -> Result<NodeId, ScheduleParseError> {
                s.parse::<u32>().map(NodeId).map_err(|e| err(format!("bad node id {s:?}: {e}")))
            };
            let arg = |i: usize| -> Result<&str, ScheduleParseError> {
                rest.get(i).copied().ok_or_else(|| err(format!("{verb} needs argument {i}")))
            };
            let event = match verb {
                "crash" => {
                    let down_for_us = match rest.get(1) {
                        Some(s) => Some(s.parse().map_err(|e| err(format!("bad down_us: {e}")))?),
                        None => None,
                    };
                    FaultEvent::Crash { node: node(arg(0)?)?, down_for_us }
                }
                "restart" => FaultEvent::Restart { node: node(arg(0)?)? },
                "cut" => FaultEvent::CutLink { a: node(arg(0)?)?, b: node(arg(1)?)? },
                "cut-oneway" => FaultEvent::CutOneWay { from: node(arg(0)?)?, to: node(arg(1)?)? },
                "heal" => FaultEvent::HealLink { a: node(arg(0)?)?, b: node(arg(1)?)? },
                "heal-oneway" => {
                    FaultEvent::HealOneWay { from: node(arg(0)?)?, to: node(arg(1)?)? }
                }
                "heal-all" => FaultEvent::HealAll,
                "partition" => {
                    let spec = arg(0)?;
                    let (l, r) = spec
                        .split_once('|')
                        .ok_or_else(|| err(format!("partition wants a|b groups, got {spec:?}")))?;
                    let group = |s: &str| -> Result<Vec<NodeId>, ScheduleParseError> {
                        s.split(',').filter(|t| !t.is_empty()).map(node).collect()
                    };
                    let (left, right) = (group(l)?, group(r)?);
                    if left.is_empty() || right.is_empty() {
                        return Err(err("partition groups must be non-empty".into()));
                    }
                    FaultEvent::Partition { left, right }
                }
                "chaos" => {
                    let (a, b) = (node(arg(0)?)?, node(arg(1)?)?);
                    let mut rule = LinkFaultRule::none();
                    for kv in &rest[2..] {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(format!("chaos wants key=value, got {kv:?}")))?;
                        let prob = |s: &str| -> Result<f64, ScheduleParseError> {
                            let p: f64 =
                                s.parse().map_err(|e| err(format!("bad probability: {e}")))?;
                            if !(0.0..=1.0).contains(&p) {
                                return Err(err(format!("probability {p} outside [0, 1]")));
                            }
                            Ok(p)
                        };
                        match k {
                            "drop" => rule.p_drop = prob(v)?,
                            "dup" => rule.p_dup = prob(v)?,
                            "reorder" => rule.p_reorder = prob(v)?,
                            "delay" => {
                                let (p, range) = v.split_once(':').ok_or_else(|| {
                                    err(format!("delay wants P:LO..HI, got {v:?}"))
                                })?;
                                let (lo, hi) = range.split_once("..").ok_or_else(|| {
                                    err(format!("delay wants P:LO..HI, got {v:?}"))
                                })?;
                                rule.p_delay = prob(p)?;
                                rule.delay_range_us = (
                                    lo.parse().map_err(|e| err(format!("bad delay lo: {e}")))?,
                                    hi.parse().map_err(|e| err(format!("bad delay hi: {e}")))?,
                                );
                            }
                            other => return Err(err(format!("unknown chaos key {other:?}"))),
                        }
                    }
                    FaultEvent::Chaos { a, b, rule }
                }
                "chaos-clear" => FaultEvent::ChaosClear { a: node(arg(0)?)?, b: node(arg(1)?)? },
                "slow-fsync" => {
                    let extra_us: u64 =
                        arg(1)?.parse().map_err(|e| err(format!("bad extra_us: {e}")))?;
                    if extra_us == 0 {
                        return Err(err("slow-fsync wants extra_us > 0 (use heal-disk)".into()));
                    }
                    FaultEvent::SlowFsync { node: node(arg(0)?)?, extra_us }
                }
                "heal-disk" => FaultEvent::HealDisk { node: node(arg(0)?)? },
                other => return Err(err(format!("unknown verb {other:?}"))),
            };
            schedule.events.push(ScheduledFault { at_us, event });
        }
        Ok(schedule)
    }
}

/// Registry-backed counters for the fault injector. Attach with
/// `Sim::set_fault_metrics`; the standard names land in `/_stats` under
/// `fault.*` (injected message faults, crashes, restarts) and `partition.*`
/// (link cuts, heals, and messages lost to severed links).
#[derive(Clone, Default)]
pub struct FaultMetrics {
    /// Messages dropped by a chaos rule.
    pub msg_dropped: Counter,
    /// Messages duplicated by a chaos rule.
    pub msg_duplicated: Counter,
    /// Messages delayed by a chaos rule.
    pub msg_delayed: Counter,
    /// Messages held back for reordering by a chaos rule.
    pub msg_reordered: Counter,
    /// Node crashes (scheduled or breakdown faults).
    pub crashes: Counter,
    /// Node restarts.
    pub restarts: Counter,
    /// Link cuts applied (symmetric cuts count once; one-way cuts once per
    /// direction).
    pub partition_cuts: Counter,
    /// Link heals applied.
    pub partition_heals: Counter,
    /// Messages dropped because their link was cut.
    pub partition_dropped: Counter,
    /// Disks degraded by a `slow-fsync` fault (healthy → slow transitions).
    pub disk_degraded: Counter,
}

impl FaultMetrics {
    /// Resolves the standard `fault.*` / `partition.*` names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        FaultMetrics {
            msg_dropped: registry.counter("fault.msg.dropped"),
            msg_duplicated: registry.counter("fault.msg.duplicated"),
            msg_delayed: registry.counter("fault.msg.delayed"),
            msg_reordered: registry.counter("fault.msg.reordered"),
            crashes: registry.counter("fault.crashes"),
            restarts: registry.counter("fault.restarts"),
            partition_cuts: registry.counter("partition.cuts"),
            partition_heals: registry.counter("partition.heals"),
            partition_dropped: registry.counter("partition.msg.dropped"),
            disk_degraded: registry.counter("fault.disk.degraded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let plan = FaultPlan::none();
        let mut rng = Rng::new(5);
        assert!(plan.is_none());
        assert!((0..10_000).all(|_| plan.sample(&mut rng).is_none()));
    }

    #[test]
    fn table2_empirical_rates_match() {
        let plan = FaultPlan::paper_table2();
        let mut rng = Rng::new(1234);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match plan.sample(&mut rng) {
                Some(OpFault::NetworkException) => counts[0] += 1,
                Some(OpFault::DiskIoError) => counts[1] += 1,
                Some(OpFault::BlockedProcess) => counts[2] += 1,
                Some(OpFault::NodeBreakdown) => counts[3] += 1,
                None => {}
            }
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((0.095..0.105).contains(&rate(counts[0])), "network {}", rate(counts[0]));
        assert!((0.0013..0.0027).contains(&rate(counts[1])), "disk {}", rate(counts[1]));
        assert!((0.0013..0.0027).contains(&rate(counts[2])), "block {}", rate(counts[2]));
        assert!((0.0005..0.0016).contains(&rate(counts[3])), "breakdown {}", rate(counts[3]));
    }

    #[test]
    fn short_long_classification() {
        assert!(OpFault::NetworkException.is_short());
        assert!(OpFault::DiskIoError.is_short());
        assert!(OpFault::BlockedProcess.is_short());
        assert!(!OpFault::NodeBreakdown.is_short());
    }

    #[test]
    fn block_duration_within_range() {
        let plan = FaultPlan::paper_table2();
        let mut rng = Rng::new(2);
        for _ in 0..1000 {
            let d = plan.sample_block_us(&mut rng);
            assert!((10_000..100_000).contains(&d));
        }
    }

    #[test]
    fn degenerate_block_range() {
        let mut plan = FaultPlan::paper_table2();
        plan.block_range_us = (5_000, 5_000);
        let mut rng = Rng::new(3);
        assert_eq!(plan.sample_block_us(&mut rng), 5_000);
    }

    #[test]
    fn link_rule_none_never_faults() {
        let rule = LinkFaultRule::none();
        let mut rng = Rng::new(4);
        assert!(rule.is_none());
        for _ in 0..1_000 {
            assert_eq!(rule.sample(&mut rng), LinkOutcome::default());
        }
    }

    #[test]
    fn link_rule_empirical_rates_match() {
        let rule = LinkFaultRule {
            p_drop: 0.1,
            p_dup: 0.2,
            p_delay: 0.3,
            delay_range_us: (1_000, 2_000),
            p_reorder: 0.05,
        };
        let mut rng = Rng::new(99);
        let n = 100_000usize;
        let (mut drops, mut dups, mut delays, mut reorders) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..n {
            let o = rule.sample(&mut rng);
            if o.dropped {
                drops += 1;
                // Dropped messages draw nothing else.
                assert_eq!(o, LinkOutcome { dropped: true, ..LinkOutcome::default() });
                continue;
            }
            if o.delayed || o.reordered {
                assert!(o.extra_delay_us >= 1_000);
            } else {
                assert_eq!(o.extra_delay_us, 0);
            }
            dups += o.duplicated as usize;
            delays += o.delayed as usize;
            reorders += o.reordered as usize;
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((0.09..0.11).contains(&rate(drops)), "drop {}", rate(drops));
        // dup/delay/reorder rates are conditioned on not-dropped (×0.9).
        assert!((0.17..0.19).contains(&rate(dups)), "dup {}", rate(dups));
        assert!((0.26..0.28).contains(&rate(delays)), "delay {}", rate(delays));
        assert!((0.040..0.050).contains(&rate(reorders)), "reorder {}", rate(reorders));
    }

    #[test]
    fn schedule_parse_round_trip() {
        let text = "\
# warm up for 1 s, then make life hard
1000000 crash 2 500000        # auto-restart after 0.5 s
1500000 restart 4
2000000 cut 0 1
2000000 cut-oneway 3 0
2500000 heal 0 1
2500000 heal-oneway 3 0
3000000 partition 0,1|2,3,4
3500000 heal-all
4000000 chaos 0 2 drop=0.1 dup=0.05 delay=0.2:1000..5000 reorder=0.01
4500000 chaos-clear 0 2
5000000 slow-fsync 1 7500         # degraded disk: +7.5 ms per durable write
5500000 heal-disk 1
";
        let s = FaultSchedule::parse(text).expect("parse");
        assert_eq!(s.events.len(), 12);
        assert_eq!(
            s.events[0],
            ScheduledFault {
                at_us: 1_000_000,
                event: FaultEvent::Crash { node: NodeId(2), down_for_us: Some(500_000) },
            }
        );
        assert_eq!(s.events[1].event, FaultEvent::Restart { node: NodeId(4) });
        assert_eq!(s.events[3].event, FaultEvent::CutOneWay { from: NodeId(3), to: NodeId(0) });
        assert_eq!(
            s.events[6].event,
            FaultEvent::Partition {
                left: vec![NodeId(0), NodeId(1)],
                right: vec![NodeId(2), NodeId(3), NodeId(4)],
            }
        );
        assert_eq!(s.events[7].event, FaultEvent::HealAll);
        assert_eq!(
            s.events[8].event,
            FaultEvent::Chaos {
                a: NodeId(0),
                b: NodeId(2),
                rule: LinkFaultRule {
                    p_drop: 0.1,
                    p_dup: 0.05,
                    p_delay: 0.2,
                    delay_range_us: (1_000, 5_000),
                    p_reorder: 0.01,
                },
            }
        );
        assert_eq!(s.events[9].event, FaultEvent::ChaosClear { a: NodeId(0), b: NodeId(2) });
        assert_eq!(s.events[10].event, FaultEvent::SlowFsync { node: NodeId(1), extra_us: 7_500 });
        assert_eq!(s.events[11].event, FaultEvent::HealDisk { node: NodeId(1) });
    }

    #[test]
    fn schedule_parse_crash_without_duration_stays_down() {
        let s = FaultSchedule::parse("5 crash 1").expect("parse");
        assert_eq!(s.events[0].event, FaultEvent::Crash { node: NodeId(1), down_for_us: None });
    }

    #[test]
    fn schedule_parse_rejects_garbage_with_line_numbers() {
        let cases = [
            ("banana", 1, "bad time"),
            ("10 explode 3", 1, "unknown verb"),
            ("10 crash", 1, "needs argument"),
            ("\n\n10 partition 0,1", 3, "a|b groups"),
            ("10 partition |1", 1, "non-empty"),
            ("10 chaos 0 1 drop=1.5", 1, "outside [0, 1]"),
            ("10 chaos 0 1 delay=0.5", 1, "P:LO..HI"),
            ("10 chaos 0 1 warp=0.5", 1, "unknown chaos key"),
            ("10 slow-fsync 0", 1, "needs argument"),
            ("10 slow-fsync 0 fast", 1, "bad extra_us"),
            ("10 slow-fsync 0 0", 1, "extra_us > 0"),
            ("10 heal-disk", 1, "needs argument"),
        ];
        for (text, line, needle) in cases {
            let err = FaultSchedule::parse(text).expect_err(text);
            assert_eq!(err.line, line, "{text}");
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn schedule_builder_matches_parse() {
        let built = FaultSchedule::new()
            .at(10, FaultEvent::CutLink { a: NodeId(0), b: NodeId(1) })
            .at(20, FaultEvent::HealAll);
        let parsed = FaultSchedule::parse("10 cut 0 1\n20 heal-all").expect("parse");
        assert_eq!(built, parsed);
        assert!(!built.is_empty());
        assert!(FaultSchedule::new().is_empty());
    }

    #[test]
    fn fault_metrics_resolve_standard_names() {
        let registry = Registry::new();
        let m = FaultMetrics::from_registry(&registry);
        m.msg_dropped.inc();
        m.partition_cuts.add(3);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("fault.msg.dropped").copied(), Some(1));
        assert_eq!(snap.counters.get("partition.cuts").copied(), Some(3));
    }
}
