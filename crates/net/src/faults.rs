//! Fault injection per paper Table 2.
//!
//! The evaluation injects four fault types with fixed per-operation
//! probabilities:
//!
//! | # | type  | reason              | probability |
//! |---|-------|---------------------|-------------|
//! | 1 | short | network exception   | 0.1         |
//! | 2 | short | disk IO error       | 0.002       |
//! | 3 | short | blocking processing | 0.002       |
//! | 4 | long  | node breakdown      | 0.001       |
//!
//! *Short* failures self-recover (paper §5.2.4); *long* failures persist
//! until membership action removes or restores the node. The runtime samples
//! at most one fault per handled operation and hands it to the process via
//! [`Context::take_op_fault`](crate::process::Context::take_op_fault); the
//! process decides what the fault means for the operation it is executing.

use crate::rng::Rng;

/// A fault drawn for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFault {
    /// Short: the message effectively never reaches the replica (or its ack
    /// is lost). The coordinator sees a timeout.
    NetworkException,
    /// Short: the local storage engine returns an I/O error.
    DiskIoError,
    /// Short: the serving process stalls; the node's server is blocked for a
    /// sampled interval, delaying everything behind it.
    BlockedProcess,
    /// Long: the node breaks down and stays offline until recovered by the
    /// operator / membership layer.
    NodeBreakdown,
}

impl OpFault {
    /// True for the paper's *short failure* class.
    pub fn is_short(self) -> bool {
        !matches!(self, OpFault::NodeBreakdown)
    }
}

/// Per-operation fault probabilities (paper Table 2) plus recovery-interval
/// parameters for the short faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// P(network exception) per operation.
    pub p_network: f64,
    /// P(disk IO error) per operation.
    pub p_disk: f64,
    /// P(blocking process) per operation.
    pub p_block: f64,
    /// P(node breakdown) per operation.
    pub p_breakdown: f64,
    /// How long a blocked process stalls, sampled uniformly from this range (µs).
    pub block_range_us: (u64, u64),
}

impl FaultPlan {
    /// No faults at all (the paper's *no-fault* runs).
    pub fn none() -> Self {
        FaultPlan {
            p_network: 0.0,
            p_disk: 0.0,
            p_block: 0.0,
            p_breakdown: 0.0,
            block_range_us: (10_000, 100_000),
        }
    }

    /// Exactly Table 2 of the paper.
    pub fn paper_table2() -> Self {
        FaultPlan {
            p_network: 0.1,
            p_disk: 0.002,
            p_block: 0.002,
            p_breakdown: 0.001,
            block_range_us: (10_000, 100_000),
        }
    }

    /// True when every probability is zero (sampling can be skipped).
    pub fn is_none(&self) -> bool {
        self.p_network == 0.0
            && self.p_disk == 0.0
            && self.p_block == 0.0
            && self.p_breakdown == 0.0
    }

    /// Draws at most one fault for an operation. Faults are tested in Table 2
    /// order; probabilities are small enough that the order is immaterial in
    /// practice but a fixed order keeps runs deterministic.
    pub fn sample(&self, rng: &mut Rng) -> Option<OpFault> {
        if self.is_none() {
            return None;
        }
        if rng.chance(self.p_network) {
            Some(OpFault::NetworkException)
        } else if rng.chance(self.p_disk) {
            Some(OpFault::DiskIoError)
        } else if rng.chance(self.p_block) {
            Some(OpFault::BlockedProcess)
        } else if rng.chance(self.p_breakdown) {
            Some(OpFault::NodeBreakdown)
        } else {
            None
        }
    }

    /// Samples a blocked-process stall duration.
    pub fn sample_block_us(&self, rng: &mut Rng) -> u64 {
        let (lo, hi) = self.block_range_us;
        if lo >= hi {
            lo
        } else {
            rng.range_u64(lo, hi)
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let plan = FaultPlan::none();
        let mut rng = Rng::new(5);
        assert!(plan.is_none());
        assert!((0..10_000).all(|_| plan.sample(&mut rng).is_none()));
    }

    #[test]
    fn table2_empirical_rates_match() {
        let plan = FaultPlan::paper_table2();
        let mut rng = Rng::new(1234);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match plan.sample(&mut rng) {
                Some(OpFault::NetworkException) => counts[0] += 1,
                Some(OpFault::DiskIoError) => counts[1] += 1,
                Some(OpFault::BlockedProcess) => counts[2] += 1,
                Some(OpFault::NodeBreakdown) => counts[3] += 1,
                None => {}
            }
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((0.095..0.105).contains(&rate(counts[0])), "network {}", rate(counts[0]));
        assert!((0.0013..0.0027).contains(&rate(counts[1])), "disk {}", rate(counts[1]));
        assert!((0.0013..0.0027).contains(&rate(counts[2])), "block {}", rate(counts[2]));
        assert!((0.0005..0.0016).contains(&rate(counts[3])), "breakdown {}", rate(counts[3]));
    }

    #[test]
    fn short_long_classification() {
        assert!(OpFault::NetworkException.is_short());
        assert!(OpFault::DiskIoError.is_short());
        assert!(OpFault::BlockedProcess.is_short());
        assert!(!OpFault::NodeBreakdown.is_short());
    }

    #[test]
    fn block_duration_within_range() {
        let plan = FaultPlan::paper_table2();
        let mut rng = Rng::new(2);
        for _ in 0..1000 {
            let d = plan.sample_block_us(&mut rng);
            assert!((10_000..100_000).contains(&d));
        }
    }

    #[test]
    fn degenerate_block_range() {
        let mut plan = FaultPlan::paper_table2();
        plan.block_range_us = (5_000, 5_000);
        let mut rng = Rng::new(3);
        assert_eq!(plan.sample_block_us(&mut rng), 5_000);
    }
}
