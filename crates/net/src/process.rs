//! The sans-io process abstraction.
//!
//! Every MyStore component — storage node, cache server, front-end
//! dispatcher, workload client — is a [`Process`]: a state machine that
//! reacts to messages and timers by emitting *actions* into a [`Context`].
//! The process never performs I/O or reads clocks itself; the runtime
//! (the deterministic simulator in [`crate::sim`], or the threaded runtime
//! in [`crate::threaded`]) interprets the actions. That inversion is what
//! lets the same production logic run under property tests, deterministic
//! experiments, and real threads without modification.

use crate::faults::OpFault;
use crate::rng::Rng;
use crate::time::SimTime;
use std::fmt;

/// Identifies a node (process instance) in a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Reserved id for traffic injected from outside the cluster (e.g. a
    /// test harness calling into the threaded runtime).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "n(ext)")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Opaque timer token; the process chooses the value and gets it back when
/// the timer fires.
pub type TimerToken = u64;

/// An action emitted by a process for the runtime to perform.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to`. Delivery time/order is up to the runtime.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire a timer with `token` after `delay_us` microseconds.
    SetTimer {
        /// Delay before firing, in µs.
        delay_us: u64,
        /// Token returned to [`Process::on_timer`].
        token: TimerToken,
    },
    /// Record a named measurement into the experiment trace.
    Record {
        /// Metric name.
        name: &'static str,
        /// Metric value.
        value: f64,
    },
    /// Crash this node. `down_for_us = None` means until explicitly
    /// restarted (the paper's *long failure*); `Some(d)` auto-recovers
    /// (a *short failure* such as a blocked process).
    CrashSelf {
        /// How long the node stays down, or `None` for indefinitely.
        down_for_us: Option<u64>,
    },
}

/// The per-invocation context handed to a process.
///
/// Collects actions and exposes the virtual clock, the node's own id, the
/// deterministic RNG, and the fault sampler.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut Rng,
    /// Service time consumed by this invocation (µs).
    consumed_us: u64,
    /// Fault sampled for the *current operation*, if the runtime's fault
    /// plan produced one. See [`Context::take_op_fault`].
    op_fault: Option<OpFault>,
    /// Extra per-durable-write latency this node's disk currently suffers
    /// (µs). See [`Context::disk_penalty_us`].
    disk_penalty_us: u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Used by runtimes; processes only consume it.
    pub fn new(
        now: SimTime,
        self_id: NodeId,
        actions: &'a mut Vec<Action<M>>,
        rng: &'a mut Rng,
        op_fault: Option<OpFault>,
    ) -> Self {
        Context { now, self_id, actions, rng, consumed_us: 0, op_fault, disk_penalty_us: 0 }
    }

    /// Sets the node's current degraded-disk penalty. Used by runtimes
    /// before invoking the process; processes only read it.
    pub fn set_disk_penalty(&mut self, us: u64) {
        self.disk_penalty_us = us;
    }

    /// Extra service time (µs) a durable write costs on this node right
    /// now, on top of the configured cost model.
    ///
    /// `0` means the disk is healthy. A `slow-fsync` fault (see
    /// `FaultEvent::SlowFsync` in the schedule vocabulary) raises it until
    /// a matching `heal-disk` event; components that model an fsync-bearing
    /// write charge `ctx.consume(cost + ctx.disk_penalty_us())`.
    pub fn disk_penalty_us(&self) -> u64 {
        self.disk_penalty_us
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Sends a message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay_us: u64, token: TimerToken) {
        self.actions.push(Action::SetTimer { delay_us, token });
    }

    /// Records a measurement into the experiment trace.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.actions.push(Action::Record { name, value });
    }

    /// Charges `us` microseconds of service time to this invocation. The
    /// runtime keeps the node's server busy for the total consumed time,
    /// which is what produces realistic queueing under load.
    pub fn consume(&mut self, us: u64) {
        self.consumed_us = self.consumed_us.saturating_add(us);
    }

    /// Total service time charged so far in this invocation.
    pub fn consumed(&self) -> u64 {
        self.consumed_us
    }

    /// Crashes this node (see [`Action::CrashSelf`]).
    pub fn crash_self(&mut self, down_for_us: Option<u64>) {
        self.actions.push(Action::CrashSelf { down_for_us });
    }

    /// Deterministic RNG (owned by the runtime; forked per node).
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Takes the fault the runtime sampled for this operation, if any.
    ///
    /// The fault plan (paper Table 2) draws at most one fault per handled
    /// operation; the component that executes the operation consumes it
    /// here and reacts (fail the op, crash, block) per §5.2.4 semantics.
    pub fn take_op_fault(&mut self) -> Option<OpFault> {
        self.op_fault.take()
    }
}

/// A message- and timer-driven state machine.
///
/// `M` is the cluster's message type. Implementations must be deterministic
/// functions of their inputs (messages, timers, and `ctx.rng()`): no clocks,
/// no threads, no I/O.
pub trait Process<M> {
    /// Called once when the runtime starts (virtual time zero, or thread
    /// spawn in the threaded runtime). Arm initial timers here.
    fn on_start(&mut self, ctx: &mut Context<'_, M>);

    /// Handles a message from `from`.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Handles a timer armed with `token`.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: TimerToken);

    /// Called when the node recovers from a crash. Default: re-run
    /// [`Process::on_start`] (state survives; in-flight work is lost).
    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        self.on_start(ctx);
    }

    /// True when the process has no in-flight work (pending quorum ops,
    /// unflushed acks, queued replica batches). The threaded runtime's
    /// graceful shutdown drains each node until it reports quiescent before
    /// invoking [`Process::on_shutdown`]. Default: always quiescent, which
    /// is correct for stateless processes. The simulator never calls this.
    fn quiescent(&self) -> bool {
        true
    }

    /// Called once by the threaded runtime immediately before the node's
    /// thread exits on an *orderly* stop (explicit stop, graceful drain, or
    /// channel disconnect) — not on [`Action::CrashSelf`], which models a
    /// crash. Emitted actions are still interpreted, so final sends and
    /// records are delivered; this is where a storage node syncs its WAL.
    /// Default: nothing. The simulator never calls this.
    fn on_shutdown(&mut self, _ctx: &mut Context<'_, M>) {}
}

/// Wire-size accounting for the bandwidth model.
///
/// The simulator charges transmission time `size / bandwidth` per message;
/// implement this to reflect the encoded size of your message type.
pub trait WireSized {
    /// Encoded size in bytes as it would appear on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSized for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSized for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSized for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_actions_in_order() {
        let mut actions = Vec::new();
        let mut rng = Rng::new(1);
        {
            let mut ctx: Context<'_, &'static str> =
                Context::new(SimTime::from_millis(5), NodeId(3), &mut actions, &mut rng, None);
            ctx.send(NodeId(4), "hello");
            ctx.set_timer(100, 7);
            ctx.record("m", 1.5);
            ctx.consume(40);
            ctx.consume(2);
            assert_eq!(ctx.consumed(), 42);
            assert_eq!(ctx.now(), SimTime::from_millis(5));
            assert_eq!(ctx.id(), NodeId(3));
        }
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Send { to: NodeId(4), msg: "hello" }));
        assert!(matches!(actions[1], Action::SetTimer { delay_us: 100, token: 7 }));
        assert!(matches!(actions[2], Action::Record { name: "m", value } if value == 1.5));
    }

    #[test]
    fn op_fault_is_taken_once() {
        let mut actions: Vec<Action<()>> = Vec::new();
        let mut rng = Rng::new(1);
        let mut ctx = Context::new(
            SimTime::ZERO,
            NodeId(0),
            &mut actions,
            &mut rng,
            Some(OpFault::DiskIoError),
        );
        assert_eq!(ctx.take_op_fault(), Some(OpFault::DiskIoError));
        assert_eq!(ctx.take_op_fault(), None);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId::EXTERNAL.to_string(), "n(ext)");
    }
}
