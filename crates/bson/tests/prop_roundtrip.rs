//! Property tests: any document survives an encode/decode roundtrip, and the
//! size accounting matches the codec.

use mystore_bson::{Document, ObjectId, Value};
use proptest::prelude::*;

fn arb_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        any::<f64>().prop_map(Value::Double),
        any::<u64>().prop_map(Value::Timestamp),
        "[a-zA-Z0-9 _\\-]{0,24}".prop_map(Value::String),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Binary),
        (any::<u32>(), any::<u64>(), any::<u32>())
            .prop_map(|(s, m, c)| Value::ObjectId(ObjectId::from_parts(s, m, c))),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|pairs| Value::Document(pairs.into_iter().collect())),
        ]
    })
}

fn arb_document() -> impl Strategy<Value = Document> {
    proptest::collection::vec(("[a-zA-Z_][a-zA-Z0-9_\\-]{0,12}", arb_value(3)), 0..8)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(doc in arb_document()) {
        let bytes = doc.to_bytes();
        let decoded = Document::from_bytes(&bytes).unwrap();
        // NaN != NaN under PartialEq, so compare via total order instead.
        prop_assert_eq!(
            Value::Document(doc).compare(&Value::Document(decoded)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn encoded_size_is_exact(doc in arb_document()) {
        prop_assert_eq!(doc.encoded_size(), doc.to_bytes().len());
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Document::from_bytes(&bytes); // must return Err, not panic
    }

    #[test]
    fn truncation_is_always_an_error(doc in arb_document(), cut_frac in 0.0f64..1.0) {
        let bytes = doc.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Document::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(2), b in arb_value(2)) {
        use std::cmp::Ordering::*;
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        match ab {
            Less => prop_assert_eq!(ba, Greater),
            Greater => prop_assert_eq!(ba, Less),
            Equal => prop_assert_eq!(ba, Equal),
        }
        prop_assert_eq!(a.compare(&a), Equal);
    }
}
