//! Construction macros.

/// Builds a [`Document`](crate::Document) from `key: value` pairs.
///
/// Values go through `Into<Value>`, so literals, strings, vectors, nested
/// `doc!`s and explicit [`Value`](crate::Value)s all work:
///
/// ```
/// use mystore_bson::{doc, Value};
/// let d = doc! {
///     "self-key": "Resistor5",
///     "size": 1024,
///     "meta": doc! { "kind": "xml" },
///     "tags": vec!["a", "b"],
/// };
/// assert_eq!(d.get_i64("size"), Some(1024));
/// ```
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $key:tt : $value:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.insert($key, $crate::Value::from($value)); )+
        d
    }};
}

/// Builds a single [`Value`](crate::Value).
///
/// ```
/// use mystore_bson::{bson, Value};
/// assert_eq!(bson!(3), Value::Int32(3));
/// assert_eq!(bson!([1, 2]), Value::Array(vec![Value::Int32(1), Value::Int32(2)]));
/// assert_eq!(bson!(null), Value::Null);
/// ```
#[macro_export]
macro_rules! bson {
    (null) => { $crate::Value::Null };
    ([ $( $item:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::bson!($item) ),* ])
    };
    ({ $( $key:tt : $value:tt ),* $(,)? }) => {
        $crate::Value::Document($crate::doc! { $( $key : $crate::bson!($value) ),* })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use crate::{Document, Value};

    #[test]
    fn doc_macro_builds_ordered_document() {
        let d = doc! { "z": 1, "a": 2 };
        let keys: Vec<&String> = d.keys().collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn empty_doc_macro() {
        assert_eq!(doc! {}, Document::new());
    }

    #[test]
    fn bson_macro_nested() {
        let v = bson!({ "a": [1, 2, { "b": null }] });
        let d = v.as_document().unwrap();
        let arr = d.get_array("a").unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_document().unwrap().get("b"), Some(&Value::Null));
    }
}
