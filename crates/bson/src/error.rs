//! Error type for BSON encoding and decoding.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BsonError>;

/// Errors raised while decoding (or, rarely, encoding) BSON bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BsonError {
    /// The buffer ended before the declared length was consumed.
    UnexpectedEof {
        /// What the decoder was reading when the buffer ran out.
        context: &'static str,
    },
    /// The document length prefix disagrees with the buffer contents.
    BadLength {
        /// Length claimed by the prefix.
        declared: usize,
        /// Length actually available or consumed.
        actual: usize,
    },
    /// An element carried a type tag this decoder does not understand.
    UnknownElementType(u8),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A cstring key or string payload was missing its NUL terminator.
    MissingNul,
    /// An ObjectId literal had the wrong length or non-hex characters.
    InvalidObjectId(String),
    /// Document nesting exceeded the hard recursion limit.
    TooDeep,
}

impl fmt::Display for BsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsonError::UnexpectedEof { context } => {
                write!(f, "unexpected end of buffer while reading {context}")
            }
            BsonError::BadLength { declared, actual } => {
                write!(f, "length prefix {declared} does not match buffer ({actual})")
            }
            BsonError::UnknownElementType(t) => write!(f, "unknown BSON element type 0x{t:02x}"),
            BsonError::InvalidUtf8 => write!(f, "string field contained invalid UTF-8"),
            BsonError::MissingNul => write!(f, "missing NUL terminator"),
            BsonError::InvalidObjectId(s) => write!(f, "invalid ObjectId literal: {s:?}"),
            BsonError::TooDeep => write!(f, "document nesting exceeds recursion limit"),
        }
    }
}

impl std::error::Error for BsonError {}
