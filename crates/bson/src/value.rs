//! The dynamically-typed BSON value.

use std::cmp::Ordering;
use std::fmt;

use crate::document::Document;
use crate::oid::ObjectId;

/// BSON element type tags, as used in the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ElementType {
    /// 64-bit IEEE 754 floating point.
    Double = 0x01,
    /// UTF-8 string.
    String = 0x02,
    /// Embedded document.
    Document = 0x03,
    /// Array (encoded as a document with keys "0", "1", ...).
    Array = 0x04,
    /// Binary blob (subtype 0).
    Binary = 0x05,
    /// 12-byte ObjectId.
    ObjectId = 0x07,
    /// Boolean.
    Bool = 0x08,
    /// Null.
    Null = 0x0A,
    /// 32-bit signed integer.
    Int32 = 0x10,
    /// Internal timestamp (unsigned 64-bit).
    Timestamp = 0x11,
    /// 64-bit signed integer.
    Int64 = 0x12,
}

impl ElementType {
    /// Maps a raw tag byte back to the enum.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => ElementType::Double,
            0x02 => ElementType::String,
            0x03 => ElementType::Document,
            0x04 => ElementType::Array,
            0x05 => ElementType::Binary,
            0x07 => ElementType::ObjectId,
            0x08 => ElementType::Bool,
            0x0A => ElementType::Null,
            0x10 => ElementType::Int32,
            0x11 => ElementType::Timestamp,
            0x12 => ElementType::Int64,
            _ => return None,
        })
    }
}

/// A single BSON value.
///
/// Values form a total order (used by secondary indexes and `$gt`-style
/// query operators): first by *type rank* — `Null < Bool < numbers < String
/// < Binary < ObjectId < Array < Document` — then within numbers by numeric
/// value regardless of representation, and within other types by their
/// natural ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string.
    String(String),
    /// Binary payload — MyStore stores unstructured data (`val`) here.
    Binary(Vec<u8>),
    /// Unique identifier.
    ObjectId(ObjectId),
    /// Heterogeneous array.
    Array(Vec<Value>),
    /// Nested document.
    Document(Document),
    /// Monotonic timestamp, used by the engine's oplog and LWW merge.
    Timestamp(u64),
}

impl Value {
    /// The wire-format type tag for this value.
    pub fn element_type(&self) -> ElementType {
        match self {
            Value::Null => ElementType::Null,
            Value::Bool(_) => ElementType::Bool,
            Value::Int32(_) => ElementType::Int32,
            Value::Int64(_) => ElementType::Int64,
            Value::Double(_) => ElementType::Double,
            Value::String(_) => ElementType::String,
            Value::Binary(_) => ElementType::Binary,
            Value::ObjectId(_) => ElementType::ObjectId,
            Value::Array(_) => ElementType::Array,
            Value::Document(_) => ElementType::Document,
            Value::Timestamp(_) => ElementType::Timestamp,
        }
    }

    /// Human-readable type name (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Binary(_) => "binData",
            Value::ObjectId(_) => "objectId",
            Value::Array(_) => "array",
            Value::Document(_) => "document",
            Value::Timestamp(_) => "timestamp",
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is any integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the binary payload, if this is binary data.
    pub fn as_binary(&self) -> Option<&[u8]> {
        match self {
            Value::Binary(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the nested document, if any.
    pub fn as_document(&self) -> Option<&Document> {
        match self {
            Value::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the ObjectId, if this is one.
    pub fn as_object_id(&self) -> Option<ObjectId> {
        match self {
            Value::ObjectId(id) => Some(*id),
            _ => None,
        }
    }

    /// True if the value is numeric (int32, int64 or double).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int32(_) | Value::Int64(_) | Value::Double(_))
    }

    /// Cross-type rank used as the primary sort key. Numbers share a rank so
    /// that `Int32(1) == Double(1.0)` in comparisons, as in MongoDB.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int32(_) | Value::Int64(_) | Value::Double(_) => 2,
            Value::Timestamp(_) => 3,
            Value::String(_) => 4,
            Value::Binary(_) => 5,
            Value::ObjectId(_) => 6,
            Value::Array(_) => 7,
            Value::Document(_) => 8,
        }
    }

    /// Total-order comparison used by indexes, sorts, and range operators.
    ///
    /// NaN doubles sort below every other number (and equal to themselves) so
    /// the order stays total.
    pub fn compare(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                cmp_f64_total(a.as_f64().unwrap(), b.as_f64().unwrap())
            }
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Binary(a), Value::Binary(b)) => a.cmp(b),
            (Value::ObjectId(a), Value::ObjectId(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.compare(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Document(a), Value::Document(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.compare(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => unreachable!("type ranks matched but variants did not"),
        }
    }
}

fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => unreachable!(),
        },
    }
}

impl fmt::Display for Value {
    /// Extended-JSON-ish rendering, close to what the paper prints in §3.3.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Binary(b) => write!(f, "BinData(0, {} bytes)", b.len()),
            Value::ObjectId(id) => write!(f, "ObjectId(\"{id}\")"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Document(d) => write!(f, "{d}"),
            Value::Timestamp(t) => write!(f, "Timestamp({t})"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Binary(v)
    }
}
impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::ObjectId(v)
    }
}
impl From<Document> for Value {
    fn from(v: Document) -> Self {
        Value::Document(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}
impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Self {
        v.map(Value::from).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn numeric_comparison_crosses_representations() {
        assert_eq!(Value::Int32(1).compare(&Value::Double(1.0)), Ordering::Equal);
        assert_eq!(Value::Int64(2).compare(&Value::Double(1.5)), Ordering::Greater);
        assert_eq!(Value::Double(0.5).compare(&Value::Int32(1)), Ordering::Less);
    }

    #[test]
    fn type_ranks_order_across_types() {
        let ordered = [
            Value::Null,
            Value::Bool(true),
            Value::Int32(5),
            Value::Timestamp(0),
            Value::String("a".into()),
            Value::Binary(vec![0]),
            Value::ObjectId(ObjectId::from_parts(0, 0, 0)),
            Value::Array(vec![]),
            Value::Document(Document::new()),
        ];
        for w in ordered.windows(2) {
            assert_eq!(w[0].compare(&w[1]), Ordering::Less, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_sorts_below_numbers_and_equal_to_itself() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.compare(&nan), Ordering::Equal);
        assert_eq!(nan.compare(&Value::Double(-1e308)), Ordering::Less);
        assert_eq!(Value::Int32(0).compare(&nan), Ordering::Greater);
    }

    #[test]
    fn array_comparison_is_lexicographic() {
        let a = Value::Array(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Value::Array(vec![Value::Int32(1), Value::Int32(3)]);
        let c = Value::Array(vec![Value::Int32(1)]);
        assert_eq!(a.compare(&b), Ordering::Less);
        assert_eq!(c.compare(&a), Ordering::Less);
        assert_eq!(a.compare(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i32), Value::Int32(7));
        assert_eq!(Value::from(7i64), Value::Int64(7));
        assert_eq!(Value::from("x"), Value::String("x".into()));
        assert_eq!(
            Value::from(vec![1i32, 2]),
            Value::Array(vec![Value::Int32(1), Value::Int32(2)])
        );
        assert_eq!(Value::from(None::<i32>), Value::Null);
        assert_eq!(Value::from(Some(3i32)), Value::Int32(3));
    }

    #[test]
    fn display_matches_paper_style() {
        let d = doc! { "self-key": "Resistor5", "isData": "1" };
        let s = format!("{}", Value::Document(d));
        assert!(s.contains("\"self-key\": \"Resistor5\""), "{s}");
    }

    #[test]
    fn accessors_return_none_on_wrong_type() {
        let v = Value::String("hi".into());
        assert!(v.as_i64().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_binary().is_none());
        assert_eq!(v.as_str(), Some("hi"));
        assert!(Value::Int32(3).as_f64() == Some(3.0));
    }
}
