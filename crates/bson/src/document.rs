//! Insertion-ordered BSON documents.

use std::fmt;

use crate::codec;
use crate::error::Result;
use crate::oid::ObjectId;
use crate::value::Value;

/// An insertion-ordered map from string keys to [`Value`]s.
///
/// BSON documents preserve field order, and MyStore's record layout (paper
/// §3.3: `_id`, `self-key`, `val`, `isData`, `isDel`) relies on that. Lookup
/// is linear; real records have a handful of fields, so linear scan beats a
/// hash map both in speed and memory.
#[derive(Clone, Default, PartialEq)]
pub struct Document {
    entries: Vec<(String, Value)>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Document { entries: Vec::new() }
    }

    /// Creates an empty document with room for `cap` fields.
    pub fn with_capacity(cap: usize) -> Self {
        Document { entries: Vec::with_capacity(cap) }
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets `key` to `value`, replacing any existing value while keeping the
    /// field's original position. New keys append at the end.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Looks up a top-level field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup of a top-level field.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the field exists (even if set to `Null`).
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Looks up a dotted path such as `"meta.owner.name"`. Path segments
    /// index into nested documents; numeric segments index into arrays.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut segments = path.split('.');
        let first = segments.next()?;
        let mut current = self.get(first)?;
        for seg in segments {
            current = match current {
                Value::Document(d) => d.get(seg)?,
                Value::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// String accessor for a top-level field.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Integer accessor for a top-level field.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Value::as_i64)
    }

    /// Float accessor for a top-level field.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Bool accessor for a top-level field.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Binary accessor for a top-level field.
    pub fn get_binary(&self, key: &str) -> Option<&[u8]> {
        self.get(key).and_then(Value::as_binary)
    }

    /// Nested-document accessor for a top-level field.
    pub fn get_document(&self, key: &str) -> Option<&Document> {
        self.get(key).and_then(Value::as_document)
    }

    /// Array accessor for a top-level field.
    pub fn get_array(&self, key: &str) -> Option<&[Value]> {
        self.get(key).and_then(Value::as_array)
    }

    /// ObjectId accessor for a top-level field.
    pub fn get_object_id(&self, key: &str) -> Option<ObjectId> {
        self.get(key).and_then(Value::as_object_id)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Encodes the document to its binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::encode_document(self)
    }

    /// Decodes a document from its binary wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        codec::decode_document(bytes)
    }

    /// Approximate in-memory/encoded size in bytes, used by the engine's
    /// accounting and by the simulator's bandwidth model. Matches the codec's
    /// framing exactly for flat documents and closely for nested ones.
    pub fn encoded_size(&self) -> usize {
        // 4-byte length + trailing NUL.
        5 + self.entries.iter().map(|(k, v)| 2 + k.len() + value_size(v)).sum::<usize>()
    }
}

fn value_size(v: &Value) -> usize {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int32(_) => 4,
        Value::Int64(_) | Value::Double(_) | Value::Timestamp(_) => 8,
        Value::String(s) => 5 + s.len(),
        Value::Binary(b) => 5 + b.len(),
        Value::ObjectId(_) => 12,
        Value::Array(items) => {
            5 + items.iter().enumerate().map(|(i, v)| 2 + dec_len(i) + value_size(v)).sum::<usize>()
        }
        Value::Document(d) => d.encoded_size(),
    }
}

fn dec_len(mut n: usize) -> usize {
    let mut len = 1;
    while n >= 10 {
        n /= 10;
        len += 1;
    }
    len
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {k:?}: {v}")?;
        }
        write!(f, " }}")
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut doc = Document::new();
        for (k, v) in iter {
            doc.insert(k, v);
        }
        doc
    }
}

impl IntoIterator for Document {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn insert_preserves_order_and_replaces_in_place() {
        let mut d = Document::new();
        d.insert("a", 1i32);
        d.insert("b", 2i32);
        d.insert("c", 3i32);
        d.insert("b", 99i32);
        let keys: Vec<&String> = d.keys().collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(d.get_i64("b"), Some(99));
    }

    #[test]
    fn remove_returns_value() {
        let mut d = doc! { "x": 1, "y": "two" };
        assert_eq!(d.remove("y"), Some(Value::String("two".into())));
        assert_eq!(d.remove("y"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn path_access_traverses_documents_and_arrays() {
        let d = doc! {
            "meta": doc! { "owner": doc! { "name": "veepalms" } },
            "tags": vec!["xml", "scene"],
        };
        assert_eq!(d.get_path("meta.owner.name").unwrap().as_str(), Some("veepalms"));
        assert_eq!(d.get_path("tags.1").unwrap().as_str(), Some("scene"));
        assert!(d.get_path("meta.owner.missing").is_none());
        assert!(d.get_path("tags.7").is_none());
        assert!(d.get_path("tags.x").is_none());
    }

    #[test]
    fn typed_accessors() {
        let d = doc! {
            "n": 4i64, "f": 2.5, "b": true,
            "bin": Value::Binary(vec![1, 2, 3]),
            "sub": doc! { "k": 1 },
        };
        assert_eq!(d.get_i64("n"), Some(4));
        assert_eq!(d.get_f64("f"), Some(2.5));
        assert_eq!(d.get_bool("b"), Some(true));
        assert_eq!(d.get_binary("bin"), Some(&[1u8, 2, 3][..]));
        assert!(d.get_document("sub").is_some());
        assert!(d.get_document("n").is_none());
    }

    #[test]
    fn encoded_size_matches_codec_for_flat_docs() {
        let d = doc! {
            "self-key": "Resistor5",
            "val": Value::Binary(vec![0u8; 1000]),
            "isData": "1",
            "isDel": "0",
        };
        assert_eq!(d.encoded_size(), d.to_bytes().len());
    }

    #[test]
    fn encoded_size_matches_codec_for_nested_docs() {
        let d = doc! {
            "arr": vec![1i32, 2, 3],
            "nested": doc! { "a": vec!["x", "y"], "b": doc!{ "c": 1.5 } },
            "id": Value::ObjectId(ObjectId::from_parts(1, 2, 3)),
            "nothing": Value::Null,
            "t": Value::Timestamp(9),
        };
        assert_eq!(d.encoded_size(), d.to_bytes().len());
    }

    #[test]
    fn from_iterator_collects() {
        let d: Document =
            vec![("a".to_string(), Value::Int32(1)), ("b".to_string(), Value::Int32(2))]
                .into_iter()
                .collect();
        assert_eq!(d.len(), 2);
    }
}
