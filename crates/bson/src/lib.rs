//! A BSON-like document model for MyStore.
//!
//! MyStore records are BSON documents (paper §3.3): ordered maps from string
//! keys to typed values, with a compact length-prefixed binary encoding used
//! both on the wire and on disk. This crate implements the document model
//! from scratch:
//!
//! * [`Value`] — the dynamically-typed value enum (double, string, document,
//!   array, binary, [`ObjectId`], bool, null, int32, int64, timestamp),
//! * [`Document`] — an insertion-ordered key/value map with dotted-path
//!   access,
//! * a binary codec ([`Document::to_bytes`] / [`Document::from_bytes`])
//!   following the BSON framing rules (little-endian, length-prefixed,
//!   NUL-terminated keys),
//! * the [`doc!`] and [`bson!`] construction macros.
//!
//! # Example
//!
//! ```
//! use mystore_bson::{doc, Document, Value};
//!
//! let record = doc! {
//!     "self-key": "Resistor5",
//!     "val": Value::Binary(b"this is test data for read".to_vec()),
//!     "isData": "1",
//!     "isDel": "0",
//! };
//! let bytes = record.to_bytes();
//! let decoded = Document::from_bytes(&bytes).unwrap();
//! assert_eq!(record, decoded);
//! assert_eq!(decoded.get_str("self-key"), Some("Resistor5"));
//! ```

#![forbid(unsafe_code)]

mod codec;
mod document;
mod error;
mod macros;
mod oid;
mod value;

pub use codec::{decode_document, encode_document};
pub use document::Document;
pub use error::{BsonError, Result};
pub use oid::{ObjectId, OidGen};
pub use value::{ElementType, Value};
