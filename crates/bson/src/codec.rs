//! Binary encoding and decoding of documents.
//!
//! The format follows BSON's framing rules: a document is a little-endian
//! `i32` total length, a sequence of elements (`type byte`, NUL-terminated
//! key, payload), and a terminating NUL. Strings carry their own `i32`
//! length (including the trailing NUL); binary payloads carry an `i32`
//! length and a subtype byte (always 0); arrays are documents keyed by
//! decimal indices.

use crate::document::Document;
use crate::error::{BsonError, Result};
use crate::oid::OID_LEN;
use crate::value::{ElementType, Value};

/// Maximum nesting depth accepted by the decoder; prevents stack overflow on
/// maliciously nested input.
const MAX_DEPTH: usize = 64;

/// Encodes `doc` into a fresh byte vector.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut buf = Vec::with_capacity(doc.encoded_size());
    write_document(&mut buf, doc);
    buf
}

/// Decodes a document from `bytes`. The buffer must contain exactly one
/// document (trailing bytes are an error, since the engine frames records
/// individually).
pub fn decode_document(bytes: &[u8]) -> Result<Document> {
    let mut reader = Reader { buf: bytes, pos: 0 };
    let doc = read_document(&mut reader, 0)?;
    if reader.pos != bytes.len() {
        return Err(BsonError::BadLength { declared: reader.pos, actual: bytes.len() });
    }
    Ok(doc)
}

fn write_document(buf: &mut Vec<u8>, doc: &Document) {
    let start = buf.len();
    buf.extend_from_slice(&[0; 4]); // length placeholder
    for (key, value) in doc.iter() {
        write_element(buf, key, value);
    }
    buf.push(0);
    let len = (buf.len() - start) as i32;
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn write_element(buf: &mut Vec<u8>, key: &str, value: &Value) {
    buf.push(value.element_type() as u8);
    buf.extend_from_slice(key.as_bytes());
    buf.push(0);
    match value {
        Value::Null => {}
        Value::Bool(b) => buf.push(*b as u8),
        Value::Int32(v) => buf.extend_from_slice(&v.to_le_bytes()),
        Value::Int64(v) => buf.extend_from_slice(&v.to_le_bytes()),
        Value::Double(v) => buf.extend_from_slice(&v.to_le_bytes()),
        Value::Timestamp(v) => buf.extend_from_slice(&v.to_le_bytes()),
        Value::String(s) => {
            buf.extend_from_slice(&((s.len() + 1) as i32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
            buf.push(0);
        }
        Value::Binary(b) => {
            buf.extend_from_slice(&(b.len() as i32).to_le_bytes());
            buf.push(0); // subtype: generic
            buf.extend_from_slice(b);
        }
        Value::ObjectId(id) => buf.extend_from_slice(id.bytes()),
        Value::Document(d) => write_document(buf, d),
        Value::Array(items) => {
            // Arrays are documents keyed "0", "1", ...
            let start = buf.len();
            buf.extend_from_slice(&[0; 4]);
            let mut keybuf = itoa_buf();
            for (i, item) in items.iter().enumerate() {
                write_element(buf, itoa(&mut keybuf, i), item);
            }
            buf.push(0);
            let len = (buf.len() - start) as i32;
            buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        }
    }
}

/// Stack buffer for decimal array indices, avoiding per-element allocation.
fn itoa_buf() -> [u8; 20] {
    [0; 20]
}

fn itoa(buf: &mut [u8; 20], mut n: usize) -> &str {
    let mut pos = buf.len();
    loop {
        pos -= 1;
        buf[pos] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // SAFETY-free: bytes are all ASCII digits.
    std::str::from_utf8(&buf[pos..]).expect("digits are valid UTF-8")
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(BsonError::UnexpectedEof { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    fn i32(&mut self, context: &'static str) -> Result<i32> {
        let b = self.take(4, context)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64> {
        let b = self.take(8, context)?;
        Ok(i64::from_le_bytes(b.try_into().expect("len 8")))
    }

    fn cstring(&mut self) -> Result<&'a str> {
        let rest = &self.buf[self.pos..];
        let nul = rest.iter().position(|&b| b == 0).ok_or(BsonError::MissingNul)?;
        let s = std::str::from_utf8(&rest[..nul]).map_err(|_| BsonError::InvalidUtf8)?;
        self.pos += nul + 1;
        Ok(s)
    }
}

fn read_document(r: &mut Reader<'_>, depth: usize) -> Result<Document> {
    if depth > MAX_DEPTH {
        return Err(BsonError::TooDeep);
    }
    let start = r.pos;
    let declared = r.i32("document length")?;
    if declared < 5 {
        return Err(BsonError::BadLength {
            declared: declared as usize,
            actual: r.buf.len() - start,
        });
    }
    let end = start + declared as usize;
    if end > r.buf.len() {
        return Err(BsonError::BadLength {
            declared: declared as usize,
            actual: r.buf.len() - start,
        });
    }
    let mut doc = Document::new();
    loop {
        let tag = r.u8("element type")?;
        if tag == 0 {
            break;
        }
        let ty = ElementType::from_byte(tag).ok_or(BsonError::UnknownElementType(tag))?;
        let key = r.cstring()?.to_string();
        let value = read_value(r, ty, depth)?;
        doc.insert(key, value);
    }
    if r.pos != end {
        return Err(BsonError::BadLength { declared: declared as usize, actual: r.pos - start });
    }
    Ok(doc)
}

fn read_value(r: &mut Reader<'_>, ty: ElementType, depth: usize) -> Result<Value> {
    Ok(match ty {
        ElementType::Null => Value::Null,
        ElementType::Bool => Value::Bool(r.u8("bool")? != 0),
        ElementType::Int32 => Value::Int32(r.i32("int32")?),
        ElementType::Int64 => Value::Int64(r.i64("int64")?),
        ElementType::Timestamp => Value::Timestamp(r.i64("timestamp")? as u64),
        ElementType::Double => Value::Double(f64::from_bits(r.i64("double")? as u64)),
        ElementType::String => {
            let len = r.i32("string length")?;
            if len < 1 {
                return Err(BsonError::BadLength { declared: len as usize, actual: 0 });
            }
            let bytes = r.take(len as usize, "string payload")?;
            let (body, nul) = bytes.split_at(bytes.len() - 1);
            if nul != [0] {
                return Err(BsonError::MissingNul);
            }
            Value::String(
                std::str::from_utf8(body).map_err(|_| BsonError::InvalidUtf8)?.to_string(),
            )
        }
        ElementType::Binary => {
            let len = r.i32("binary length")?;
            if len < 0 {
                return Err(BsonError::BadLength { declared: len as usize, actual: 0 });
            }
            let _subtype = r.u8("binary subtype")?;
            Value::Binary(r.take(len as usize, "binary payload")?.to_vec())
        }
        ElementType::ObjectId => {
            let bytes = r.take(OID_LEN, "objectid")?;
            Value::ObjectId(crate::oid::ObjectId::from_bytes(bytes.try_into().expect("len 12")))
        }
        ElementType::Document => Value::Document(read_document(r, depth + 1)?),
        ElementType::Array => {
            let doc = read_document(r, depth + 1)?;
            Value::Array(doc.into_iter().map(|(_, v)| v).collect())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::ObjectId;
    use crate::{doc, Document};

    fn sample() -> Document {
        doc! {
            "_id": Value::ObjectId(ObjectId::from_parts(0x4ee4_4627, 42, 7)),
            "self-key": "Resistor5",
            "val": Value::Binary(b"this is test data for read".to_vec()),
            "isData": "1",
            "isDel": "0",
        }
    }

    #[test]
    fn roundtrip_paper_record() {
        let d = sample();
        let bytes = d.to_bytes();
        assert_eq!(Document::from_bytes(&bytes).unwrap(), d);
    }

    #[test]
    fn roundtrip_all_types() {
        let d = doc! {
            "null": Value::Null,
            "bool": true,
            "i32": -7i32,
            "i64": 1i64 << 40,
            "f": -0.25,
            "s": "héllo",
            "bin": Value::Binary(vec![0, 255, 3]),
            "oid": Value::ObjectId(ObjectId::from_parts(1, 2, 3)),
            "arr": Value::Array(vec![Value::Int32(1), Value::String("two".into()), Value::Null]),
            "doc": doc! { "inner": doc! { "deep": 1 } },
            "ts": Value::Timestamp(u64::MAX / 3),
        };
        assert_eq!(Document::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn empty_document_is_five_bytes() {
        let d = Document::new();
        let bytes = d.to_bytes();
        assert_eq!(bytes, vec![5, 0, 0, 0, 0]);
        assert_eq!(Document::from_bytes(&bytes).unwrap(), d);
    }

    #[test]
    fn rejects_truncated_buffer() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, 3, 4, 10, bytes.len() - 1] {
            assert!(Document::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xAB);
        assert!(Document::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_element_type() {
        // doc with one element of bogus type 0x6F
        let mut bytes = vec![0, 0, 0, 0, 0x6F, b'k', 0, 0];
        let len = bytes.len() as i32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(Document::from_bytes(&bytes), Err(BsonError::UnknownElementType(0x6F))));
    }

    #[test]
    fn rejects_bad_length_prefix() {
        let mut bytes = sample().to_bytes();
        let wrong = (bytes.len() as i32) + 4;
        bytes[..4].copy_from_slice(&wrong.to_le_bytes());
        assert!(Document::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_overly_deep_nesting() {
        let mut d = doc! { "x": 1 };
        for _ in 0..100 {
            d = doc! { "n": d };
        }
        let bytes = d.to_bytes();
        assert!(matches!(Document::from_bytes(&bytes), Err(BsonError::TooDeep)));
    }

    #[test]
    fn array_keys_are_decimal_indices() {
        let d = doc! { "a": Value::Array(vec![Value::Int32(9); 12]) };
        let bytes = d.to_bytes();
        // "10" and "11" must appear as keys in the nested array document.
        let hay = bytes.windows(3).any(|w| w == [b'1', b'0', 0]);
        assert!(hay, "expected decimal key \"10\" in encoding");
        assert_eq!(Document::from_bytes(&bytes).unwrap(), d);
    }

    #[test]
    fn itoa_small_and_large() {
        let mut buf = itoa_buf();
        assert_eq!(itoa(&mut buf, 0), "0");
        let mut buf = itoa_buf();
        assert_eq!(itoa(&mut buf, 12345), "12345");
    }
}
