//! The relational baseline: master-slave MySQL storing unstructured data as
//! BLOB rows (paper §1, second storage option; compared in Figs. 11–12).
//!
//! Captures the properties the paper attributes to it: full transactional
//! machinery on every statement (parse/plan/lock/log), a BLOB row per
//! object, a single write master with synchronous-ish binlog shipping to a
//! read slave, and *no horizontal scale-out* ("the relational database is
//! hard to make scale-out, for complex table designs and many join
//! operations").

use std::collections::BTreeMap;

use mystore_core::message::{status, Method, Msg, RestRequest, RestResponse};
use mystore_net::{Context, NodeId, Process, TimerToken};

/// Relational cost model (µs).
#[derive(Debug, Clone)]
pub struct RelCost {
    /// SQL parse + plan + B-tree descent + row fetch.
    pub select_base_us: u64,
    /// BLOB streaming bandwidth on read (bytes/µs).
    pub read_bytes_per_us: f64,
    /// Transaction begin/commit + binlog + index maintenance per write.
    pub write_base_us: u64,
    /// BLOB write bandwidth (bytes/µs).
    pub write_bytes_per_us: f64,
    /// Extra serialization on writes: the master applies them one at a time
    /// (table/row locks); modelled by the node's single write server.
    pub replication_ship_us: u64,
}

impl Default for RelCost {
    fn default() -> Self {
        RelCost {
            select_base_us: 2_200,
            read_bytes_per_us: 110.0,
            write_base_us: 5_000,
            write_bytes_per_us: 35.0,
            replication_ship_us: 300,
        }
    }
}

/// Role of a node in the master-slave pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelRole {
    /// Accepts writes and reads; ships binlog rows to the slave.
    Master {
        /// The slave receiving the binlog, if any.
        slave: Option<NodeId>,
    },
    /// Read-only replica.
    Slave,
}

/// One MySQL-like node (master or slave) behind the REST interface.
pub struct RelStoreNode {
    role: RelRole,
    /// The BLOB table: `obj_key (PK) → blob`.
    table: BTreeMap<String, mystore_core::message::Body>,
    cost: RelCost,
    writes: u64,
    reads: u64,
}

impl RelStoreNode {
    /// Creates a node with the given role.
    pub fn new(role: RelRole, cost: RelCost) -> Self {
        RelStoreNode { role, table: BTreeMap::new(), cost, writes: 0, reads: 0 }
    }

    /// Preloads a row without charging service time.
    pub fn preload(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.table.insert(key.into(), value.into());
    }

    /// Rows in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// `(reads, writes)` served.
    pub fn counters(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

impl Process<Msg> for RelStoreNode {
    fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            // Binlog row from the master.
            Msg::CachePut { key, value } if self.role == RelRole::Slave => {
                ctx.consume(self.cost.write_base_us / 2);
                self.table.insert(key, value);
            }
            Msg::CacheDel { key } if self.role == RelRole::Slave => {
                self.table.remove(&key);
            }
            Msg::RestReq(r) => self.serve_rest(ctx, from, r),
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _token: TimerToken) {}
}

impl RelStoreNode {
    fn serve_rest(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, r: RestRequest) {
        let reply = |status_code: u16, body: mystore_core::message::Body| {
            Msg::RestResp(RestResponse {
                req: r.req,
                status: status_code,
                body,
                assigned_key: None,
                from_cache: false,
            })
        };
        let Some(key) = r.key.clone() else {
            ctx.send(from, reply(status::BAD_REQUEST, Default::default()));
            return;
        };
        match r.method {
            Method::Get => {
                self.reads += 1;
                match self.table.get(&key) {
                    Some(v) => {
                        ctx.consume(
                            self.cost.select_base_us
                                + (v.len() as f64 / self.cost.read_bytes_per_us) as u64,
                        );
                        ctx.send(from, reply(status::OK, v.clone()));
                    }
                    None => {
                        ctx.consume(self.cost.select_base_us);
                        ctx.send(from, reply(status::NOT_FOUND, Default::default()));
                    }
                }
            }
            Method::Post | Method::Delete => {
                // Writes only on the master.
                let RelRole::Master { slave } = self.role else {
                    ctx.send(from, reply(status::STORAGE_ERROR, Default::default()));
                    return;
                };
                self.writes += 1;
                ctx.consume(
                    self.cost.write_base_us
                        + (r.body.len() as f64 / self.cost.write_bytes_per_us) as u64
                        + self.cost.replication_ship_us,
                );
                if r.method == Method::Post {
                    self.table.insert(key.clone(), r.body.clone());
                    if let Some(slave) = slave {
                        ctx.send(slave, Msg::CachePut { key, value: r.body });
                    }
                } else {
                    self.table.remove(&key);
                    if let Some(slave) = slave {
                        ctx.send(slave, Msg::CacheDel { key });
                    }
                }
                ctx.send(from, reply(status::OK, Default::default()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_core::testing::Probe;
    use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig, SimTime};

    fn rest(req: u64, method: Method, key: &str, body: &[u8]) -> Msg {
        Msg::RestReq(RestRequest {
            req,
            method,
            key: Some(key.into()),
            body: body.to_vec().into(),
            if_match: None,
            auth: None,
        })
    }

    #[test]
    fn master_writes_replicate_to_slave() {
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::instant(), faults: Default::default(), seed: 1 });
        let slave = sim
            .add_node(RelStoreNode::new(RelRole::Slave, RelCost::default()), NodeConfig::default());
        let master = sim.add_node(
            RelStoreNode::new(RelRole::Master { slave: Some(slave) }, RelCost::default()),
            NodeConfig::default(),
        );
        let probe = sim.add_node(
            Probe::new(vec![
                (10, master, rest(1, Method::Post, "row1", b"blob")),
                (100_000, slave, rest(2, Method::Get, "row1", b"")),
                (200_000, slave, rest(3, Method::Post, "row2", b"nope")),
                (300_000, master, rest(4, Method::Delete, "row1", b"")),
            ]),
            NodeConfig::default(),
        );
        sim.start();
        sim.run_until(SimTime::from_secs(2));
        let p = sim.process::<Probe>(probe).unwrap();
        assert!(matches!(p.response_for(1), Some(Msg::RestResp(r)) if r.status == status::OK));
        assert!(
            matches!(p.response_for(2), Some(Msg::RestResp(r)) if r.status == status::OK && *r.body == b"blob"),
            "slave must serve the replicated row"
        );
        assert!(
            matches!(p.response_for(3), Some(Msg::RestResp(r)) if r.status == status::STORAGE_ERROR),
            "slave must reject writes"
        );
        assert!(matches!(p.response_for(4), Some(Msg::RestResp(r)) if r.status == status::OK));
        // Deletion propagates.
        sim.run_for(100_000);
        assert!(sim.process::<RelStoreNode>(slave).unwrap().is_empty());
    }

    #[test]
    fn preload_and_counters() {
        let mut node = RelStoreNode::new(RelRole::Slave, RelCost::default());
        node.preload("a", vec![1]);
        assert_eq!(node.len(), 1);
        assert_eq!(node.counters(), (0, 0));
    }
}
