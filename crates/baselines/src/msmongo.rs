//! Master/slave MongoDB mode — the storage-module baseline of Fig. 17.
//!
//! "Here, MongoDB is configured to be master-slave mode using three physical
//! nodes" (§6.2.3). The master applies every Put locally and ships it
//! asynchronously to the slaves; there is no quorum, no hinted handoff, and
//! no automatic failover — so a master breakdown stalls all writes, and a
//! lost request is only recovered by client retry. That availability gap is
//! precisely what Fig. 17 measures.

use mystore_bson::ObjectId;
use mystore_core::config::CostModel;
use mystore_core::message::{Msg, StoreError};
use mystore_engine::{pack_version, Db, Record};
use mystore_net::{Context, NodeId, OpFault, Process, TimerToken};

/// Role in the master/slave replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsRole {
    /// Applies writes, ships them to the slaves.
    Master {
        /// Replication targets.
        slaves: Vec<NodeId>,
    },
    /// Applies the master's stream; serves reads.
    Slave,
}

/// One node of the master/slave MongoDB deployment, speaking the same
/// storage-module `Get`/`Put` interface as a MyStore coordinator.
pub struct MsMongoNode {
    role: MsRole,
    db: Db,
    cost: CostModel,
    puts: u64,
}

impl MsMongoNode {
    /// Creates a node.
    pub fn new(role: MsRole, cost: CostModel) -> Self {
        let mut db = Db::memory();
        db.create_index("data", "self-key").expect("fresh db");
        MsMongoNode { role, db, cost, puts: 0 }
    }

    /// Puts applied on this node.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Records stored locally.
    pub fn record_count(&self) -> usize {
        self.db.collection("data").map(|c| c.len()).unwrap_or(0)
    }

    /// Read access to the local database.
    pub fn db(&self) -> &Db {
        &self.db
    }
}

impl Process<Msg> for MsMongoNode {
    fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let fault = ctx.take_op_fault();
        match msg {
            Msg::Put { req, key, value, delete } => {
                // Only the master takes writes; a slave receiving one
                // simply fails it (no redirect, no failover — the paper's
                // availability complaint about master/slave MongoDB).
                let MsRole::Master { slaves } = self.role.clone() else {
                    ctx.send(
                        from,
                        Msg::PutResp { req, result: Err(StoreError::QuorumWriteFailed) },
                    );
                    return;
                };
                match fault {
                    Some(OpFault::NetworkException) => return, // lost; client retries
                    Some(OpFault::DiskIoError) => {
                        ctx.send(
                            from,
                            Msg::PutResp { req, result: Err(StoreError::QuorumWriteFailed) },
                        );
                        return;
                    }
                    _ => {}
                }
                let version = pack_version(ctx.now().as_micros(), 0);
                let record = if delete {
                    Record::tombstone(ObjectId::new(), key, version)
                } else {
                    let owned = std::sync::Arc::try_unwrap(value)
                        .unwrap_or_else(|shared| (*shared).clone());
                    Record::new(ObjectId::new(), key, owned, version)
                };
                ctx.consume(self.cost.put_us(record.val.len()));
                self.puts += 1;
                let ok = self.db.put_record("data", &record).is_ok();
                // Asynchronous replication: ship and forget.
                let record = std::sync::Arc::new(record);
                for slave in slaves {
                    ctx.send(slave, Msg::StoreReplica { req: 0, record: record.clone() });
                }
                let result = if ok { Ok(()) } else { Err(StoreError::QuorumWriteFailed) };
                ctx.send(from, Msg::PutResp { req, result });
            }
            Msg::Get { req, key } => {
                match fault {
                    Some(OpFault::NetworkException) => return,
                    Some(OpFault::DiskIoError) => {
                        ctx.send(
                            from,
                            Msg::GetResp { req, result: Err(StoreError::QuorumReadFailed) },
                        );
                        return;
                    }
                    _ => {}
                }
                let found = self.db.get_record("data", &key).ok().flatten();
                ctx.consume(self.cost.get_us(found.as_ref().map(|r| r.val.len()).unwrap_or(0)));
                let result = match found {
                    Some(r) if !r.is_del => Ok(Some(std::sync::Arc::new(r.val))),
                    _ => Ok(None),
                };
                ctx.send(from, Msg::GetResp { req, result });
            }
            Msg::StoreReplica { record, .. } => {
                // Replication stream apply (slaves).
                if matches!(self.role, MsRole::Slave) {
                    ctx.consume(self.cost.put_us(record.val.len()));
                    self.puts += 1;
                    let _ = self.db.put_record("data", &record);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _token: TimerToken) {}
}

/// Builds the Fig. 17 three-node master/slave deployment on a simulator:
/// returns `(master, slaves)` ids. Nodes are added in slave, slave, master
/// order.
pub fn add_msmongo_trio(
    sim: &mut mystore_net::Sim<Msg>,
    cost: &CostModel,
    concurrency: usize,
) -> (NodeId, Vec<NodeId>) {
    use mystore_net::NodeConfig;
    let s1 =
        sim.add_node(MsMongoNode::new(MsRole::Slave, cost.clone()), NodeConfig { concurrency });
    let s2 =
        sim.add_node(MsMongoNode::new(MsRole::Slave, cost.clone()), NodeConfig { concurrency });
    let master = sim.add_node(
        MsMongoNode::new(MsRole::Master { slaves: vec![s1, s2] }, cost.clone()),
        NodeConfig { concurrency },
    );
    (master, vec![s1, s2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_core::testing::Probe;
    use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig, SimTime};

    fn build(
        seed: u64,
        script: Vec<(u64, NodeId, Msg)>,
    ) -> (Sim<Msg>, NodeId, Vec<NodeId>, NodeId) {
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: Default::default(), seed });
        let (master, slaves) = add_msmongo_trio(&mut sim, &CostModel::default(), 4);
        let probe = sim.add_node(Probe::new(script), NodeConfig::default());
        sim.start();
        (sim, master, slaves, probe)
    }

    #[test]
    fn writes_apply_on_master_and_replicate() {
        let script = vec![(
            1_000,
            NodeId(2), // master
            Msg::Put { req: 1, key: "k".into(), value: b"v".to_vec().into(), delete: false },
        )];
        let (mut sim, master, slaves, probe) = build(1, script);
        sim.run_until(SimTime::from_secs(2));
        let p = sim.process::<Probe>(probe).unwrap();
        assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
        assert_eq!(sim.process::<MsMongoNode>(master).unwrap().record_count(), 1);
        for s in slaves {
            assert_eq!(sim.process::<MsMongoNode>(s).unwrap().record_count(), 1);
        }
    }

    #[test]
    fn slave_rejects_writes_and_serves_reads() {
        let script = vec![
            (
                1_000,
                NodeId(2),
                Msg::Put { req: 1, key: "k".into(), value: b"v".to_vec().into(), delete: false },
            ),
            (
                500_000,
                NodeId(0),
                Msg::Put { req: 2, key: "x".into(), value: b"v".to_vec().into(), delete: false },
            ),
            (600_000, NodeId(0), Msg::Get { req: 3, key: "k".into() }),
        ];
        let (mut sim, _, _, probe) = build(2, script);
        sim.run_until(SimTime::from_secs(2));
        let p = sim.process::<Probe>(probe).unwrap();
        assert!(matches!(p.response_for(2), Some(Msg::PutResp { result: Err(_), .. })));
        assert!(matches!(p.response_for(3), Some(Msg::GetResp { result: Ok(Some(_)), .. })));
    }

    #[test]
    fn master_breakdown_stalls_all_writes() {
        let script = vec![
            (
                1_000,
                NodeId(2),
                Msg::Put { req: 1, key: "a".into(), value: vec![1].into(), delete: false },
            ),
            (
                2_000_000,
                NodeId(2),
                Msg::Put { req: 2, key: "b".into(), value: vec![2].into(), delete: false },
            ),
        ];
        let (mut sim, master, _, probe) = build(3, script);
        sim.schedule_crash(SimTime(1_000_000), master, None);
        sim.run_until(SimTime::from_secs(5));
        let p = sim.process::<Probe>(probe).unwrap();
        assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
        assert!(p.response_for(2).is_none(), "no failover: the write is simply lost");
    }
}
