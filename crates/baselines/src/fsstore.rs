//! The ext3 baseline: unstructured data in a local file system with an
//! in-memory index table (paper §1, first storage option; compared in
//! Figs. 11–12).
//!
//! Two forms:
//!
//! * [`LocalFileStore`] — a real directory-backed store (bucketed files,
//!   index rebuilt on open), usable from examples and tested against a real
//!   tmpdir;
//! * [`FsStoreNode`] — the simulator process serving the same REST
//!   interface with an ext3-era cost model (seek-heavy reads, journalled
//!   writes, one machine, no replication — which is exactly why the paper's
//!   comparison favours MyStore on availability and scale-out).

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use mystore_core::message::{status, Method, Msg, RestResponse};
use mystore_net::{Context, NodeId, Process, TimerToken};
use mystore_ring::md5::{md5, to_hex};

/// A real directory-backed blob store with an in-memory index.
///
/// Files are spread over 256 hash buckets (`<root>/<2-hex>/<md5>.bin`) the
/// way people actually sharded directories on ext3 to dodge linear
/// directory scans. The index maps user keys to paths and is rebuilt by
/// scanning on open — the paper's point that "maintaining the index table
/// is a tough task" is faithfully present.
pub struct LocalFileStore {
    root: PathBuf,
    index: HashMap<String, PathBuf>,
}

impl LocalFileStore {
    /// Opens (creating if needed) a store rooted at `root`, rebuilding the
    /// index from the files present.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let mut index = HashMap::new();
        for bucket in fs::read_dir(&root)? {
            let bucket = bucket?;
            if !bucket.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(bucket.path())? {
                let entry = entry?;
                // The key is stored in a sidecar `.key` file (binary-safe
                // file names are not).
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("key") {
                    let key = fs::read_to_string(&path)?;
                    index.insert(key, path.with_extension("bin"));
                }
            }
        }
        Ok(LocalFileStore { root, index })
    }

    fn paths_for(&self, key: &str) -> (PathBuf, PathBuf) {
        let digest = to_hex(&md5(key.as_bytes()));
        let dir = self.root.join(&digest[..2]);
        (dir.join(format!("{digest}.bin")), dir.join(format!("{digest}.key")))
    }

    /// Stores `value` under `key` (create or replace).
    pub fn put(&mut self, key: &str, value: &[u8]) -> std::io::Result<()> {
        let (bin, keyfile) = self.paths_for(key);
        fs::create_dir_all(bin.parent().expect("bucketed path"))?;
        let mut f = fs::File::create(&bin)?;
        f.write_all(value)?;
        fs::write(&keyfile, key)?;
        self.index.insert(key.to_string(), bin);
        Ok(())
    }

    /// Fetches the blob stored under `key`.
    pub fn get(&self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        match self.index.get(key) {
            Some(path) => Ok(Some(fs::read(path)?)),
            None => Ok(None),
        }
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> std::io::Result<bool> {
        match self.index.remove(key) {
            Some(path) => {
                let _ = fs::remove_file(&path);
                let _ = fs::remove_file(path.with_extension("key"));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Number of indexed blobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// ext3-era cost model (µs).
#[derive(Debug, Clone)]
pub struct FsCost {
    /// Fixed read cost: directory lookup + seek (partially cached).
    pub read_base_us: u64,
    /// Read bandwidth in bytes/µs.
    pub read_bytes_per_us: f64,
    /// Fixed write cost: journal commit + metadata.
    pub write_base_us: u64,
    /// Write bandwidth in bytes/µs.
    pub write_bytes_per_us: f64,
}

impl Default for FsCost {
    fn default() -> Self {
        // A single 2009 SAS disk behind ext3: reads mostly page-cache
        // assisted but with cold misses amortized in, writes journalled.
        FsCost {
            read_base_us: 3_500,
            read_bytes_per_us: 90.0,
            write_base_us: 6_000,
            write_bytes_per_us: 40.0,
        }
    }
}

/// Simulator process: the ext3 store behind the same REST interface as
/// MyStore ("the three storage systems are all bounded to RESTful
/// interfaces", §6.1).
pub struct FsStoreNode {
    data: HashMap<String, mystore_core::message::Body>,
    cost: FsCost,
    served: u64,
}

impl FsStoreNode {
    /// Creates an empty store node.
    pub fn new(cost: FsCost) -> Self {
        FsStoreNode { data: HashMap::new(), cost, served: 0 }
    }

    /// Preloads a record without charging service time (corpus setup).
    pub fn preload(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.data.insert(key.into(), value.into());
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Records stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Process<Msg> for FsStoreNode {
    fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::RestReq(r) = msg else { return };
        self.served += 1;
        let reply = |status_code: u16, body: mystore_core::message::Body| {
            Msg::RestResp(RestResponse {
                req: r.req,
                status: status_code,
                body,
                assigned_key: None,
                from_cache: false,
            })
        };
        let Some(key) = r.key.clone() else {
            ctx.send(from, reply(status::BAD_REQUEST, Default::default()));
            return;
        };
        match r.method {
            Method::Get => match self.data.get(&key) {
                Some(v) => {
                    ctx.consume(
                        self.cost.read_base_us
                            + (v.len() as f64 / self.cost.read_bytes_per_us) as u64,
                    );
                    ctx.send(from, reply(status::OK, v.clone()));
                }
                None => {
                    ctx.consume(self.cost.read_base_us);
                    ctx.send(from, reply(status::NOT_FOUND, Default::default()));
                }
            },
            Method::Post => {
                ctx.consume(
                    self.cost.write_base_us
                        + (r.body.len() as f64 / self.cost.write_bytes_per_us) as u64,
                );
                self.data.insert(key, r.body);
                ctx.send(from, reply(status::OK, Default::default()));
            }
            Method::Delete => {
                ctx.consume(self.cost.write_base_us);
                self.data.remove(&key);
                ctx.send(from, reply(status::OK, Default::default()));
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _token: TimerToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mystore-fs-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn local_store_crud_and_reopen() {
        let dir = tempdir("crud");
        {
            let mut store = LocalFileStore::open(&dir).unwrap();
            store.put("scene/alpha", b"xml-a").unwrap();
            store.put("scene/beta", b"xml-b").unwrap();
            assert_eq!(store.get("scene/alpha").unwrap().unwrap(), b"xml-a");
            assert!(store.get("nope").unwrap().is_none());
            assert!(store.delete("scene/beta").unwrap());
            assert!(!store.delete("scene/beta").unwrap());
            assert_eq!(store.len(), 1);
        }
        // The index is rebuilt by scanning the directory tree.
        let store = LocalFileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("scene/alpha").unwrap().unwrap(), b"xml-a");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn local_store_overwrite() {
        let dir = tempdir("ow");
        let mut store = LocalFileStore::open(&dir).unwrap();
        store.put("k", b"v1").unwrap();
        store.put("k", b"v2-longer").unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), b"v2-longer");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sim_node_serves_rest() {
        use mystore_core::message::RestRequest;
        use mystore_core::testing::Probe;
        use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig};
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::instant(), faults: Default::default(), seed: 1 });
        let store = sim.add_node(FsStoreNode::new(FsCost::default()), NodeConfig::default());
        let probe = sim.add_node(
            Probe::new(vec![
                (
                    10,
                    store,
                    Msg::RestReq(RestRequest {
                        req: 1,
                        method: Method::Post,
                        key: Some("k".into()),
                        body: b"blob".to_vec().into(),
                        if_match: None,
                        auth: None,
                    }),
                ),
                (
                    20_000,
                    store,
                    Msg::RestReq(RestRequest {
                        req: 2,
                        method: Method::Get,
                        key: Some("k".into()),
                        body: Default::default(),
                        if_match: None,
                        auth: None,
                    }),
                ),
                (
                    40_000,
                    store,
                    Msg::RestReq(RestRequest {
                        req: 3,
                        method: Method::Get,
                        key: None,
                        body: Default::default(),
                        if_match: None,
                        auth: None,
                    }),
                ),
            ]),
            NodeConfig::default(),
        );
        sim.start();
        sim.run_for(1_000_000);
        let p = sim.process::<Probe>(probe).unwrap();
        assert!(matches!(p.response_for(1), Some(Msg::RestResp(r)) if r.status == status::OK));
        assert!(
            matches!(p.response_for(2), Some(Msg::RestResp(r)) if r.status == status::OK && *r.body == b"blob")
        );
        assert!(
            matches!(p.response_for(3), Some(Msg::RestResp(r)) if r.status == status::BAD_REQUEST)
        );
    }
}
