//! Evaluation baselines for the MyStore paper.
//!
//! The paper compares MyStore against three alternatives, all reimplemented
//! here behind the same interfaces:
//!
//! * [`fsstore`] — unstructured data in an ext3-like local file system with
//!   an in-memory index table (Figs. 11–12),
//! * [`relstore`] — a master-slave MySQL-like relational store holding
//!   blobs as BLOB rows (Figs. 11–12),
//! * [`msmongo`] — MongoDB's native master/slave replication over three
//!   engine nodes, with no quorums and no failover (Fig. 17).

#![forbid(unsafe_code)]

pub mod fsstore;
pub mod msmongo;
pub mod relstore;

pub use fsstore::{FsCost, FsStoreNode, LocalFileStore};
pub use msmongo::{add_msmongo_trio, MsMongoNode, MsRole};
pub use relstore::{RelCost, RelRole, RelStoreNode};
