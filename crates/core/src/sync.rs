//! Merkle-tree anti-entropy state (DESIGN.md §14).
//!
//! [`SyncTree`] maintains a mirror of the data collection keyed by ring
//! point — `(key_point, self_key) → (version, is_del)` — plus a cache of
//! per-leaf hashes. A *leaf* is one of `splits` equal sub-ranges of a ring
//! arc (one arc per virtual node); every key in an arc shares a replica
//! set, so two replicas can compare trees built over exactly the arcs they
//! share. A leaf's hash folds its sorted `(key, version, tombstone)`
//! triples, so two leaves hash equal iff the replicas hold identical state
//! for that key range — tombstones included.
//!
//! Trees are peer-scoped and ephemeral: each exchange enumerates the arcs
//! shared with that peer ([`shared_arcs`]), stacks their `splits` leaves in
//! ring order, pads to a power of two, and folds an implicit binary heap
//! ([`TreeHeap`]: index 0 the root, children of `i` at `2i+1`/`2i+2`).
//! Only leaf hashes are cached — rebuilt lazily after local writes dirty
//! them — so the walk protocol stays stateless: any message can be dropped
//! and the next round simply starts over from the root.

use std::collections::BTreeMap;
use std::ops::Bound;

use mystore_net::NodeId;
use mystore_obs::{Counter, Registry};
use mystore_ring::{Arc_, HashRing};

/// FNV-1a 64-bit offset basis — the seed of every fold in this module.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Hash of a leaf (or padding slot) that covers no entries.
const EMPTY_HASH: u64 = 0;

/// FNV-1a 64-bit, folded over `data`.
fn fnv1a(hash: u64, data: &[u8]) -> u64 {
    let mut h = hash;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Registry-backed counters for the sync subsystem (`sync.*`).
#[derive(Debug, Clone, Default)]
pub struct SyncMetrics {
    /// Anti-entropy rounds initiated (legacy and Merkle).
    pub rounds: Counter,
    /// `SyncTreeLevel` messages processed while walking mismatched trees.
    pub tree_levels: Counter,
    /// Per-key digest entries sent — flat digests, divergent-leaf digests,
    /// and counter-digests alike. The quantity the Merkle walk shrinks.
    pub digest_entries: Counter,
    /// Divergent-leaf digest messages sent after a walk bottomed out.
    pub leaf_digests: Counter,
    /// Tree exchanges settled as identical at the root hash.
    pub root_match: Counter,
    /// Digest bytes a flat exchange would have cost on rounds the tree
    /// settled at the root (estimate — see DESIGN.md §14).
    pub bytes_saved: Counter,
    /// Tree messages dropped because the peers' ring views disagreed.
    pub ring_mismatch: Counter,
    /// Sync pulls/pushes refused because the offered record predates the
    /// local reap floor (the resurrection-after-reap guard).
    pub resurrections_blocked: Counter,
}

impl SyncMetrics {
    /// Resolves the standard `sync.*` series from `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        SyncMetrics {
            rounds: registry.counter("sync.rounds"),
            tree_levels: registry.counter("sync.tree_levels"),
            digest_entries: registry.counter("sync.digest_entries"),
            leaf_digests: registry.counter("sync.leaf_digests"),
            root_match: registry.counter("sync.root_match"),
            bytes_saved: registry.counter("sync.bytes_saved"),
            ring_mismatch: registry.counter("sync.ring_mismatch"),
            resurrections_blocked: registry.counter("sync.resurrections_blocked"),
        }
    }
}

/// The ring arcs whose replica set contains both `a` and `b` — the
/// keyspace the two nodes jointly replicate, in clockwise ring order.
/// Every key in an arc `(start, end]` has the same preference list as the
/// arc's own end point, so membership is decided once per arc.
pub fn shared_arcs(ring: &HashRing<NodeId>, n: usize, a: NodeId, b: NodeId) -> Vec<Arc_> {
    ring.partition()
        .into_iter()
        .filter(|(arc, _)| {
            let replicas = ring.successors_of_point(arc.end, n);
            replicas.contains(&a) && replicas.contains(&b)
        })
        .map(|(arc, _)| arc)
        .collect()
}

/// Guard hash for one tree exchange: both peers must derive the same node
/// pair, split count, and shared-arc list, or heap indices would address
/// different key ranges. Symmetric in `a`/`b`.
pub fn ring_hash(a: NodeId, b: NodeId, splits: u32, arcs: &[Arc_]) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
    let mut h = fnv1a(FNV_OFFSET, &lo.0.to_le_bytes());
    h = fnv1a(h, &hi.0.to_le_bytes());
    h = fnv1a(h, &splits.to_le_bytes());
    for arc in arcs {
        h = fnv1a(h, &arc.start.to_le_bytes());
        h = fnv1a(h, &arc.end.to_le_bytes());
    }
    h
}

/// An ephemeral per-exchange tree: the implicit heap of hashes plus the
/// leaf layout it was built over.
#[derive(Debug, Clone)]
pub struct TreeHeap {
    /// The heap: index 0 is the root, children of `i` sit at `2i+1`/`2i+2`,
    /// the last `base` slots are the (padded) leaf level.
    hashes: Vec<u64>,
    /// The `(arc, sub-range)` each leaf slot covers, in ring order. Slots
    /// past this list are padding and hash to [`EMPTY_HASH`].
    slots: Vec<(Arc_, u32)>,
}

impl TreeHeap {
    /// The root hash. Equal roots ⇒ identical replica state over the
    /// covered arcs.
    pub fn root(&self) -> u64 {
        self.hashes.first().copied().unwrap_or(EMPTY_HASH)
    }

    /// Width of the padded leaf level.
    fn base(&self) -> usize {
        self.hashes.len().div_ceil(2)
    }

    /// Hash at heap index `idx`, if in range.
    pub fn node(&self, idx: u32) -> Option<u64> {
        self.hashes.get(idx as usize).copied()
    }

    /// True when `idx` addresses the leaf level.
    pub fn is_leaf(&self, idx: u32) -> bool {
        (idx as usize) >= self.base() - 1
    }

    /// The key range a leaf-level index covers (`None` for padding slots).
    pub fn slot(&self, idx: u32) -> Option<(Arc_, u32)> {
        (idx as usize).checked_sub(self.base() - 1).and_then(|i| self.slots.get(i).copied())
    }

    /// Child heap indices of an internal node.
    pub fn children(idx: u32) -> (u32, u32) {
        (2 * idx + 1, 2 * idx + 2)
    }
}

/// Incrementally-maintained Merkle state over the local store.
#[derive(Debug, Clone, Default)]
pub struct SyncTree {
    /// Leaf sub-ranges per ring arc.
    splits: u32,
    /// `(key_point, self_key) → (version, is_del)` for every local record.
    mirror: BTreeMap<(u64, String), (u64, bool)>,
    /// Cached leaf hashes keyed `(arc_end, sub)`: dropped per leaf on local
    /// writes, wholesale on ring change (arc boundaries moved).
    leaves: BTreeMap<(u64, u32), u64>,
    /// Whether `mirror` reflects a full collection scan yet.
    built: bool,
}

impl SyncTree {
    /// An empty tree cutting each arc into `splits` leaves (min 1).
    pub fn new(splits: u32) -> Self {
        SyncTree { splits: splits.max(1), ..SyncTree::default() }
    }

    /// Leaf sub-ranges per arc.
    pub fn splits(&self) -> u32 {
        self.splits
    }

    /// True once [`SyncTree::rebuild`] has seeded the mirror.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Mirrored records (tombstones included).
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// True when nothing is mirrored.
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Seeds the mirror from a full collection scan (first round after
    /// boot or restart). Leaf hashes recompute lazily.
    pub fn rebuild<I: IntoIterator<Item = (String, u64, bool)>>(&mut self, records: I) {
        self.mirror = records
            .into_iter()
            .map(|(key, version, is_del)| {
                ((HashRing::<NodeId>::key_point(key.as_bytes()), key), (version, is_del))
            })
            .collect();
        self.leaves.clear();
        self.built = true;
    }

    /// Forgets everything (node restart: the store is re-derived from the
    /// WAL, so the mirror must be re-seeded too).
    pub fn reset(&mut self) {
        self.mirror.clear();
        self.leaves.clear();
        self.built = false;
    }

    /// Ring membership changed: every arc boundary may have moved, so all
    /// cached leaf hashes are meaningless. The mirror survives — key
    /// points do not depend on the ring.
    pub fn on_ring_change(&mut self) {
        self.leaves.clear();
    }

    /// Records a local write/delete/reap of `key`: updates the mirror and
    /// dirties the covering leaf. `state` is the record's current
    /// `(version, is_del)`, `None` when it is physically gone (reaped).
    pub fn note(&mut self, ring: &HashRing<NodeId>, key: &str, state: Option<(u64, bool)>) {
        let point = HashRing::<NodeId>::key_point(key.as_bytes());
        match state {
            Some(vs) => {
                self.mirror.insert((point, key.to_string()), vs);
            }
            None => {
                self.mirror.remove(&(point, key.to_string()));
            }
        }
        if let Some(arc) = ring.arc_of_point(point) {
            let sub = self.sub_of(arc, point);
            self.leaves.remove(&(arc.end, sub));
        }
    }

    /// Which of `arc`'s sub-ranges `point` falls in. `point` must be inside
    /// the arc; out-of-arc points clamp to the last sub-range.
    pub fn sub_of(&self, arc: Arc_, point: u64) -> u32 {
        let len = span(arc);
        let mut off = u128::from(point.wrapping_sub(arc.start));
        if off == 0 {
            // Offset 0 is `start` itself, which is *outside* `(start, end]`
            // for every arc except the full circle — where it is the end.
            off = len;
        }
        (((off - 1) * u128::from(self.splits)) / len).min(u128::from(self.splits) - 1) as u32
    }

    /// Bounds `(lo, hi]` of sub-range `sub` of `arc` (half-open like the
    /// arc itself, wrapping through zero when the arc does).
    fn sub_bounds(&self, arc: Arc_, sub: u32) -> (u64, u64) {
        let len = span(arc);
        let s = u128::from(self.splits);
        let lo = arc.start.wrapping_add((len * u128::from(sub) / s) as u64);
        let hi = arc.start.wrapping_add((len * (u128::from(sub) + 1) / s) as u64);
        (lo, hi)
    }

    /// The hash of one leaf, computed (and cached) on demand.
    pub fn leaf_hash(&mut self, arc: Arc_, sub: u32) -> u64 {
        if let Some(&h) = self.leaves.get(&(arc.end, sub)) {
            return h;
        }
        let (lo, hi) = self.sub_bounds(arc, sub);
        let mut h = FNV_OFFSET;
        let mut any = false;
        self.for_range(lo, hi, &mut |key, version, is_del| {
            any = true;
            h = fnv1a(h, key.as_bytes());
            h = fnv1a(h, &[0]);
            h = fnv1a(h, &version.to_le_bytes());
            h = fnv1a(h, &[u8::from(is_del)]);
        });
        let h = if any { h } else { EMPTY_HASH };
        self.leaves.insert((arc.end, sub), h);
        h
    }

    /// The exhaustive `(key, version)` digest of one leaf, tombstones
    /// included — the per-key fallback for a divergent leaf.
    pub fn leaf_entries(&self, arc: Arc_, sub: u32) -> Vec<(String, u64)> {
        let (lo, hi) = self.sub_bounds(arc, sub);
        let mut out = Vec::new();
        self.for_range(lo, hi, &mut |key, version, _| out.push((key.to_string(), version)));
        out
    }

    /// What a flat digest of every mirrored key in `arcs` would cost, as
    /// `(entries, wire bytes)` using the legacy per-entry estimate
    /// (`key_len + 8`).
    pub fn flat_cost(&self, arcs: &[Arc_]) -> (u64, u64) {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for &arc in arcs {
            self.for_range(arc.start, arc.end, &mut |key, _, _| {
                entries += 1;
                bytes += key.len() as u64 + 8;
            });
        }
        (entries, bytes)
    }

    /// Builds the ephemeral exchange tree over `arcs` (ring order): each
    /// arc contributes `splits` leaves, padded to a power of two.
    pub fn heap(&mut self, arcs: &[Arc_]) -> TreeHeap {
        let mut slots = Vec::with_capacity(arcs.len() * self.splits as usize);
        for &arc in arcs {
            for sub in 0..self.splits {
                slots.push((arc, sub));
            }
        }
        let base = slots.len().next_power_of_two().max(1);
        let mut hashes = vec![EMPTY_HASH; 2 * base - 1];
        for i in 0..slots.len() {
            let Some(&(arc, sub)) = slots.get(i) else { break };
            let h = self.leaf_hash(arc, sub);
            if let Some(slot) = hashes.get_mut(base - 1 + i) {
                *slot = h;
            }
        }
        for i in (0..base - 1).rev() {
            let l = hashes.get(2 * i + 1).copied().unwrap_or(EMPTY_HASH);
            let r = hashes.get(2 * i + 2).copied().unwrap_or(EMPTY_HASH);
            let mut h = fnv1a(FNV_OFFSET, &l.to_le_bytes());
            h = fnv1a(h, &r.to_le_bytes());
            if let Some(slot) = hashes.get_mut(i) {
                *slot = h;
            }
        }
        TreeHeap { hashes, slots }
    }

    /// Applies `f` to every mirrored entry with key-point in the ring
    /// range `(lo, hi]`, which wraps through zero when `hi <= lo`
    /// (`hi == lo` is the full circle).
    fn for_range<F: FnMut(&str, u64, bool)>(&self, lo: u64, hi: u64, f: &mut F) {
        if hi > lo {
            self.segment(Some(lo), Some(hi), f);
        } else {
            self.segment(Some(lo), None, f);
            self.segment(None, Some(hi), f);
        }
    }

    /// One non-wrapping segment: exclusive `after`, inclusive `upto`,
    /// `None` = unbounded on that side.
    fn segment<F: FnMut(&str, u64, bool)>(&self, after: Option<u64>, upto: Option<u64>, f: &mut F) {
        let start = match after {
            Some(p) => match p.checked_add(1) {
                Some(q) => Bound::Included((q, String::new())),
                None => return, // `(u64::MAX, …]` without wrap is empty
            },
            None => Bound::Unbounded,
        };
        let end = match upto {
            Some(p) => match p.checked_add(1) {
                Some(q) => Bound::Excluded((q, String::new())),
                None => Bound::Unbounded, // `..= u64::MAX`
            },
            None => Bound::Unbounded,
        };
        for ((_, key), &(version, is_del)) in self.mirror.range((start, end)) {
            f(key, version, is_del);
        }
    }
}

/// Arc length as a `u128` so the full circle (`len() == 0`) is `2^64`,
/// never a division by zero.
fn span(arc: Arc_) -> u128 {
    match arc.len() {
        0 => 1u128 << 64,
        l => u128::from(l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring5() -> HashRing<NodeId> {
        let mut r = HashRing::new();
        for i in 0..5u32 {
            r.add_node(NodeId(i), format!("node{i}"), 16).unwrap();
        }
        r
    }

    fn seeded_tree(splits: u32, keys: usize) -> SyncTree {
        let mut t = SyncTree::new(splits);
        t.rebuild((0..keys).map(|i| (format!("key-{i:04}"), 100 + i as u64, i % 7 == 0)));
        t
    }

    #[test]
    fn every_key_lands_in_exactly_one_leaf() {
        let ring = ring5();
        let tree = seeded_tree(4, 500);
        let arcs: Vec<Arc_> = ring.partition().into_iter().map(|(a, _)| a).collect();
        let mut covered = 0usize;
        for &arc in &arcs {
            for sub in 0..tree.splits() {
                covered += tree.leaf_entries(arc, sub).len();
            }
        }
        assert_eq!(covered, 500, "leaves must tile the keyspace exactly once");
        // Spot-check sub_of against the leaf that actually contains the key.
        for i in (0..500).step_by(37) {
            let key = format!("key-{i:04}");
            let point = HashRing::<NodeId>::key_point(key.as_bytes());
            let arc = ring.arc_of_point(point).unwrap();
            let sub = tree.sub_of(arc, point);
            assert!(
                tree.leaf_entries(arc, sub).iter().any(|(k, _)| k == &key),
                "{key} missing from its computed leaf"
            );
        }
    }

    #[test]
    fn identical_mirrors_agree_and_divergence_is_localized() {
        let ring = ring5();
        let arcs: Vec<Arc_> = ring.partition().into_iter().map(|(a, _)| a).collect();
        let mut a = seeded_tree(8, 400);
        let mut b = seeded_tree(8, 400);
        assert_eq!(a.heap(&arcs).root(), b.heap(&arcs).root());

        // One divergent version: exactly one leaf hash moves.
        b.note(&ring, "key-0123", Some((9999, false)));
        let (ha, hb) = (a.heap(&arcs), b.heap(&arcs));
        assert_ne!(ha.root(), hb.root());
        let point = HashRing::<NodeId>::key_point(b"key-0123");
        let arc = ring.arc_of_point(point).unwrap();
        let bad_sub = a.sub_of(arc, point);
        let mut moved = Vec::new();
        for &probe_arc in &arcs {
            for sub in 0..8 {
                if a.leaf_hash(probe_arc, sub) != b.leaf_hash(probe_arc, sub) {
                    moved.push((probe_arc.end, sub));
                }
            }
        }
        assert_eq!(moved, vec![(arc.end, bad_sub)]);
    }

    #[test]
    fn tombstone_flag_changes_the_leaf_hash() {
        let ring = ring5();
        let mut a = seeded_tree(4, 50);
        let mut b = seeded_tree(4, 50);
        // Same key + version, delete flag flipped: must not hash equal.
        b.note(&ring, "key-0001", Some((101, true)));
        let arcs: Vec<Arc_> = ring.partition().into_iter().map(|(a, _)| a).collect();
        assert_ne!(a.heap(&arcs).root(), b.heap(&arcs).root());
    }

    #[test]
    fn note_removal_matches_a_rebuild_without_the_key() {
        let ring = ring5();
        let arcs: Vec<Arc_> = ring.partition().into_iter().map(|(a, _)| a).collect();
        let mut incremental = seeded_tree(4, 120);
        incremental.note(&ring, "key-0060", None);
        let mut scratch = SyncTree::new(4);
        scratch.rebuild(
            (0..120)
                .filter(|&i| i != 60)
                .map(|i| (format!("key-{i:04}"), 100 + i as u64, i % 7 == 0)),
        );
        assert_eq!(incremental.heap(&arcs).root(), scratch.heap(&arcs).root());
    }

    #[test]
    fn heap_shape_and_walk_indices() {
        let mut t = seeded_tree(2, 64);
        let arcs: Vec<Arc_> = ring5().partition().into_iter().map(|(a, _)| a).collect();
        let heap = t.heap(&arcs);
        // 80 arcs × 2 subs = 160 leaves → padded to 256.
        assert!(!heap.is_leaf(0));
        let (l, r) = TreeHeap::children(0);
        assert_eq!((l, r), (1, 2));
        let first_leaf = (256 - 1) as u32;
        assert!(heap.is_leaf(first_leaf));
        assert!(heap.slot(first_leaf).is_some());
        assert!(heap.slot(first_leaf + 160).is_none(), "padding has no slot");
        assert!(heap.node(first_leaf + 255).is_some());
        assert!(heap.node(first_leaf + 256).is_none());
    }

    #[test]
    fn ring_hash_is_symmetric_and_arc_sensitive() {
        let ring = ring5();
        let arcs = shared_arcs(&ring, 3, NodeId(0), NodeId(1));
        assert!(!arcs.is_empty());
        assert_eq!(
            ring_hash(NodeId(0), NodeId(1), 16, &arcs),
            ring_hash(NodeId(1), NodeId(0), 16, &arcs)
        );
        assert_ne!(
            ring_hash(NodeId(0), NodeId(1), 16, &arcs),
            ring_hash(NodeId(0), NodeId(1), 8, &arcs)
        );
        let fewer = &arcs[..arcs.len() - 1];
        assert_ne!(
            ring_hash(NodeId(0), NodeId(1), 16, &arcs),
            ring_hash(NodeId(0), NodeId(1), 16, fewer)
        );
    }

    #[test]
    fn shared_arcs_cover_exactly_the_jointly_replicated_keys() {
        let ring = ring5();
        let arcs = shared_arcs(&ring, 3, NodeId(2), NodeId(4));
        for i in 0..300 {
            let key = format!("probe-{i}");
            let point = HashRing::<NodeId>::key_point(key.as_bytes());
            let prefs = ring.preference_list(key.as_bytes(), 3);
            let joint = prefs.contains(&NodeId(2)) && prefs.contains(&NodeId(4));
            let in_shared = arcs.iter().any(|a| a.contains(point));
            assert_eq!(joint, in_shared, "{key}");
        }
    }
}
