//! Test and experiment utilities.
//!
//! [`Probe`] is a scripted client process: it injects messages into the
//! cluster at chosen virtual times and records every response it receives.
//! Integration tests, examples, and the experiment harness all use it to
//! observe the cluster from the outside.

use mystore_net::{Context, NodeId, Process, SimTime, TimerToken};

use crate::message::Msg;

/// A scripted client: sends each `(at_us, target, message)` entry at its
/// time and collects responses.
pub struct Probe {
    script: Vec<(u64, NodeId, Option<Msg>)>,
    /// Responses received, with arrival times.
    pub responses: Vec<(SimTime, NodeId, Msg)>,
}

impl Probe {
    /// Creates a probe with a fixed script.
    pub fn new(script: Vec<(u64, NodeId, Msg)>) -> Self {
        Probe {
            script: script.into_iter().map(|(t, n, m)| (t, n, Some(m))).collect(),
            responses: Vec::new(),
        }
    }

    /// Number of responses whose payload satisfies `pred`.
    pub fn count_where(&self, pred: impl Fn(&Msg) -> bool) -> usize {
        self.responses.iter().filter(|(_, _, m)| pred(m)).count()
    }

    /// The response matching a correlation id, if any (checks the common
    /// response variants).
    pub fn response_for(&self, req: u64) -> Option<&Msg> {
        self.responses.iter().map(|(_, _, m)| m).find(|m| match m {
            Msg::GetResp { req: r, .. }
            | Msg::PutResp { req: r, .. }
            | Msg::CasResp { req: r, .. }
            | Msg::TokenResp { req: r, .. }
            | Msg::CacheGetResp { req: r, .. } => *r == req,
            Msg::RestResp(resp) => resp.req == req,
            _ => false,
        })
    }
}

impl Process<Msg> for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*at, i as TimerToken);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        self.responses.push((ctx.now(), from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        if let Some((_, target, slot)) = self.script.get_mut(token as usize) {
            if let Some(msg) = slot.take() {
                ctx.send(*target, msg);
            }
        }
    }
}

/// A sequential conditional-put client: issues `total` CAS operations on
/// one key, chaining each op's `If-Match` off the previous outcome —
/// success hands back the new version, a conflict hands back the version
/// actually present, and either way the next op conditions on it. Exercises
/// the full CAS loop (predicate read, conditional write, conflict adoption)
/// against whatever chaos the surrounding test schedules.
pub struct CasProbe {
    /// Coordinators to rotate across, one per op.
    pub targets: Vec<NodeId>,
    /// Key every op contends on.
    pub key: String,
    /// When to start (virtual µs; leave gossip time to converge).
    pub start_at_us: u64,
    /// Gap between an outcome and the next op (µs).
    pub gap_us: u64,
    /// Ops to issue in total.
    pub total: u64,
    /// Ops issued so far (also the request-id cursor).
    pub issued: u64,
    /// The version the next op conditions on (`0` = expect absent).
    pub expected: u64,
    /// Successful conditional writes.
    pub oks: u64,
    /// Predicate rejections (the probe then adopts the actual version).
    pub conflicts: u64,
    /// Quorum/ring errors surfaced to the client.
    pub errors: u64,
}

impl CasProbe {
    /// A probe issuing `total` chained CAS ops on `key` across `targets`.
    pub fn new(targets: Vec<NodeId>, key: impl Into<String>, start_at_us: u64, total: u64) -> Self {
        CasProbe {
            targets,
            key: key.into(),
            start_at_us,
            gap_us: 150_000,
            total,
            issued: 0,
            expected: 0,
            oks: 0,
            conflicts: 0,
            errors: 0,
        }
    }

    /// Ops that have completed (any outcome).
    pub fn completed(&self) -> u64 {
        self.oks + self.conflicts + self.errors
    }

    fn next_op(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.issued >= self.total {
            return;
        }
        let req = self.issued;
        let target = self.targets[(self.issued % self.targets.len() as u64) as usize];
        self.issued += 1;
        let value: crate::message::Body = format!("cas-gen-{}", self.issued).into_bytes().into();
        ctx.send(target, Msg::Cas { req, key: self.key.clone(), value, expected: self.expected });
    }
}

impl Process<Msg> for CasProbe {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(self.start_at_us, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::CasResp { result, .. } = msg else { return };
        match result {
            Ok(new_version) => {
                self.oks += 1;
                self.expected = new_version;
                ctx.record("cas_probe_ok", 1.0);
            }
            Err(crate::message::StoreError::CasConflict(actual)) => {
                // Someone (or a duplicated own write) got there first: adopt
                // the observed version and retry against it.
                self.conflicts += 1;
                self.expected = actual;
                ctx.record("cas_probe_conflict", 1.0);
            }
            Err(_) => {
                self.errors += 1;
                ctx.record("cas_probe_error", 1.0);
            }
        }
        if self.completed() < self.total {
            ctx.set_timer(self.gap_us, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _token: TimerToken) {
        self.next_op(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_node::CacheNode;
    use crate::config::CostModel;
    use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig};

    #[test]
    fn probe_sends_script_and_collects_responses() {
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::instant(), faults: Default::default(), seed: 1 });
        let cache =
            sim.add_node(CacheNode::new(1 << 16, CostModel::default()), NodeConfig::default());
        let probe = sim.add_node(
            Probe::new(vec![
                (10, cache, Msg::CachePut { key: "k".into(), value: std::sync::Arc::new(vec![9]) }),
                (20, cache, Msg::CacheGet { req: 77, key: "k".into() }),
            ]),
            NodeConfig::default(),
        );
        sim.start();
        sim.run_for(1_000_000);
        let p = sim.process::<Probe>(probe).unwrap();
        assert_eq!(p.responses.len(), 1);
        match p.response_for(77) {
            Some(Msg::CacheGetResp { value: Some(v), .. }) => assert_eq!(**v, vec![9]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.count_where(|m| matches!(m, Msg::CacheGetResp { .. })), 1);
    }
}
