//! Test and experiment utilities.
//!
//! [`Probe`] is a scripted client process: it injects messages into the
//! cluster at chosen virtual times and records every response it receives.
//! Integration tests, examples, and the experiment harness all use it to
//! observe the cluster from the outside.

use mystore_net::{Context, NodeId, Process, SimTime, TimerToken};

use crate::message::Msg;

/// A scripted client: sends each `(at_us, target, message)` entry at its
/// time and collects responses.
pub struct Probe {
    script: Vec<(u64, NodeId, Option<Msg>)>,
    /// Responses received, with arrival times.
    pub responses: Vec<(SimTime, NodeId, Msg)>,
}

impl Probe {
    /// Creates a probe with a fixed script.
    pub fn new(script: Vec<(u64, NodeId, Msg)>) -> Self {
        Probe {
            script: script.into_iter().map(|(t, n, m)| (t, n, Some(m))).collect(),
            responses: Vec::new(),
        }
    }

    /// Number of responses whose payload satisfies `pred`.
    pub fn count_where(&self, pred: impl Fn(&Msg) -> bool) -> usize {
        self.responses.iter().filter(|(_, _, m)| pred(m)).count()
    }

    /// The response matching a correlation id, if any (checks the common
    /// response variants).
    pub fn response_for(&self, req: u64) -> Option<&Msg> {
        self.responses.iter().map(|(_, _, m)| m).find(|m| match m {
            Msg::GetResp { req: r, .. }
            | Msg::PutResp { req: r, .. }
            | Msg::TokenResp { req: r, .. }
            | Msg::CacheGetResp { req: r, .. } => *r == req,
            Msg::RestResp(resp) => resp.req == req,
            _ => false,
        })
    }
}

impl Process<Msg> for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*at, i as TimerToken);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        self.responses.push((ctx.now(), from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        if let Some((_, target, slot)) = self.script.get_mut(token as usize) {
            if let Some(msg) = slot.take() {
                ctx.send(*target, msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_node::CacheNode;
    use crate::config::CostModel;
    use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig};

    #[test]
    fn probe_sends_script_and_collects_responses() {
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::instant(), faults: Default::default(), seed: 1 });
        let cache =
            sim.add_node(CacheNode::new(1 << 16, CostModel::default()), NodeConfig::default());
        let probe = sim.add_node(
            Probe::new(vec![
                (10, cache, Msg::CachePut { key: "k".into(), value: vec![9] }),
                (20, cache, Msg::CacheGet { req: 77, key: "k".into() }),
            ]),
            NodeConfig::default(),
        );
        sim.start();
        sim.run_for(1_000_000);
        let p = sim.process::<Probe>(probe).unwrap();
        assert_eq!(p.responses.len(), 1);
        match p.response_for(77) {
            Some(Msg::CacheGetResp { value: Some(v), .. }) => assert_eq!(v, &vec![9]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.count_where(|m| matches!(m, Msg::CacheGetResp { .. })), 1);
    }
}
