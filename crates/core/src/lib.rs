//! `mystore-core` — the MyStore distributed storage system (the paper's
//! contribution).
//!
//! MyStore layers Dynamo-style availability machinery over a cluster of
//! single-node document stores ([`mystore_engine`]):
//!
//! * **Distribution** — consistent hashing with capacity-proportional
//!   virtual nodes ([`mystore_ring`]), rings rebuilt from gossiped
//!   membership,
//! * **Replication** — NWR quorums ([`config::Nwr`], default `(3,2,1)`)
//!   with last-write-wins merge,
//! * **State transfer** — push-pull gossip with seed nodes
//!   ([`mystore_gossip`]),
//! * **Failure handling** — hinted handoff for short failures, seed-declared
//!   removal plus re-replication for long failures, range migration on node
//!   addition,
//! * **Front end** — REST GET/POST/DELETE with URI-signature auth
//!   ([`auth`]), round-robin dispatch, and a hash-sharded LRU cache tier
//!   ([`mystore_cache`]),
//! * **Extension** — chunked large-value storage ([`chunks`], the paper's
//!   future-work item).
//!
//! Every component is a sans-io [`mystore_net::Process`]; deployments are
//! assembled by [`cluster::ClusterSpec`] on either the deterministic
//! simulator or the threaded runtime.
//!
//! ```
//! use mystore_core::prelude::*;
//! use mystore_net::{NetConfig, SimConfig, SimTime, FaultPlan, NodeId};
//!
//! // Build the paper's Fig. 10 topology on the simulator.
//! let spec = ClusterSpec::paper_topology();
//! let mut sim = spec.build_sim(SimConfig {
//!     net: NetConfig::gigabit_lan(),
//!     faults: FaultPlan::none(),
//!     seed: 1,
//! });
//! sim.start();
//! sim.run_for(spec.warmup_us());
//!
//! // Write through a storage coordinator and read it back.
//! let coordinator = spec.storage_ids()[0];
//! sim.inject(sim.now() + 1, coordinator, Msg::Put {
//!     req: 1, key: "Resistor5".into(), value: b"xml scene".to_vec().into(), delete: false,
//! });
//! sim.run_for(1_000_000);
//! let node = sim.process::<StorageNode>(coordinator).unwrap();
//! assert_eq!(node.stats().puts_ok, 1);
//! ```

#![forbid(unsafe_code)]

pub mod auth;
pub mod cache_node;
pub mod chunks;
pub mod cluster;
pub mod config;
pub mod frontend;
pub mod message;
pub mod storage_node;
pub mod sync;
pub mod testing;

pub use auth::{sign, sign_request, AuthConfig, Signature, TokenStore};
pub use cache_node::CacheNode;
pub use cluster::ClusterSpec;
pub use config::{CostModel, FrontendConfig, Nwr, StorageConfig};
pub use frontend::{Frontend, FrontendMetrics, FrontendStats};
pub use message::{status, BatchPut, Method, Msg, RestRequest, RestResponse, StoreError};
pub use storage_node::{NodeStats, StorageMetrics, StorageNode};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cache_node::CacheNode;
    pub use crate::cluster::ClusterSpec;
    pub use crate::config::{CostModel, FrontendConfig, Nwr, StorageConfig};
    pub use crate::frontend::Frontend;
    pub use crate::message::{status, Method, Msg, RestRequest, RestResponse, StoreError};
    pub use crate::storage_node::StorageNode;
}
