//! Cluster configuration: NWR parameters, timeouts, and the node cost model.

use mystore_gossip::GossipConfig;
use mystore_net::NodeId;
use mystore_obs::Registry;

/// The NWR replication parameters (paper §2, §5.2.2).
///
/// `N` replicas per record; a write succeeds at `W` acknowledgements; a read
/// succeeds at `R` replies. The paper's deployed configuration is
/// `(3, 2, 1)` (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nwr {
    /// Replication factor.
    pub n: usize,
    /// Write quorum.
    pub w: usize,
    /// Read quorum.
    pub r: usize,
}

impl Nwr {
    /// The paper's deployed configuration.
    pub const PAPER: Nwr = Nwr { n: 3, w: 2, r: 1 };

    /// High-consistency configuration (`N = W`, `R = 1`, §5.2.2).
    pub const HIGH_CONSISTENCY: Nwr = Nwr { n: 3, w: 3, r: 1 };

    /// High-availability configuration (`W = 1`, §5.2.2).
    pub const HIGH_AVAILABILITY: Nwr = Nwr { n: 3, w: 1, r: 1 };

    /// Basic sanity: `1 ≤ W ≤ N`, `1 ≤ R ≤ N`.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("N must be at least 1".into());
        }
        if self.w == 0 || self.w > self.n {
            return Err(format!("W must be in 1..=N, got W={} N={}", self.w, self.n));
        }
        if self.r == 0 || self.r > self.n {
            return Err(format!("R must be in 1..=N, got R={} N={}", self.r, self.n));
        }
        Ok(())
    }

    /// Whether this configuration guarantees read-your-writes overlap
    /// (`R + W > N`).
    pub fn strongly_consistent(&self) -> bool {
        self.r + self.w > self.n
    }
}

impl Default for Nwr {
    fn default() -> Self {
        Nwr::PAPER
    }
}

/// Service-time cost model for simulated nodes (µs of CPU/disk per
/// operation). These values shape the saturation behaviour in Figs. 13–14;
/// they approximate a 2009-era Xeon + SAS-disk node.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed cost of applying a replica write (WAL append + index).
    pub put_base_us: u64,
    /// Per-byte write cost (reciprocal disk write bandwidth, bytes/µs).
    pub write_bytes_per_us: f64,
    /// Fixed cost of serving a replica read.
    pub get_base_us: u64,
    /// Per-byte read cost (page cache / disk mix, bytes/µs).
    pub read_bytes_per_us: f64,
    /// Cost of handling one gossip message.
    pub gossip_us: u64,
    /// Front-end per-request parse/route cost.
    pub frontend_base_us: u64,
    /// Front-end per-byte handling cost (copies, framing).
    pub frontend_bytes_per_us: f64,
    /// Cache-server per-request cost.
    pub cache_base_us: u64,
    /// Cache-server per-byte cost.
    pub cache_bytes_per_us: f64,
}

impl CostModel {
    /// Write service time for a payload of `bytes`.
    pub fn put_us(&self, bytes: usize) -> u64 {
        self.put_base_us + (bytes as f64 / self.write_bytes_per_us) as u64
    }

    /// Read service time for a payload of `bytes`.
    pub fn get_us(&self, bytes: usize) -> u64 {
        self.get_base_us + (bytes as f64 / self.read_bytes_per_us) as u64
    }

    /// Front-end service time for a payload of `bytes`.
    pub fn frontend_us(&self, bytes: usize) -> u64 {
        self.frontend_base_us + (bytes as f64 / self.frontend_bytes_per_us) as u64
    }

    /// Cache-server service time for a payload of `bytes`.
    pub fn cache_us(&self, bytes: usize) -> u64 {
        self.cache_base_us + (bytes as f64 / self.cache_bytes_per_us) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            put_base_us: 400,
            write_bytes_per_us: 80.0, // ~80 MB/s effective log write
            get_base_us: 150,
            read_bytes_per_us: 300.0, // ~300 MB/s page-cache-assisted read
            gossip_us: 30,
            frontend_base_us: 120,
            frontend_bytes_per_us: 800.0,
            cache_base_us: 25,
            cache_bytes_per_us: 2_000.0,
        }
    }
}

/// Per-storage-node configuration.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Quorum parameters.
    pub nwr: Nwr,
    /// Base virtual nodes this node contributes; the effective vnode count
    /// is `vnodes × weight` (see [`StorageConfig::weight`]).
    pub vnodes: u32,
    /// Capacity weight: a weight-`w` node contributes `w × vnodes` virtual
    /// nodes and therefore owns roughly `w×` the keyspace of a weight-1
    /// peer. Gossiped beside the vnode count so peers build identical
    /// rings; `1` (the default) is a plain homogeneous node.
    pub weight: u32,
    /// Gossip settings (seeds, intervals, failure thresholds).
    pub gossip: GossipConfig,
    /// Cost model for `ctx.consume` charging.
    pub cost: CostModel,
    /// How long a coordinator waits for replica acknowledgements before
    /// retrying a straggler (and, once retries are exhausted, taking the
    /// hinted-handoff path) (µs).
    pub replica_timeout_us: u64,
    /// Hard deadline after which an unfinished request fails (µs).
    pub request_deadline_us: u64,
    /// How many times a coordinator re-sends a replica op to a straggler
    /// before diverting to hinted handoff. Zero disables retries (the first
    /// missed deadline diverts immediately, the pre-retry behaviour).
    pub replica_retry_max: u32,
    /// Backoff before retry round `k` is `min(base << (k-1), cap)` plus
    /// jitter of up to a quarter of that (µs).
    pub retry_backoff_base_us: u64,
    /// Upper bound on the exponential backoff between retries (µs).
    pub retry_backoff_cap_us: u64,
    /// Interval of the hint-replay scan (µs) — node C probing node B
    /// (Fig. 8).
    pub hint_replay_interval_us: u64,
    /// Name of the data collection.
    pub collection: String,
    /// Enable hinted handoff for short failures (Fig. 8). Disable only for
    /// the A4 ablation.
    pub hinted_handoff: bool,
    /// Tombstone-reaper period (µs); `0` disables reaping.
    pub compaction_interval_us: u64,
    /// Tombstones younger than this are kept so late repairs/hints cannot
    /// resurrect deleted keys (µs).
    pub tombstone_grace_us: u64,
    /// Directory for this node's durable WAL (`node<id>.wal`); `None` keeps
    /// the database in memory (simulations). With a path set, a restarted
    /// node recovers its records, indexes, and parked hints from the log.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL group commit: stage up to this many log frames before issuing
    /// one real fsync that covers them all (Spinnaker-style batched commit).
    /// `1` keeps the per-op-sync behaviour (every append fsyncs).
    pub group_commit_ops: usize,
    /// Upper bound on how long a staged frame waits for its covering sync
    /// (µs). A recurring flush timer at this period syncs any partial batch,
    /// bounding ack latency under light load. Ignored when
    /// `group_commit_ops == 1`.
    pub group_commit_max_delay_us: u64,
    /// Coordinator-side fan-out coalescing: replica writes bound for the
    /// same peer are buffered for up to this long (µs) and sent as one
    /// batched replica message with per-op acks. `0` disables coalescing
    /// (every replica write is its own message).
    pub coalesce_window_us: u64,
    /// Anti-entropy period (µs); `0` disables. Each round, the node sends a
    /// `(key, version)` digest of a sample of its records to one replica
    /// peer, which answers with any newer copies — bounding replica
    /// divergence even for keys that are never read.
    pub anti_entropy_interval_us: u64,
    /// Maximum records digested per anti-entropy round (bounds message
    /// size; successive rounds rotate through the key space).
    pub anti_entropy_batch: usize,
    /// Idle backoff for anti-entropy: while `Db::last_seq` is unchanged
    /// between rounds, the period doubles up to `interval × max`; any local
    /// write snaps it back to the base interval. `1` disables backoff
    /// (fixed cadence), which is the default. Long-horizon simulations set
    /// this so a quiescent ring fast-forwards instead of grinding digests.
    pub anti_entropy_idle_backoff_max: u64,
    /// Rate limit of the incremental migration engine: at most this many
    /// records leave a node per migration tick. `0` (with a zero byte
    /// budget) disables the engine entirely — membership changes fall back
    /// to the legacy one-shot `rebalance_sweep`, keeping existing traces
    /// byte-identical. See DESIGN.md §16.
    pub migrate_max_records_per_tick: u32,
    /// Byte budget per migration tick (sum of record value sizes); `0`
    /// means no byte cap. Either budget being non-zero enables the
    /// incremental engine.
    pub migrate_max_bytes_per_tick: u64,
    /// Period of the migration tick (µs) while a migration plan is active.
    pub migrate_tick_us: u64,
    /// Merkle-tree anti-entropy (DESIGN.md §14): rounds open with a tree
    /// root over the key ranges shared with the chosen peer and walk only
    /// mismatched subtrees down to per-key digests, instead of shipping a
    /// flat `(key, version)` digest batch. Default off — the legacy flat
    /// digest — so existing traces stay byte-identical.
    pub anti_entropy_merkle: bool,
    /// Leaves per ring arc for the Merkle tree: each arc's key range is
    /// cut into this many equal sub-ranges. More splits localize
    /// divergence to fewer keys per leaf at the cost of a deeper walk.
    pub merkle_leaf_splits: u32,
    /// Metrics registry this node publishes into. Registries are cheap
    /// shared handles: give every node in a cluster a clone of the same
    /// registry and `/_stats` aggregates them all. The default is a private
    /// (unobserved) registry.
    pub metrics: Registry,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            nwr: Nwr::PAPER,
            vnodes: 128,
            weight: 1,
            gossip: GossipConfig::default(),
            cost: CostModel::default(),
            replica_timeout_us: 60_000,     // 60 ms
            request_deadline_us: 1_000_000, // 1 s
            replica_retry_max: 2,
            retry_backoff_base_us: 20_000, // 20 ms, then 40 ms, ...
            retry_backoff_cap_us: 500_000,
            hint_replay_interval_us: 2_000_000,
            collection: "data".into(),
            hinted_handoff: true,
            compaction_interval_us: 60_000_000,
            tombstone_grace_us: 300_000_000, // 5 min >> hint replay windows
            data_dir: None,
            group_commit_ops: 1,
            group_commit_max_delay_us: 2_000,
            coalesce_window_us: 0,
            anti_entropy_interval_us: 30_000_000,
            anti_entropy_batch: 256,
            anti_entropy_idle_backoff_max: 1,
            migrate_max_records_per_tick: 0,
            migrate_max_bytes_per_tick: 0,
            migrate_tick_us: 50_000,
            anti_entropy_merkle: false,
            merkle_leaf_splits: 16,
            metrics: Registry::new(),
        }
    }
}

impl StorageConfig {
    /// Effective virtual-node count this node advertises:
    /// `vnodes × weight`, saturating.
    pub fn effective_vnodes(&self) -> u32 {
        self.vnodes.saturating_mul(self.weight.max(1))
    }

    /// Whether membership changes run through the incremental,
    /// rate-limited migration engine (either per-tick budget set) instead
    /// of the legacy one-shot sweep.
    pub fn migration_rate_limited(&self) -> bool {
        self.migrate_max_records_per_tick > 0 || self.migrate_max_bytes_per_tick > 0
    }
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Storage nodes usable as coordinators (learned statically at deploy
    /// time, like the nginx upstream list).
    pub storage_nodes: Vec<NodeId>,
    /// Cache-server nodes, indexed by key hash; empty disables caching.
    pub cache_nodes: Vec<NodeId>,
    /// Maximum requests in flight before the front end sheds load with
    /// `503 Busy` (the spawn-fcgi process-pool bound).
    pub max_inflight: usize,
    /// Cost model for `ctx.consume` charging.
    pub cost: CostModel,
    /// Per-request deadline at the front end (µs).
    pub request_deadline_us: u64,
    /// How many times a request that hits its deadline is re-dispatched to
    /// the next round-robin coordinator before failing with `504` — covers
    /// a crashed or partitioned coordinator the static upstream list still
    /// names. Duplicate completions are harmless (writes are last-write-wins
    /// and the first response to arrive wins). Zero restores fail-fast.
    pub redispatch_max: u32,
    /// Longest key (bytes) accepted on the REST surface; longer keys are
    /// rejected with `400` before anything is forwarded to storage.
    pub max_key_bytes: usize,
    /// Enable URI-signature authentication (paper Fig. 2).
    pub auth: Option<crate::auth::AuthConfig>,
    /// Metrics registry; share one handle cluster-wide so the front end's
    /// `GET /_stats` endpoint reports every module (see [`StorageConfig::metrics`]).
    pub metrics: Registry,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            storage_nodes: Vec::new(),
            cache_nodes: Vec::new(),
            max_inflight: 512,
            cost: CostModel::default(),
            request_deadline_us: 5_000_000,
            redispatch_max: 1,
            max_key_bytes: 1024,
            auth: None,
            metrics: Registry::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nwr_validation() {
        assert!(Nwr::PAPER.validate().is_ok());
        assert!(Nwr { n: 0, w: 0, r: 0 }.validate().is_err());
        assert!(Nwr { n: 3, w: 4, r: 1 }.validate().is_err());
        assert!(Nwr { n: 3, w: 1, r: 0 }.validate().is_err());
        assert!(Nwr { n: 3, w: 1, r: 4 }.validate().is_err());
    }

    #[test]
    fn consistency_classification() {
        assert!(Nwr::HIGH_CONSISTENCY.strongly_consistent()); // 3+1 > 3
        assert!(!Nwr::PAPER.strongly_consistent()); // 2+1 == 3
        assert!(!Nwr::HIGH_AVAILABILITY.strongly_consistent());
    }

    #[test]
    fn cost_model_scales_with_bytes() {
        let c = CostModel::default();
        assert!(c.put_us(600_000) > c.put_us(3_000));
        assert!(c.get_us(0) == c.get_base_us);
        assert!(c.frontend_us(1000) >= c.frontend_base_us);
        assert!(c.cache_us(1000) >= c.cache_base_us);
    }
}
