//! Merkle-tree anti-entropy driver (DESIGN.md §14).
//!
//! The round initiator sends one [`Msg::SyncTreeRequest`] carrying the
//! root hash of a tree built over the arcs both peers replicate. Equal
//! roots end the exchange in two messages; unequal roots start a stateless
//! ping-pong walk ([`Msg::SyncTreeLevel`]) that descends only mismatched
//! subtrees, bottoming out in per-key digests ([`Msg::SyncLeafDigest`])
//! for just the divergent leaves. The per-key reconciliation then reuses
//! the legacy `SyncRecords`/`SyncDigest` machinery, so repair application
//! (LWW, reap-floor guard, WAL flush arming) has exactly one code path.
//!
//! Every handler re-derives the shared-arc layout from its own ring view
//! and checks the exchange's [`ring_hash`] guard: when the peers' views
//! disagree, heap indices would address different key ranges, so the
//! message is dropped (`sync.ring_mismatch`) and the next round retries.

use std::collections::BTreeSet;

use mystore_engine::Record;
use mystore_net::{Context, NodeId};
use mystore_ring::Arc_;

use crate::message::Msg;
use crate::storage_node::StorageNode;
use crate::sync::{ring_hash, shared_arcs, TreeHeap};

/// Wire bytes a root-match exchange costs (one `SyncTreeRequest`); what a
/// flat digest would have cost beyond this is counted as saved.
const ROOT_EXCHANGE_BYTES: u64 = 16;

impl StorageNode {
    /// Brings the sync tree up to date with the local store: a full
    /// collection scan on the first round after boot/restart, the engine's
    /// dirty-key feed afterwards.
    pub(crate) fn sync_tree_refresh(&mut self) {
        if !self.sync_tree.is_built() {
            let records: Vec<(String, u64, bool)> = self
                .db
                .collection(&self.cfg.collection)
                .map(|c| {
                    c.iter()
                        .filter_map(|(_, doc)| Record::from_document(doc).ok())
                        .map(|r| (r.self_key, r.version, r.is_del))
                        .collect()
                })
                .unwrap_or_default();
            // The scan supersedes any dirt accumulated before it.
            let _ = self.db.take_dirty_keys();
            self.sync_tree.rebuild(records);
            return;
        }
        for key in self.db.take_dirty_keys() {
            let state = self
                .db
                .get_record(&self.cfg.collection, &key)
                .ok()
                .flatten()
                .map(|r| (r.version, r.is_del));
            self.sync_tree.note(&self.ring, &key, state);
        }
    }

    /// The arcs this node shares with `peer` plus the exchange guard hash.
    fn shared_view(&self, peer: NodeId) -> (Vec<Arc_>, u64) {
        let arcs = shared_arcs(&self.ring, self.cfg.nwr.n, self.id(), peer);
        let hash = ring_hash(self.id(), peer, self.sync_tree.splits(), &arcs);
        (arcs, hash)
    }

    /// One Merkle anti-entropy round: pick the next alive replica peer in
    /// rotation and offer it our root hash over the arcs we share.
    pub(crate) fn merkle_round(&mut self, ctx: &mut Context<'_, Msg>) {
        self.sync_tree_refresh();
        let me = self.id();
        let n = self.cfg.nwr.n;
        // Replica peers: every node co-listed with us in some arc's
        // preference list. One partition scan, deduped in ring-id order.
        let mut candidates: BTreeSet<NodeId> = BTreeSet::new();
        for (arc, _) in self.ring.partition() {
            let replicas = self.ring.successors_of_point(arc.end, n);
            if replicas.contains(&me) {
                candidates.extend(replicas.into_iter().filter(|&p| p != me));
            }
        }
        let peers: Vec<NodeId> =
            candidates.into_iter().filter(|&p| self.gossiper.is_alive(p)).collect();
        self.sync_round += 1;
        let Some(&peer) = peers.get(self.sync_round as usize % peers.len().max(1)) else {
            return;
        };
        let (arcs, hash) = self.shared_view(peer);
        if arcs.is_empty() {
            return;
        }
        self.sync_metrics.rounds.inc();
        let root = self.sync_tree.heap(&arcs).root();
        ctx.send(peer, Msg::SyncTreeRequest { ring_hash: hash, root });
    }

    /// Peer side of a round opening: equal roots settle the exchange,
    /// unequal roots start the walk from the root's children.
    pub(crate) fn on_sync_tree_request(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        their_hash: u64,
        their_root: u64,
    ) {
        if !self.cfg.anti_entropy_merkle {
            return;
        }
        ctx.consume(self.cfg.cost.gossip_us);
        self.sync_tree_refresh();
        let (arcs, hash) = self.shared_view(from);
        if hash != their_hash || arcs.is_empty() {
            self.sync_metrics.ring_mismatch.inc();
            return;
        }
        let heap = self.sync_tree.heap(&arcs);
        if heap.root() == their_root {
            self.sync_metrics.root_match.inc();
            let (_, flat_bytes) = self.sync_tree.flat_cost(&arcs);
            self.sync_metrics.bytes_saved.add(flat_bytes.saturating_sub(ROOT_EXCHANGE_BYTES));
            return;
        }
        self.descend(ctx, from, hash, &heap, &[0]);
    }

    /// Walk step: compare the peer's hashes against ours and descend the
    /// subtrees that differ.
    pub(crate) fn on_sync_tree_level(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        their_hash: u64,
        their_nodes: Vec<(u32, u64)>,
    ) {
        if !self.cfg.anti_entropy_merkle {
            return;
        }
        ctx.consume(self.cfg.cost.gossip_us + their_nodes.len() as u64 / 4);
        self.sync_tree_refresh();
        let (arcs, hash) = self.shared_view(from);
        if hash != their_hash || arcs.is_empty() {
            self.sync_metrics.ring_mismatch.inc();
            return;
        }
        self.sync_metrics.tree_levels.inc();
        let heap = self.sync_tree.heap(&arcs);
        let mismatched: Vec<u32> = their_nodes
            .into_iter()
            .filter(|&(idx, h)| heap.node(idx).is_some_and(|mine| mine != h))
            .map(|(idx, _)| idx)
            .collect();
        if !mismatched.is_empty() {
            self.descend(ctx, from, hash, &heap, &mismatched);
        }
    }

    /// Sends the next walk step for `mismatched` heap indices: children of
    /// internal nodes ride a `SyncTreeLevel`, divergent leaves bottom out
    /// as one `SyncLeafDigest` with their exhaustive per-key digests.
    fn descend(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        to: NodeId,
        hash: u64,
        heap: &TreeHeap,
        mismatched: &[u32],
    ) {
        let mut nodes: Vec<(u32, u64)> = Vec::new();
        let mut leaves: Vec<u32> = Vec::new();
        let mut entries: Vec<(String, u64)> = Vec::new();
        for &idx in mismatched {
            if heap.is_leaf(idx) {
                // Padding slots hash EMPTY on both sides and cannot
                // mismatch under an agreed ring hash; skip them defensively.
                let Some((arc, sub)) = heap.slot(idx) else { continue };
                leaves.push(idx);
                entries.extend(self.sync_tree.leaf_entries(arc, sub));
            } else {
                let (l, r) = TreeHeap::children(idx);
                for child in [l, r] {
                    if let Some(h) = heap.node(child) {
                        nodes.push((child, h));
                    }
                }
            }
        }
        if !nodes.is_empty() {
            ctx.send(to, Msg::SyncTreeLevel { ring_hash: hash, nodes });
        }
        if !leaves.is_empty() {
            self.sync_metrics.leaf_digests.inc();
            self.sync_metrics.digest_entries.add(entries.len() as u64);
            ctx.send(to, Msg::SyncLeafDigest { ring_hash: hash, leaves, entries });
        }
    }

    /// Terminal step: per-key reconciliation over the divergent leaves
    /// only. Same LWW rules as the legacy digest exchange, plus a push of
    /// every key we hold in those leaves that the sender lacks entirely
    /// (the sender's own reap floor decides whether a pushed record
    /// applies).
    pub(crate) fn on_sync_leaf_digest(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        their_hash: u64,
        leaves: Vec<u32>,
        entries: Vec<(String, u64)>,
    ) {
        if !self.cfg.anti_entropy_merkle {
            return;
        }
        ctx.consume(self.cfg.cost.gossip_us + entries.len() as u64 / 4);
        self.sync_tree_refresh();
        let (arcs, hash) = self.shared_view(from);
        if hash != their_hash || arcs.is_empty() {
            self.sync_metrics.ring_mismatch.inc();
            return;
        }
        let heap = self.sync_tree.heap(&arcs);
        let mut newer: Vec<Record> = Vec::new();
        let mut behind: Vec<(String, u64)> = Vec::new();
        {
            let theirs: BTreeSet<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            for idx in leaves {
                let Some((arc, sub)) = heap.slot(idx) else { continue };
                for (key, _) in self.sync_tree.leaf_entries(arc, sub) {
                    if theirs.contains(key.as_str()) {
                        continue;
                    }
                    if let Ok(Some(mine)) = self.db.get_record(&self.cfg.collection, &key) {
                        newer.push(mine);
                    }
                }
            }
        }
        for (key, their_version) in entries {
            match self.db.get_record(&self.cfg.collection, &key) {
                Ok(Some(mine)) if mine.wins_over_version(their_version) => newer.push(mine),
                Ok(Some(mine)) if mine.loses_to_version(their_version) => {
                    behind.push((key, mine.version))
                }
                Ok(Some(_)) => {} // equal versions: the same write
                _ => {
                    // Missing key: same resurrection guard as the legacy
                    // digest path (see `on_sync_digest`).
                    if their_version > self.reap_floor {
                        behind.push((key, 0));
                    } else {
                        self.sync_metrics.resurrections_blocked.inc();
                    }
                }
            }
        }
        if !newer.is_empty() {
            ctx.send(from, Msg::SyncRecords { records: newer });
        }
        if !behind.is_empty() {
            self.sync_metrics.digest_entries.add(behind.len() as u64);
            ctx.send(from, Msg::SyncDigest { entries: behind });
        }
    }
}
