//! The replica-level server side of the storage node: applying
//! coordinator-issued stores/fetches/hints, and the ack-deferral rule that
//! keeps "ack" meaning "durable here" under group commit.

use std::sync::Arc;

use mystore_bson::doc;
use mystore_engine::Record;
use mystore_net::{Context, NodeId, OpFault};

use crate::message::{BatchPut, Msg};
use crate::storage_node::{StorageNode, HINTS};

impl StorageNode {
    /// Sends a replica ack, or parks it while the write's WAL frame is still
    /// waiting on its covering group-commit sync — an ack must mean the
    /// write is durable *here*, so it is released only once the sync lands
    /// (threshold reached or `TK_WAL_FLUSH` fires).
    pub(crate) fn queue_ack(&mut self, ctx: &mut Context<'_, Msg>, to: NodeId, req: u64, ok: bool) {
        if ok && self.db.wal_pending_ops() > 0 {
            self.deferred_acks.push((to, req, ok));
            self.metrics.acks_deferred.inc();
            self.ensure_wal_flush_armed(ctx);
        } else {
            ctx.send(to, Msg::StoreAck { req, ok });
            // This write may itself have triggered the threshold sync that
            // made earlier staged frames durable — release their acks too.
            self.maybe_flush_deferred_acks(ctx);
        }
    }

    /// Releases parked acks once nothing is staged in the WAL any more.
    pub(crate) fn maybe_flush_deferred_acks(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.deferred_acks.is_empty() || self.db.wal_pending_ops() > 0 {
            return;
        }
        for (to, req, ok) in std::mem::take(&mut self.deferred_acks) {
            ctx.send(to, Msg::StoreAck { req, ok });
        }
    }

    pub(crate) fn on_store_replica(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        record: Arc<Record>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return, // message effectively lost
            Some(OpFault::DiskIoError) => {
                if req != 0 {
                    ctx.send(from, Msg::StoreAck { req, ok: false });
                }
                return;
            }
            _ => {}
        }
        // A degraded disk (slow-fsync fault) taxes every durable write.
        ctx.consume(self.cfg.cost.put_us(record.val.len()) + ctx.disk_penalty_us());
        self.stats.replica_puts += 1;
        let ok = self.db.put_record(&self.cfg.collection, &record).is_ok();
        if ok {
            // Dual ownership: a write landing on a still-inbound arc is
            // forwarded to the arc's old owner (no-op outside migrations).
            self.maybe_forward_inbound(ctx, from, &record);
        }
        if req != 0 {
            self.queue_ack(ctx, from, req, ok);
        } else {
            self.maybe_flush_deferred_acks(ctx);
            self.ensure_wal_flush_armed(ctx);
        }
    }

    /// A coalesced fan-out: apply every op, cover them all with one WAL
    /// sync, then ack each op individually so the coordinator's per-op
    /// retry/handoff machinery is none the wiser.
    pub(crate) fn on_store_replica_batch(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        ops: Vec<BatchPut>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return, // whole message lost
            Some(OpFault::DiskIoError) => {
                let acks = ops.iter().map(|op| (op.req, false)).collect();
                ctx.send(from, Msg::StoreAckBatch { acks });
                return;
            }
            _ => {}
        }
        let mut acks = Vec::with_capacity(ops.len());
        for op in &ops {
            ctx.consume(self.cfg.cost.put_us(op.record.val.len()));
            self.stats.replica_puts += 1;
            let ok = self.db.put_record(&self.cfg.collection, &op.record).is_ok();
            if ok {
                self.maybe_forward_inbound(ctx, from, &op.record);
            }
            acks.push((op.req, ok));
        }
        // One sync covers the whole batch — and pays the disk penalty once.
        ctx.consume(ctx.disk_penalty_us());
        if self.db.sync_wal().is_err() {
            for ack in &mut acks {
                ack.1 = false;
            }
        }
        ctx.send(from, Msg::StoreAckBatch { acks });
        self.maybe_flush_deferred_acks(ctx);
    }

    pub(crate) fn on_fetch_replica(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        key: String,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return,
            Some(OpFault::DiskIoError) => {
                ctx.send(from, Msg::FetchAck { req, found: None, ok: false });
                return;
            }
            _ => {}
        }
        let found = self.local_fetch(ctx, &key);
        // Dual-ownership reads: a miss on a key whose arc is still inbound
        // is not authoritative — the record may simply not have been
        // transferred yet. Ask the arc's old owner and defer the ack; the
        // `FetchAck` dispatch completes the original request when the
        // source answers (or a sweep expires the proxy with a miss).
        if found.is_none() {
            if let Some(source) = self.proxy_source(&key) {
                let proxy_req = self.fresh_req();
                self.read_proxies.insert(
                    proxy_req,
                    crate::storage_node::migrate::ProxyFetch {
                        requester: from,
                        orig_req: req,
                        sent_at_us: ctx.now().as_micros(),
                    },
                );
                ctx.send(source, Msg::FetchReplica { req: proxy_req, key });
                return;
            }
        }
        ctx.send(from, Msg::FetchAck { req, found, ok: true });
    }

    /// Serves a local read (both the replica side of `FetchReplica` and the
    /// coordinator's own copy during a read fan-out).
    pub(crate) fn local_fetch(&mut self, ctx: &mut Context<'_, Msg>, key: &str) -> Option<Record> {
        self.stats.replica_gets += 1;
        let found = self.db.get_record(&self.cfg.collection, key).ok().flatten();
        ctx.consume(self.cfg.cost.get_us(found.as_ref().map(|r| r.val.len()).unwrap_or(0)));
        found
    }

    /// Hinted handoff (Fig. 8), receiving side: park the record durably for
    /// the unreachable `intended` replica.
    pub(crate) fn on_store_hint(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        intended: NodeId,
        record: Arc<Record>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return,
            Some(OpFault::DiskIoError) => {
                ctx.send(from, Msg::StoreAck { req, ok: false });
                return;
            }
            _ => {}
        }
        ctx.consume(self.cfg.cost.put_us(record.val.len()) + ctx.disk_penalty_us());
        // "When C receives the request, it creates an index for the
        // replication" — we persist the hint durably.
        let hint_doc = doc! {
            "intended": intended.0 as i64,
            "rec": record.to_document(),
        };
        let ok = self.db.insert_doc(HINTS, hint_doc).is_ok();
        if ok {
            self.metrics.hints_stored.inc();
            self.metrics.hint_queue_depth.add(1);
        }
        self.queue_ack(ctx, from, req, ok);
    }
}
