//! Background maintenance of the storage node: membership/ring upkeep and
//! rebalance (Fig. 9), hint replay (Fig. 8), anti-entropy exchange,
//! coordinator outbox coalescing, and the WAL-flush / gossip ticks.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mystore_bson::ObjectId;
use mystore_engine::{Collection, Db, Record};
use mystore_gossip::{keys as gossip_keys, MembershipEvent};
use mystore_net::{Context, NodeId};
use mystore_ring::HashRing;

use crate::message::Msg;
use crate::storage_node::{tk, StorageNode, HINTS, TK_GOSSIP, TK_WAL_FLUSH};

/// A hint replay awaiting its `StoreAck`: which hint document it is for and
/// when it was sent, so stale entries can be swept instead of leaking.
pub(crate) struct HintInFlight {
    pub(crate) id: ObjectId,
    pub(crate) sent_at_us: u64,
}

impl StorageNode {
    // ---- membership -----------------------------------------------------

    /// Builds the membership signature from gossiped state: every known,
    /// not-removed endpoint advertising a positive virtual-node count.
    fn membership_signature(&self) -> Vec<(NodeId, u32)> {
        let mut sig: Vec<(NodeId, u32)> = self
            .gossiper
            .known_endpoints()
            .filter(|&ep| !self.gossiper.is_removed(ep))
            .filter_map(|ep| {
                let vn = if ep == self.id() {
                    self.cfg.effective_vnodes()
                } else {
                    self.gossiper.app_state(ep, gossip_keys::VNODES)?.parse().ok()?
                };
                (vn > 0).then_some((ep, vn))
            })
            .collect();
        sig.sort_unstable();
        sig
    }

    /// Rebuilds the ring if membership changed; sweeps data when it did.
    pub(crate) fn refresh_ring(&mut self, ctx: &mut Context<'_, Msg>) {
        let sig = self.membership_signature();
        if sig == self.ring_sig {
            return;
        }
        let mut ring = HashRing::new();
        for &(node, vnodes) in &sig {
            // The signature is deduped by construction; if a duplicate ever
            // slipped through, keeping the first entry beats crashing.
            let _ = ring.add_node(node, format!("node{}", node.0), vnodes);
        }
        let old_ring = std::mem::replace(&mut self.ring, ring);
        self.ring_sig = sig;
        // Arc boundaries moved: every cached Merkle leaf hash is stale.
        self.sync_tree.on_ring_change();
        if self.cfg.migration_rate_limited() {
            // DESIGN.md §16: drain the change incrementally under the
            // per-tick budgets instead of sweeping everything at once.
            self.start_migration(ctx, old_ring);
        } else {
            self.rebalance_sweep(ctx, &old_ring);
        }
    }

    /// §5.2.4: after membership change, move records whose preference list
    /// no longer includes us, and supplement replicas on the nodes that
    /// should now hold them. LWW application makes re-sends idempotent.
    ///
    /// Fan-out is bounded by the old-vs-new ring diff: a peer only receives
    /// a copy when it *newly entered* the record's preference list (it
    /// either already holds the record or is owed it by an earlier sweep
    /// otherwise) — except when we are dropping our own copy, where every
    /// remaining replica gets one because we may be its last holder.
    fn rebalance_sweep(&mut self, ctx: &mut Context<'_, Msg>, old_ring: &HashRing<NodeId>) {
        let me = self.id();
        let n = self.cfg.nwr.n;
        let Ok(coll) = self.db.collection(&self.cfg.collection) else { return };
        // Ordered map: the send order below feeds the sim schedule.
        let mut outgoing: BTreeMap<NodeId, Vec<Arc<Record>>> = BTreeMap::new();
        let mut to_drop: Vec<ObjectId> = Vec::new();
        for (id, docu) in coll.iter() {
            let Ok(record) = Record::from_document(docu) else { continue };
            let record = Arc::new(record);
            let prefs = self.ring.preference_list(record.self_key.as_bytes(), n);
            if prefs.is_empty() {
                continue;
            }
            let keep = prefs.contains(&me);
            let old_prefs = old_ring.preference_list(record.self_key.as_bytes(), n);
            for &target in prefs.iter().filter(|&&p| p != me) {
                if keep && old_prefs.contains(&target) {
                    continue;
                }
                outgoing.entry(target).or_default().push(Arc::clone(&record));
            }
            if !keep {
                to_drop.push(*id);
            }
        }
        for id in to_drop {
            let _ = self.db.remove(&self.cfg.collection, id);
            self.stats.records_migrated_out += 1;
        }
        // Batch transfers to bound message counts.
        const BATCH: usize = 64;
        for (target, records) in outgoing {
            self.stats.rebalance_records_sent += records.len() as u64;
            for chunk in records.chunks(BATCH) {
                ctx.send(target, Msg::TransferRecords { records: chunk.to_vec() });
            }
        }
    }

    pub(crate) fn process_membership(&mut self, ctx: &mut Context<'_, Msg>) {
        let events = self.gossiper.drain_events();
        // With the migration engine on, refresh even without an up/down
        // event: a peer re-advertising a new vnode count (capacity
        // reweight) moves placement with no membership transition.
        // `refresh_ring` early-returns when the signature is unchanged, so
        // the quiet-path cost is one comparison. The legacy one-shot mode
        // keeps the event-gated refresh (and its exact message schedule).
        if events.is_empty() && !self.cfg.migration_rate_limited() {
            return;
        }
        for ev in &events {
            match ev {
                MembershipEvent::Joined(n) => ctx.record("member_joined", n.0 as f64),
                MembershipEvent::Up(n) => ctx.record("member_up", n.0 as f64),
                MembershipEvent::Down(n) => ctx.record("member_down", n.0 as f64),
                MembershipEvent::Removed(n) => ctx.record("member_removed", n.0 as f64),
            }
        }
        self.refresh_ring(ctx);
    }

    // ---- hinted handoff replay (Fig. 8) ---------------------------------

    /// Periodic probe: for every held hint whose intended node is back
    /// (detected via gossip heartbeats), write the data back (Fig. 8:
    /// "when it finds that the B node is on-line again, the node C would
    /// write the data back to B").
    pub(crate) fn replay_hints(&mut self, ctx: &mut Context<'_, Msg>) {
        let now_us = ctx.now().as_micros();
        // Sweep replays whose ack never arrived within the request deadline
        // (the target died mid-replay, or the ack was lost). The hint
        // document itself is untouched and will be offered again below —
        // replays are idempotent under LWW — so nothing is lost and the map
        // stays bounded. Younger in-flight entries are kept (and their hints
        // skipped) so a slow ack is not raced by a duplicate replay.
        let deadline = self.cfg.request_deadline_us;
        let before = self.hint_acks.len();
        self.hint_acks.retain(|_, hint| now_us.saturating_sub(hint.sent_at_us) < deadline);
        let expired = before - self.hint_acks.len();
        if expired > 0 {
            self.metrics.hint_replay_expired.add(expired as u64);
            ctx.record("hint_replay_expired", expired as f64);
        }
        let in_flight: BTreeSet<ObjectId> = self.hint_acks.values().map(|h| h.id).collect();
        let Ok(coll) = self.db.collection(HINTS) else { return };
        let mut replays: Vec<(ObjectId, NodeId, Record)> = Vec::new();
        for (id, docu) in coll.iter() {
            if in_flight.contains(id) {
                continue;
            }
            let Some(intended) = docu.get_i64("intended").map(|v| NodeId(v as u32)) else {
                continue;
            };
            let Some(rec_doc) = docu.get_document("rec") else { continue };
            let Ok(record) = Record::from_document(rec_doc) else { continue };
            if self.gossiper.is_alive(intended) && !self.gossiper.is_removed(intended) {
                replays.push((*id, intended, record));
            } else if self.gossiper.is_removed(intended) {
                // Long failure: the intended node will never return. The
                // rebalance sweep re-replicates from live copies, so the
                // hint is dropped.
                replays.push((*id, intended, record.clone()));
            }
        }
        for (hint_id, intended, record) in replays {
            if self.gossiper.is_removed(intended) {
                if self.db.remove(HINTS, hint_id).is_ok() {
                    self.metrics.hint_queue_depth.dec_clamped();
                }
                continue;
            }
            let req = self.fresh_req();
            self.hint_acks.insert(req, HintInFlight { id: hint_id, sent_at_us: now_us });
            ctx.send(intended, Msg::StoreReplica { req, record: Arc::new(record) });
        }
    }

    // ---- anti-entropy (extension) ---------------------------------------

    /// One anti-entropy round: take the next batch of locally-held records
    /// (rotating through key space), pick one alive replica peer per record
    /// group, and send it our `(key, version)` digest. The peer answers with
    /// any strictly newer copies (§7 future work: "solving problems on
    /// data's consistency" — this bounds divergence even for keys that are
    /// never read). With [`crate::config::StorageConfig::anti_entropy_merkle`]
    /// on, the flat digest is replaced by the tree exchange in
    /// `storage_node/sync.rs`.
    pub(crate) fn anti_entropy_round(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.cfg.anti_entropy_merkle {
            self.merkle_round(ctx);
            return;
        }
        let me = self.id();
        let n = self.cfg.nwr.n;
        let batch = Self::next_key_batch(
            &self.db,
            &self.cfg.collection,
            self.sync_cursor.as_deref(),
            self.cfg.anti_entropy_batch,
        );
        let Some(last) = batch.last() else { return };
        self.sync_cursor = Some(last.self_key.clone());
        self.sync_metrics.rounds.inc();
        // Group digests by one alive peer from each record's preference
        // list, rotating the choice every round so each replica pair
        // eventually exchanges.
        self.sync_round += 1;
        let round = self.sync_round as usize;
        // Ordered map: the digest send order below feeds the sim schedule.
        let mut per_peer: BTreeMap<NodeId, Vec<(String, u64)>> = BTreeMap::new();
        for rec in &batch {
            let prefs = self.ring.preference_list(rec.self_key.as_bytes(), n);
            let eligible: Vec<NodeId> =
                prefs.iter().copied().filter(|&p| p != me && self.gossiper.is_alive(p)).collect();
            if let Some(&peer) = eligible.get(round % eligible.len().max(1)) {
                per_peer.entry(peer).or_default().push((rec.self_key.clone(), rec.version));
            }
        }
        for (peer, entries) in per_peer {
            self.sync_metrics.digest_entries.add(entries.len() as u64);
            ctx.send(peer, Msg::SyncDigest { entries });
        }
    }

    /// The `limit` records with the smallest self-keys strictly after
    /// `cursor`, wrapping to the smallest keys of all once the cursor
    /// passes the end. Selecting in *key order* is what makes the rotation
    /// sound: the pre-fix scan compared the key cursor against an
    /// id-ordered iteration, so any key sorting before the cursor but
    /// after it in id order was skipped (and high keys re-digested) every
    /// round.
    pub(crate) fn next_key_batch(
        db: &Db,
        coll: &str,
        cursor: Option<&str>,
        limit: usize,
    ) -> Vec<Record> {
        let Ok(c) = db.collection(coll) else { return Vec::new() };
        if limit == 0 {
            return Vec::new();
        }
        let mut keys = Self::smallest_keys_after(c, cursor, limit);
        if keys.is_empty() && cursor.is_some() {
            // Wrapped: restart from the beginning of the key space.
            keys = Self::smallest_keys_after(c, None, limit);
        }
        keys.into_iter().filter_map(|k| db.get_record(coll, &k).ok().flatten()).collect()
    }

    /// The `limit` smallest self-keys strictly greater than `cursor`, via
    /// one capped-selection pass over the (id-ordered) collection.
    fn smallest_keys_after(c: &Collection, cursor: Option<&str>, limit: usize) -> BTreeSet<String> {
        let mut sel: BTreeSet<String> = BTreeSet::new();
        for (_, doc) in c.iter() {
            let Some(key) = doc.get_str("self-key") else { continue };
            if cursor.is_some_and(|cur| key <= cur) {
                continue;
            }
            if sel.len() >= limit {
                // Full: only a key below the current maximum can displace.
                if sel.iter().next_back().is_some_and(|top| key >= top.as_str()) {
                    continue;
                }
                sel.pop_last();
            }
            sel.insert(key.to_string());
        }
        sel
    }

    /// Peer side of a sync round: reply with every record we hold strictly
    /// newer than the sender's digest, and counter-digest the keys where we
    /// are behind (missing or older) so the sender pushes those back. The
    /// counter-digest cannot loop: the sender is strictly newer for every
    /// key in it, so its handler only produces a `SyncRecords`.
    pub(crate) fn on_sync_digest(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        entries: Vec<(String, u64)>,
    ) {
        ctx.consume(self.cfg.cost.gossip_us + entries.len() as u64 / 4);
        let mut newer: Vec<Record> = Vec::new();
        let mut behind: Vec<(String, u64)> = Vec::new();
        // Digests carry bare versions, so both directions route through the
        // engine-owned comparators (`wins_over_version` is exactly what
        // `wins_over` compares: the packed `(timestamp, writer)` stamp).
        // Equal versions are the same write and need no transfer either way.
        for (key, their_version) in entries {
            match self.db.get_record(&self.cfg.collection, &key) {
                Ok(Some(mine)) if mine.wins_over_version(their_version) => newer.push(mine),
                Ok(Some(mine)) if mine.loses_to_version(their_version) => {
                    behind.push((key, mine.version))
                }
                Ok(Some(_)) => {} // equal
                _ => {
                    // A key we hold no copy of — not even a tombstone. If
                    // its version predates our reap floor, the key was
                    // deleted here and the tombstone physically reclaimed;
                    // pulling the peer's stale live copy would resurrect
                    // the delete. Strictly newer versions are genuinely
                    // missing data and are pulled as before.
                    if their_version > self.reap_floor {
                        behind.push((key, 0));
                    } else {
                        self.sync_metrics.resurrections_blocked.inc();
                    }
                }
            }
        }
        if !newer.is_empty() {
            ctx.send(from, Msg::SyncRecords { records: newer });
        }
        if !behind.is_empty() {
            self.sync_metrics.digest_entries.add(behind.len() as u64);
            ctx.send(from, Msg::SyncDigest { entries: behind });
        }
    }

    // ---- group commit & coalescing --------------------------------------

    /// `TK_COALESCE`: drain the outbox, one batched message per peer. A
    /// lone op goes out as a plain `StoreReplica` (no batch framing to pay
    /// for); two or more ride one `StoreReplicaBatch`.
    pub(crate) fn flush_outbox(&mut self, ctx: &mut Context<'_, Msg>) {
        self.outbox_armed = false;
        for (peer, mut ops) in std::mem::take(&mut self.outbox) {
            if ops.is_empty() {
                continue;
            }
            self.metrics.batch_ops.add(ops.len() as u64);
            self.metrics.batch_msgs.inc();
            if ops.len() == 1 {
                if let Some(op) = ops.pop() {
                    ctx.send(peer, Msg::StoreReplica { req: op.req, record: op.record });
                }
            } else {
                ctx.send(peer, Msg::StoreReplicaBatch { ops });
            }
        }
    }

    /// `TK_WAL_FLUSH`: bound how long a staged frame (and its parked ack)
    /// can wait for the batch to fill — sync whatever is pending and
    /// release the acks it covered. The timer is demand-driven: it is
    /// armed by [`StorageNode::ensure_wal_flush_armed`] when a write
    /// stages a frame, and stays unarmed afterwards unless a sync failure
    /// left frames behind — so a quiescent node schedules no flush ticks.
    pub(crate) fn wal_flush_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        self.wal_flush_armed = false;
        if self.db.wal_pending_ops() > 0 {
            let _ = self.db.sync_wal();
        }
        self.maybe_flush_deferred_acks(ctx);
        self.ensure_wal_flush_armed(ctx);
    }

    /// Arms the WAL flush timer if group commit is on, a frame is staged,
    /// and no timer is already pending. Call after any local write that may
    /// have staged a group-commit frame; a no-op in every other state.
    pub(crate) fn ensure_wal_flush_armed(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.cfg.group_commit_ops > 1 && !self.wal_flush_armed && self.db.wal_pending_ops() > 0 {
            self.wal_flush_armed = true;
            ctx.set_timer(self.cfg.group_commit_max_delay_us, tk(TK_WAL_FLUSH, 0));
        }
    }

    /// Consecutive idle anti-entropy rounds tolerated before the period
    /// starts doubling.
    const AE_GRACE_ROUNDS: u32 = 2;

    /// The delay before the next anti-entropy round. With
    /// `anti_entropy_idle_backoff_max > 1`, rounds that observe no new
    /// local writes (`Db::last_seq` unchanged) double the period up to
    /// `interval × max`; any write snaps it back to the base interval.
    pub(crate) fn next_anti_entropy_delay_us(&mut self) -> u64 {
        let base = self.cfg.anti_entropy_interval_us;
        if self.cfg.anti_entropy_idle_backoff_max <= 1 {
            return base;
        }
        let seq = self.db.last_seq();
        if seq == self.ae_last_seq {
            self.ae_quiet_rounds = self.ae_quiet_rounds.saturating_add(1);
        } else {
            self.ae_quiet_rounds = 0;
            self.ae_last_seq = seq;
        }
        let cap = base.saturating_mul(self.cfg.anti_entropy_idle_backoff_max);
        let shift = self.ae_quiet_rounds.saturating_sub(Self::AE_GRACE_ROUNDS).min(32);
        base.saturating_mul(1u64 << shift).min(cap)
    }

    // ---- gossip ----------------------------------------------------------

    pub(crate) fn gossip_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        // Publish capacity and load. The vnode count carries the capacity
        // weight already applied; at the default weight of 1 the published
        // value (and thus the wire trace) is unchanged.
        self.gossiper.set_app_state(gossip_keys::VNODES, self.cfg.effective_vnodes().to_string());
        self.gossiper.set_app_state(gossip_keys::LOAD, self.record_count().to_string());
        if self.cfg.weight != 1 {
            self.gossiper
                .set_app_state_if_changed(gossip_keys::WEIGHT, self.cfg.weight.to_string());
        }
        if let Some((done, total)) = self.migration_progress() {
            self.gossiper
                .set_app_state_if_changed(gossip_keys::MIGRATION, format!("{done}/{total}"));
        }
        // Dual-ownership hygiene: drop inbound arcs whose source was
        // declared long-failed (its records re-replicate via the ring
        // change that removal triggers), and fail proxied fetches whose
        // source never replied (`ok: false`) so the quorum driver treats
        // the silence as a replica failure — retrying or settling from
        // the other replicas — instead of taking the entrant's
        // not-yet-authoritative miss as a definitive answer.
        if !self.pending_in.is_empty() {
            let gossiper = &self.gossiper;
            self.pending_in.retain(|e| !gossiper.is_removed(e.source));
        }
        if !self.read_proxies.is_empty() {
            let now_us = ctx.now().as_micros();
            let deadline = self.cfg.request_deadline_us;
            let expired: Vec<u64> = self
                .read_proxies
                .iter()
                .filter(|(_, p)| now_us.saturating_sub(p.sent_at_us) >= deadline)
                .map(|(&req, _)| req)
                .collect();
            for req in expired {
                if let Some(p) = self.read_proxies.remove(&req) {
                    ctx.send(
                        p.requester,
                        Msg::FetchAck { req: p.orig_req, found: None, ok: false },
                    );
                }
            }
        }
        let now = ctx.now();
        let out = {
            let rng = ctx.rng();
            self.gossiper.tick(now, rng)
        };
        for (to, g) in out {
            ctx.send(to, Msg::Gossip(g));
        }
        self.process_membership(ctx);
        // Re-arm at the gossiper's current cadence: with idle backoff on,
        // a quiet ring widens its own rounds (and scales its failure
        // timeouts to match); any membership churn snaps back to the base
        // interval on the next tick.
        ctx.set_timer(self.gossiper.current_interval_us(), tk(TK_GOSSIP, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_engine::pack_version;

    /// Ids deliberately sort in REVERSE key order: the pre-fix rotation
    /// compared the key cursor against an id-ordered scan, which re-visited
    /// high keys every round and starved low ones whenever the two orders
    /// disagreed. Key-ordered selection must digest each key exactly once
    /// per sweep, in key order, then wrap.
    #[test]
    fn key_rotation_digests_every_key_exactly_once_per_sweep() {
        let mut db = Db::memory();
        db.create_index("data", "self-key").unwrap();
        let total = 10u32;
        for i in 0..total {
            let rec = Record::new(
                ObjectId::from_parts(1, 1, total - i),
                format!("key-{i:02}"),
                vec![0],
                pack_version(1, 0),
            );
            db.put_record("data", &rec).unwrap();
        }
        let mut cursor: Option<String> = None;
        let mut seen: Vec<String> = Vec::new();
        for _ in 0..5 {
            let batch = StorageNode::next_key_batch(&db, "data", cursor.as_deref(), 3);
            assert!(!batch.is_empty());
            cursor = batch.last().map(|r| r.self_key.clone());
            seen.extend(batch.into_iter().map(|r| r.self_key));
        }
        // Batches of 3 over 10 keys: one full sweep (the last batch runs
        // short at the end of the key space), then the wrap starts the next
        // sweep from the smallest key again.
        let expect: Vec<String> = (0..total).chain(0..3).map(|i| format!("key-{i:02}")).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn next_key_batch_handles_empty_and_zero_limit() {
        let mut db = Db::memory();
        assert!(StorageNode::next_key_batch(&db, "data", None, 8).is_empty());
        db.create_index("data", "self-key").unwrap();
        let rec = Record::new(ObjectId::from_parts(1, 1, 1), "k", vec![0], pack_version(1, 0));
        db.put_record("data", &rec).unwrap();
        assert!(StorageNode::next_key_batch(&db, "data", None, 0).is_empty());
        // A cursor at the very end wraps to the start.
        let wrapped = StorageNode::next_key_batch(&db, "data", Some("zzz"), 4);
        assert_eq!(wrapped.len(), 1);
        assert_eq!(wrapped.first().map(|r| r.self_key.as_str()), Some("k"));
    }
}
