//! The coordinator side of the storage node: the generic quorum engine and
//! the thin operation definitions that ride on it.
//!
//! * [`quorum`] (the [`driver`] module) — the op-agnostic machinery: the
//!   pending table, replica reply dedup, bounded retry with exponential
//!   backoff/jitter, divert-to-handoff on exhaustion, quorum accounting
//!   against `W`/`R`, and the hard request deadline.
//! * [`put`] — the quorum-write op (PUT/DELETE fan-out, hinted-handoff
//!   diversion policy, fallback selection).
//! * [`get`] — the quorum-read op (reply collection, LWW winner, read
//!   repair / replica supplementation).
//! * [`cas`] — conditional put: a read phase at `max(R, N-W+1)` evaluating
//!   the version predicate, chained into a normal quorum write. The whole
//!   op is ~100 lines because both phases reuse the generic driver.

pub(crate) mod cas;
pub(crate) mod driver;
pub(crate) mod get;
pub(crate) mod put;

/// The public name of the engine: `coordinator::quorum::Driver`.
pub(crate) use driver as quorum;
