//! The quorum-read operation (§5.2.2) — GET and the CAS predicate-check
//! phase, as one [`QuorumOp`] over the generic driver, including the read
//! repair / replica supplementation that runs once every replica answered.

use std::sync::Arc;

use mystore_engine::{lww_winner, Record};
use mystore_net::{Context, NodeId};

use crate::message::{Body, Msg, StoreError};
use crate::storage_node::{StorageNode, TK_GET_HARD, TK_GET_RETRY};

use super::driver::{Common, Exhausted, OpState, QuorumOp, Reply};

/// Why the read is running — it decides who is answered, and how.
pub(crate) enum ReadPurpose {
    /// A client GET: reply `GetResp`, count `quorum.read.*`.
    Get,
    /// The predicate-check phase of a CAS: the LWW winner is fed to the
    /// version check, which either rejects with a conflict or chains into
    /// the write phase (see `cas.rs`).
    Cas {
        /// The payload to write when the predicate holds.
        value: Body,
        /// The version the caller last observed (`0` = absent).
        expected: u64,
        /// Coordinator clock when the `Msg::Cas` arrived.
        cas_started_us: u64,
    },
}

/// Op-specific state of an in-flight quorum read.
pub(crate) struct ReadOp {
    /// The key being read.
    pub(crate) key: String,
    /// The key's preference list (the read's target set).
    pub(crate) prefs: Vec<NodeId>,
    /// (replica, its record if any) for successful replies — one per node.
    pub(crate) replies: Vec<(NodeId, Option<Record>)>,
    /// Successful replies needed before answering: `R` for client reads,
    /// `max(R, N-W+1)` for CAS predicate checks.
    pub(crate) read_quorum: usize,
    /// Who is waiting on this read.
    pub(crate) purpose: ReadPurpose,
}

impl ReadOp {
    /// The canonical LWW winner among the replies, via the engine-owned
    /// comparator (ties keep the first reply, so every coordinator resolves
    /// the same winner regardless of reply order).
    pub(crate) fn newest(&self) -> Option<&Record> {
        lww_winner(self.replies.iter().filter_map(|(_, r)| r.as_ref()))
    }
}

impl QuorumOp for ReadOp {
    fn targets(&self, node: &StorageNode) -> Vec<NodeId> {
        let me = node.id();
        self.prefs
            .iter()
            .copied()
            .filter(|&p| p != me && !self.replies.iter().any(|(n, _)| *n == p))
            .collect()
    }

    fn resend(&self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, req: u64, to: NodeId) {
        ctx.send(to, Msg::FetchReplica { req, key: self.key.clone() });
        node.metrics.get_retries.inc();
        ctx.record("get_retry", 1.0);
    }

    fn on_reply(&mut self, from: NodeId, reply: Reply) {
        let Reply::Fetch { found, ok } = reply else { return };
        // Retries and chaotic links can duplicate replies: one per node.
        // A failed read is tolerated (§5.1): replication covers it.
        if ok && !self.replies.iter().any(|(n, _)| *n == from) {
            self.replies.push((from, found));
        }
    }

    fn quorum_met(&self, _node: &StorageNode, _common: &Common) -> bool {
        self.replies.len() >= self.read_quorum
    }

    fn on_success(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        match self.purpose {
            ReadPurpose::Get => {
                let result = match self.newest() {
                    Some(rec) if !rec.is_del => Ok(Some(Arc::new(rec.val.clone()))),
                    _ => Ok(None),
                };
                node.stats.gets_ok += 1;
                node.metrics.quorum_read_ok.inc();
                node.metrics
                    .quorum_read_latency_us
                    .record(ctx.now().as_micros().saturating_sub(common.started_us));
                ctx.record("get_ok", 1.0);
                ctx.send(common.caller, Msg::GetResp { req: common.caller_req, result });
            }
            ReadPurpose::Cas { .. } => node.cas_read_decided(ctx, common, self),
        }
    }

    fn is_complete(&self, _common: &Common) -> bool {
        self.replies.len() == self.prefs.len()
    }

    fn on_complete(
        &mut self,
        node: &mut StorageNode,
        ctx: &mut Context<'_, Msg>,
        _common: &Common,
    ) {
        node.read_repair(ctx, self);
    }

    /// Reads have no handoff to divert to — after the budget, the hard
    /// deadline decides.
    fn on_exhausted(
        &mut self,
        _node: &mut StorageNode,
        _ctx: &mut Context<'_, Msg>,
        _req: u64,
        _common: &mut Common,
    ) -> Exhausted {
        Exhausted::Park
    }

    fn on_deadline(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        if common.replied {
            // Quorum was answered; settle what the partial reply set still
            // owes the slow replicas.
            node.read_repair(ctx, self);
            return;
        }
        match self.purpose {
            ReadPurpose::Get => {
                node.stats.gets_failed += 1;
                node.metrics.quorum_read_failed.inc();
                ctx.record("get_fail", 1.0);
                ctx.send(
                    common.caller,
                    Msg::GetResp {
                        req: common.caller_req,
                        result: Err(StoreError::QuorumReadFailed),
                    },
                );
            }
            ReadPurpose::Cas { .. } => {
                node.cas_deadline_failed(ctx, common, StoreError::QuorumReadFailed)
            }
        }
    }

    fn retry_kind(&self) -> u64 {
        TK_GET_RETRY
    }

    fn hard_kind(&self) -> u64 {
        TK_GET_HARD
    }
}

impl StorageNode {
    /// Coordinator entry point for GET (§5.2.2).
    pub(crate) fn start_get(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        key: String,
    ) {
        let n = self.cfg.nwr.n;
        let prefs = self.ring.preference_list(key.as_bytes(), n);
        if prefs.is_empty() {
            ctx.send(caller, Msg::GetResp { req: caller_req, result: Err(StoreError::NoRing) });
            return;
        }
        let my_req = self.fresh_req();
        self.metrics.quorum_read_started.inc();
        let read_quorum = self.cfg.nwr.r;
        self.start_read(ctx, my_req, caller, caller_req, key, prefs, read_quorum, ReadPurpose::Get);
    }

    /// Fans a read out to the key's preference list and hands the op to the
    /// driver. Shared by GET and the CAS predicate check; only the quorum
    /// size and the `purpose` differ.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_read(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        my_req: u64,
        caller: NodeId,
        caller_req: u64,
        key: String,
        prefs: Vec<NodeId>,
        read_quorum: usize,
        purpose: ReadPurpose,
    ) {
        let common = Common {
            caller,
            caller_req,
            retry_round: 0,
            replied: false,
            started_us: ctx.now().as_micros(),
        };
        let mut op = ReadOp {
            key: key.clone(),
            prefs: prefs.clone(),
            replies: Vec::new(),
            read_quorum,
            purpose,
        };
        let me = self.id();
        for &replica in &prefs {
            if replica == me {
                let found = self.local_fetch(ctx, &key);
                // Dual ownership: a local miss on a still-inbound arc is
                // not authoritative (the record may not have transferred
                // yet). Loop the fetch through our own replica path, which
                // proxies it to the arc's old owner and answers with a
                // normal `FetchAck` — the driver never knows.
                if found.is_none() && self.proxy_source(&key).is_some() {
                    ctx.send(me, Msg::FetchReplica { req: my_req, key: key.clone() });
                } else {
                    op.replies.push((me, found));
                }
            } else {
                ctx.send(replica, Msg::FetchReplica { req: my_req, key: key.clone() });
            }
        }
        self.drv_finish_start(ctx, my_req, common, OpState::Read(op));
    }

    /// "The Get operation gets all replications of the specified key, and
    /// checks the number of replication. If replications are less than N
    /// ... some more replications are supplemented" (§5.2.2) — plus classic
    /// read repair of stale copies.
    ///
    /// Only replicas that are actually behind get a push: a replica already
    /// holding the winner is left alone, and a replica missing the key is
    /// only supplemented when the winner is live data — pushing a tombstone
    /// at a node that holds nothing would *create* state for a deleted key,
    /// which the reaper then collects and the next read re-creates.
    pub(crate) fn read_repair(&mut self, ctx: &mut Context<'_, Msg>, op: &ReadOp) {
        let Some(newest) = op.newest() else { return };
        // One shared copy feeds every push, however many replicas are stale.
        let newest = Arc::new(newest.clone());
        let me = self.id();
        for (node, found) in &op.replies {
            let stale = match found {
                None => !newest.is_del,
                Some(r) => newest.wins_over(r),
            };
            if !stale {
                continue;
            }
            self.stats.read_repairs += 1;
            self.metrics.read_repair_pushes.inc();
            ctx.record("read_repair", 1.0);
            if *node == me {
                let _ = self.db.put_record(&self.cfg.collection, &newest);
            } else {
                // Fire-and-forget: acks for req 0 are ignored.
                ctx.send(*node, Msg::StoreReplica { req: 0, record: Arc::clone(&newest) });
            }
        }
    }
}
