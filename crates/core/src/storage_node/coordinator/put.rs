//! The quorum-write operation (§5.2.2) — PUT, DELETE, and the write phase
//! of CAS, as one [`QuorumOp`] over the generic driver.

use std::sync::Arc;

use mystore_bson::doc;
use mystore_engine::{pack_version, Record};
use mystore_net::{Context, NodeId};
use mystore_ring::HashRing;

use crate::message::{BatchPut, Body, Msg, StoreError};
use crate::storage_node::{tk, StorageNode, HINTS, TK_COALESCE, TK_PUT_HARD, TK_PUT_RETRY};

use super::driver::{Common, Exhausted, OpState, QuorumOp, Reply};

/// Who gets told about the write's outcome, and how.
pub(crate) enum WriteReply {
    /// A plain PUT/DELETE: reply `PutResp`, count `quorum.write.*`.
    Put,
    /// The write phase of a CAS: reply `CasResp` with the new version,
    /// count `cas.*` with latency from the CAS's arrival (the read phase
    /// is part of the same client operation).
    Cas {
        /// Coordinator clock when the original `Msg::Cas` arrived.
        cas_started_us: u64,
    },
}

/// Op-specific state of an in-flight quorum write.
pub(crate) struct WriteOp {
    /// The versioned record being replicated (shared, never copied).
    pub(crate) record: Arc<Record>,
    /// Acknowledgements counted towards `W`.
    pub(crate) acks: usize,
    /// Replicas that have not acknowledged yet.
    pub(crate) outstanding: Vec<NodeId>,
    /// Remote nodes whose ack already counted (duplicate-ack dedup).
    pub(crate) acked: Vec<NodeId>,
    /// Fallback nodes already hinted (never reused).
    pub(crate) fallbacks_used: Vec<NodeId>,
    /// How the caller is answered.
    pub(crate) reply: WriteReply,
}

impl QuorumOp for WriteOp {
    fn targets(&self, node: &StorageNode) -> Vec<NodeId> {
        let me = node.id();
        self.outstanding.iter().copied().filter(|&r| r != me).collect()
    }

    fn resend(&self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, req: u64, to: NodeId) {
        ctx.send(to, Msg::StoreReplica { req, record: self.record.clone() });
        node.metrics.put_retries.inc();
        ctx.record("put_retry", 1.0);
    }

    fn on_reply(&mut self, from: NodeId, reply: Reply) {
        let Reply::Ack { ok } = reply else { return };
        // Retries and chaotic links can duplicate acks: count each node once.
        // A failed ack leaves the replica in `outstanding`; the retry path
        // re-sends and eventually diverts it to a fallback node.
        if ok && !self.acked.contains(&from) {
            self.acked.push(from);
            self.acks += 1;
            self.outstanding.retain(|&r| r != from);
        }
    }

    fn quorum_met(&self, node: &StorageNode, _common: &Common) -> bool {
        self.acks >= node.cfg.nwr.w
    }

    fn on_success(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        match self.reply {
            WriteReply::Put => {
                node.stats.puts_ok += 1;
                node.metrics.quorum_write_ok.inc();
                node.metrics
                    .quorum_write_latency_us
                    .record(ctx.now().as_micros().saturating_sub(common.started_us));
                ctx.record("put_ok", 1.0);
                ctx.send(common.caller, Msg::PutResp { req: common.caller_req, result: Ok(()) });
            }
            WriteReply::Cas { cas_started_us } => {
                node.cas_write_succeeded(ctx, common, self.record.version, cas_started_us)
            }
        }
    }

    fn is_complete(&self, common: &Common) -> bool {
        common.replied && self.outstanding.is_empty()
    }

    /// Divert-to-handoff (Fig. 8): every straggler gets its write parked on
    /// a fallback node whose ack still counts towards `W`. With handoff
    /// disabled the write just parks until the hard deadline decides.
    fn on_exhausted(
        &mut self,
        node: &mut StorageNode,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        _common: &mut Common,
    ) -> Exhausted {
        if !node.cfg.hinted_handoff {
            return Exhausted::Park;
        }
        let me = node.id();
        let stragglers: Vec<NodeId> = self.outstanding.clone();
        for intended in stragglers {
            if intended == me {
                continue;
            }
            if let Some(fallback) = node.pick_fallback(self) {
                self.fallbacks_used.push(fallback);
                node.stats.handoffs_sent += 1;
                node.metrics.handoffs.inc();
                ctx.record("handoff", 1.0);
                if fallback == me {
                    // The coordinator may be the only node left standing —
                    // it holds the hint itself, and its ack is immediate.
                    ctx.consume(
                        node.cfg.cost.put_us(self.record.val.len()) + ctx.disk_penalty_us(),
                    );
                    let hint_doc = doc! {
                        "intended": intended.0 as i64,
                        "rec": self.record.to_document(),
                    };
                    if node.db.insert_doc(HINTS, hint_doc).is_ok() {
                        node.metrics.hints_stored.inc();
                        node.metrics.hint_queue_depth.add(1);
                        if node.db.wal_pending_ops() > 0 {
                            // Staged like any local write: counts at sync.
                            node.deferred_acks.push((me, req, true));
                            node.metrics.acks_deferred.inc();
                            node.ensure_wal_flush_armed(ctx);
                        } else {
                            self.acks += 1;
                        }
                    }
                } else {
                    ctx.send(
                        fallback,
                        Msg::StoreHint { req, intended, record: self.record.clone() },
                    );
                }
            }
        }
        Exhausted::Resolve
    }

    fn on_deadline(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        if common.replied {
            return;
        }
        match self.reply {
            WriteReply::Put => {
                node.stats.puts_failed += 1;
                node.metrics.quorum_write_failed.inc();
                ctx.record("put_fail", 1.0);
                ctx.send(
                    common.caller,
                    Msg::PutResp {
                        req: common.caller_req,
                        result: Err(StoreError::QuorumWriteFailed),
                    },
                );
            }
            WriteReply::Cas { .. } => {
                node.cas_deadline_failed(ctx, common, StoreError::QuorumWriteFailed)
            }
        }
    }

    fn retry_kind(&self) -> u64 {
        TK_PUT_RETRY
    }

    fn hard_kind(&self) -> u64 {
        TK_PUT_HARD
    }
}

impl StorageNode {
    /// Coordinator entry point for PUT/DELETE (§5.2.2).
    pub(crate) fn start_put(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        key: String,
        value: Body,
        delete: bool,
    ) {
        let n = self.cfg.nwr.n;
        let prefs = self.ring.preference_list(key.as_bytes(), n);
        if prefs.is_empty() {
            ctx.send(caller, Msg::PutResp { req: caller_req, result: Err(StoreError::NoRing) });
            return;
        }
        let record = self.build_record(ctx, key, value, delete);
        self.start_write(ctx, caller, caller_req, prefs, record, WriteReply::Put);
    }

    /// Stamps a fresh LWW version and object id onto a new record. The
    /// shared [`Body`] is materialized into the record's owned payload here
    /// — the single copy point on the write path (and not even a copy when
    /// this coordinator holds the last reference).
    pub(crate) fn build_record(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        key: String,
        value: Body,
        delete: bool,
    ) -> Arc<Record> {
        let version = pack_version(ctx.now().as_micros(), self.id().0 as u16);
        // Deterministic id: sim seconds + node machine id via the Db's
        // OidGen (a raw ObjectId::new here would leak wall clock into the
        // replicated data and break seeded replay).
        self.db.set_oid_secs((ctx.now().as_micros() / 1_000_000) as u32);
        let oid = self.db.fresh_oid(&self.cfg.collection);
        Arc::new(if delete {
            Record::tombstone(oid, key, version)
        } else {
            let owned = Arc::try_unwrap(value).unwrap_or_else(|shared| (*shared).clone());
            Record::new(oid, key, owned, version)
        })
    }

    /// Fans a versioned record out to its preference list and hands the op
    /// to the driver. Shared by PUT/DELETE and the CAS write phase; only
    /// the `reply` policy differs.
    pub(crate) fn start_write(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        prefs: Vec<NodeId>,
        record: Arc<Record>,
        reply: WriteReply,
    ) {
        let my_req = self.fresh_req();
        if matches!(reply, WriteReply::Put) {
            self.metrics.quorum_write_started.inc();
        }
        let common = Common {
            caller,
            caller_req,
            retry_round: 0,
            replied: false,
            started_us: ctx.now().as_micros(),
        };
        let mut op = WriteOp {
            record: Arc::clone(&record),
            acks: 0,
            outstanding: prefs.clone(),
            acked: Vec::new(),
            fallbacks_used: Vec::new(),
            reply,
        };
        let me = self.id();
        for &replica in &prefs {
            if replica == me {
                // "The node firstly stores the data records locally" (§5.2.2).
                ctx.consume(self.cfg.cost.put_us(record.val.len()) + ctx.disk_penalty_us());
                self.stats.replica_puts += 1;
                if self.db.put_record(&self.cfg.collection, &record).is_ok() {
                    if self.db.wal_pending_ops() > 0 {
                        // Group commit: the frame is staged, not yet synced.
                        // The local write counts towards `W` only once its
                        // covering sync lands — the flush sends a self-ack.
                        self.deferred_acks.push((me, my_req, true));
                        self.metrics.acks_deferred.inc();
                        self.ensure_wal_flush_armed(ctx);
                    } else {
                        op.acks += 1;
                        op.outstanding.retain(|&r| r != me);
                    }
                }
            } else if self.cfg.coalesce_window_us > 0 {
                self.outbox
                    .entry(replica)
                    .or_default()
                    .push(BatchPut { req: my_req, record: Arc::clone(&record) });
                if !self.outbox_armed {
                    self.outbox_armed = true;
                    ctx.set_timer(self.cfg.coalesce_window_us, tk(TK_COALESCE, 0));
                }
            } else {
                ctx.send(replica, Msg::StoreReplica { req: my_req, record: Arc::clone(&record) });
            }
        }
        self.drv_finish_start(ctx, my_req, common, OpState::Write(op));
    }

    /// First alive node clockwise after the preference list that has not
    /// been used as a fallback for this request. The coordinator itself is
    /// eligible (it is alive by definition).
    pub(crate) fn pick_fallback(&self, op: &WriteOp) -> Option<NodeId> {
        let point = HashRing::<NodeId>::key_point(op.record.self_key.as_bytes());
        let walk = self.ring.successors_of_point(point, self.ring.len());
        let prefs = self.ring.preference_list(op.record.self_key.as_bytes(), self.cfg.nwr.n);
        walk.into_iter()
            .find(|n| {
                !prefs.contains(n) && !op.fallbacks_used.contains(n) && self.gossiper.is_alive(*n)
            })
            .or_else(|| {
                // Cluster size == N: there is no node beyond the preference
                // list to divert to, so the coordinator parks the hint itself.
                let me = self.id();
                (!op.fallbacks_used.contains(&me)).then_some(me)
            })
    }
}
