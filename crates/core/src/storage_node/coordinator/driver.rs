//! The generic quorum engine.
//!
//! Every coordinated operation — PUT, GET, CAS, and the coalesced replica
//! batches (whose per-op acks funnel back through the same table) — is a
//! [`Pending`] entry: op-agnostic bookkeeping in [`Common`], op behaviour
//! behind the [`QuorumOp`] trait. The driver owns the lifecycle that the
//! pre-refactor `PendingPut`/`PendingGet` state machines each duplicated:
//!
//! 1. **start** — the op fans out to its replica targets, then
//!    [`StorageNode::drv_finish_start`] checks for immediate quorum and
//!    arms the soft-retry and hard-deadline timers;
//! 2. **replies** — [`StorageNode::drv_on_reply`] folds each replica reply
//!    in (the op dedups per node), replies to the caller the moment quorum
//!    is met, and retires the entry when every target has answered;
//! 3. **soft retry** — while budget remains, re-send to stragglers and
//!    re-arm with exponential backoff plus jitter; on exhaustion the op
//!    decides (writes divert to hinted handoff, reads park);
//! 4. **hard deadline** — the entry is removed and the op reports
//!    success-so-far or failure to the caller.
//!
//! Adding an operation means implementing [`QuorumOp`] (~50 lines) and a
//! `start_*` entry point — none of the machinery above is repeated. See
//! DESIGN.md §11.

use std::collections::BTreeMap;

use mystore_engine::Record;
use mystore_net::{Context, NodeId};

use crate::message::Msg;
use crate::storage_node::{tk, StorageNode};

use super::get::ReadOp;
use super::put::WriteOp;

/// One replica-level reply, normalized so the driver has a single entry
/// point ([`StorageNode::drv_on_reply`]) for every ack shape on the wire.
#[derive(Debug)]
pub(crate) enum Reply {
    /// A write acknowledgement (`StoreAck`, or one element of a
    /// `StoreAckBatch`).
    Ack {
        /// Whether the replica applied and persisted the write.
        ok: bool,
    },
    /// A read answer (`FetchAck`).
    Fetch {
        /// The replica's copy, if it holds one.
        found: Option<Record>,
        /// Whether the read itself succeeded.
        ok: bool,
    },
}

/// What the driver should do after an op's retry budget is exhausted.
pub(crate) enum Exhausted {
    /// Keep the entry as-is; only replies or the hard deadline resolve it.
    Park,
    /// The op changed its own accounting (e.g. diverted writes to hinted
    /// handoff); re-check quorum/completion now.
    Resolve,
}

/// Op-agnostic state of a coordinated operation.
pub(crate) struct Common {
    /// Who asked for the operation (frontend, test probe, peer).
    pub(crate) caller: NodeId,
    /// The caller's correlation id, echoed in the reply.
    pub(crate) caller_req: u64,
    /// Retry rounds already spent on stragglers.
    pub(crate) retry_round: u32,
    /// Whether the caller has been answered (quorum was met).
    pub(crate) replied: bool,
    /// Coordinator clock when the request arrived (latency histograms).
    pub(crate) started_us: u64,
}

/// The behaviour an operation plugs into the driver.
///
/// Methods take the owning [`StorageNode`] explicitly: entries are removed
/// from the pending table before being driven, so the node and the op are
/// disjoint borrows.
pub(crate) trait QuorumOp {
    /// Replica targets still owed a reply, excluding the coordinator
    /// itself (it never messages itself).
    fn targets(&self, node: &StorageNode) -> Vec<NodeId>;
    /// Re-sends the replica-level message to one straggler target.
    fn resend(&self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, req: u64, to: NodeId);
    /// Folds one replica reply in. Retries and chaotic links duplicate
    /// replies, so an implementation must count each node at most once.
    fn on_reply(&mut self, from: NodeId, reply: Reply);
    /// Whether the op's quorum (`W` for writes, its read quorum for reads)
    /// is satisfied.
    fn quorum_met(&self, node: &StorageNode, common: &Common) -> bool;
    /// Answers the caller; runs exactly once, when quorum is first met.
    fn on_success(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common);
    /// Whether every target has been accounted for (the entry can retire).
    fn is_complete(&self, common: &Common) -> bool;
    /// Runs when the entry retires (reads push read repair); default no-op.
    fn on_complete(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        let _ = (node, ctx, common);
    }
    /// The retry budget ran out; the op picks its exhaustion policy.
    fn on_exhausted(
        &mut self,
        node: &mut StorageNode,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        common: &mut Common,
    ) -> Exhausted;
    /// The hard request deadline fired; the entry has been removed.
    fn on_deadline(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common);
    /// Timer-token kind for the soft-retry timer (kept per-op so the timer
    /// token layout on the wire-trace is unchanged from before the
    /// refactor).
    fn retry_kind(&self) -> u64;
    /// Timer-token kind for the hard-deadline timer.
    fn hard_kind(&self) -> u64;
}

/// The concrete ops, enum-dispatched so the pending table stays a plain
/// homogeneous map (no boxing on the hot path). Every arm is a one-line
/// delegation to the [`QuorumOp`] implementation in `put.rs` / `get.rs`.
pub(crate) enum OpState {
    /// A quorum write (PUT, DELETE, or the CAS write phase).
    Write(WriteOp),
    /// A quorum read (GET, or the CAS predicate-check phase).
    Read(ReadOp),
}

macro_rules! delegate {
    ($self:ident, $op:ident => $body:expr) => {
        match $self {
            OpState::Write($op) => $body,
            OpState::Read($op) => $body,
        }
    };
}

impl QuorumOp for OpState {
    fn targets(&self, node: &StorageNode) -> Vec<NodeId> {
        delegate!(self, op => op.targets(node))
    }
    fn resend(&self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, req: u64, to: NodeId) {
        delegate!(self, op => op.resend(node, ctx, req, to))
    }
    fn on_reply(&mut self, from: NodeId, reply: Reply) {
        delegate!(self, op => op.on_reply(from, reply))
    }
    fn quorum_met(&self, node: &StorageNode, common: &Common) -> bool {
        delegate!(self, op => op.quorum_met(node, common))
    }
    fn on_success(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        delegate!(self, op => op.on_success(node, ctx, common))
    }
    fn is_complete(&self, common: &Common) -> bool {
        delegate!(self, op => op.is_complete(common))
    }
    fn on_complete(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        delegate!(self, op => op.on_complete(node, ctx, common))
    }
    fn on_exhausted(
        &mut self,
        node: &mut StorageNode,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        common: &mut Common,
    ) -> Exhausted {
        delegate!(self, op => op.on_exhausted(node, ctx, req, common))
    }
    fn on_deadline(&mut self, node: &mut StorageNode, ctx: &mut Context<'_, Msg>, common: &Common) {
        delegate!(self, op => op.on_deadline(node, ctx, common))
    }
    fn retry_kind(&self) -> u64 {
        delegate!(self, op => op.retry_kind())
    }
    fn hard_kind(&self) -> u64 {
        delegate!(self, op => op.hard_kind())
    }
}

/// One in-flight coordinated operation.
pub(crate) struct Pending {
    pub(crate) common: Common,
    pub(crate) op: OpState,
}

/// The quorum engine: owns the pending table every coordinated operation
/// lives in. The driving logic is the `drv_*` methods on [`StorageNode`]
/// below (they need the node's config, metrics, and database).
pub(crate) struct Driver {
    /// In-flight operations keyed by coordinator-scoped request id.
    pub(crate) ops: BTreeMap<u64, Pending>,
}

impl Driver {
    pub(crate) fn new() -> Self {
        Driver { ops: BTreeMap::new() }
    }
}

impl StorageNode {
    /// Backoff before retry round `round` (1-based): exponential in the
    /// round, capped, plus up to 25% jitter so stragglers are not re-hit in
    /// lockstep by every coordinator at once.
    pub(crate) fn backoff_delay(&self, ctx: &mut Context<'_, Msg>, round: u32) -> u64 {
        let base = self
            .cfg
            .retry_backoff_base_us
            .saturating_mul(1u64 << (round.saturating_sub(1)).min(32))
            .min(self.cfg.retry_backoff_cap_us);
        let jitter = ctx.rng().range_u64(0, base / 4 + 1);
        let delay = base + jitter;
        self.metrics.retry_backoff_us.record(delay);
        delay
    }

    /// Quorum/completion check: answers the caller the moment quorum is
    /// met, runs the op's completion hook (read repair) when every target
    /// has been accounted for. Returns true when the entry can retire.
    fn drv_resolve(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        common: &mut Common,
        op: &mut OpState,
    ) -> bool {
        if !common.replied && op.quorum_met(self, common) {
            common.replied = true;
            op.on_success(self, ctx, common);
        }
        if op.is_complete(common) {
            op.on_complete(self, ctx, common);
            return true;
        }
        false
    }

    /// Tail of every `start_*` entry point: immediate-quorum check (the
    /// coordinator may be a replica of the key itself), then park the entry
    /// and arm the soft-retry and hard-deadline timers.
    pub(crate) fn drv_finish_start(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        my_req: u64,
        mut common: Common,
        mut op: OpState,
    ) {
        let done = self.drv_resolve(ctx, &mut common, &mut op);
        if !done {
            let retry_kind = op.retry_kind();
            let hard_kind = op.hard_kind();
            self.quorum.ops.insert(my_req, Pending { common, op });
            ctx.set_timer(self.cfg.replica_timeout_us, tk(retry_kind, my_req));
            ctx.set_timer(self.cfg.request_deadline_us, tk(hard_kind, my_req));
        }
    }

    /// Folds one replica reply into the pending op (if any — late replies
    /// for retired entries are dropped here).
    pub(crate) fn drv_on_reply(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        from: NodeId,
        reply: Reply,
    ) {
        let Some(mut pending) = self.quorum.ops.remove(&req) else { return };
        pending.op.on_reply(from, reply);
        let Pending { mut common, mut op } = pending;
        let done = self.drv_resolve(ctx, &mut common, &mut op);
        if !done {
            self.quorum.ops.insert(req, Pending { common, op });
        }
    }

    /// A write acknowledgement arrived. Hint-replay acks resolve against
    /// the hint table first (they are not quorum traffic); everything else
    /// funnels into the driver.
    pub(crate) fn on_store_ack(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        ok: bool,
    ) {
        // Migration replica-writes ack through the same wire shape; they
        // settle against the plan's work list, not the quorum table.
        if self.migrate_acks.contains_key(&req) {
            self.on_migrate_ack(req, ok);
            return;
        }
        // The hint is only discharged if its document is still present — a
        // duplicated ack (or one racing the replay sweep) must not
        // double-count a replay or drive the depth gauge negative.
        if let Some(inflight) = self.hint_acks.remove(&req) {
            if ok && self.db.remove(crate::storage_node::HINTS, inflight.id).is_ok() {
                self.stats.hints_replayed += 1;
                self.metrics.hints_replayed.inc();
                self.metrics.hint_queue_depth.dec_clamped();
                ctx.record("hint_replayed", 1.0);
            }
            return;
        }
        self.drv_on_reply(ctx, req, from, Reply::Ack { ok });
    }

    /// Per-replica soft deadline: while retry budget remains, re-send to
    /// stragglers with exponential backoff; once exhausted, the op decides
    /// (writes divert to hinted handoff, Fig. 8 — "if one node fails, the
    /// system writes to the next node on the ring" — reads park until the
    /// hard deadline).
    pub(crate) fn drv_on_retry_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let Some(mut pending) = self.quorum.ops.remove(&req) else { return };
        if pending.common.retry_round < self.cfg.replica_retry_max {
            pending.common.retry_round += 1;
            let round = pending.common.retry_round;
            for replica in pending.op.targets(self) {
                pending.op.resend(self, ctx, req, replica);
            }
            let delay = self.backoff_delay(ctx, round);
            ctx.set_timer(delay, tk(pending.op.retry_kind(), req));
            self.quorum.ops.insert(req, pending);
            return;
        }
        self.metrics.retries_exhausted.inc();
        let Pending { mut common, mut op } = pending;
        match op.on_exhausted(self, ctx, req, &mut common) {
            Exhausted::Park => {
                self.quorum.ops.insert(req, Pending { common, op });
            }
            Exhausted::Resolve => {
                let done = self.drv_resolve(ctx, &mut common, &mut op);
                if !done {
                    self.quorum.ops.insert(req, Pending { common, op });
                }
            }
        }
    }

    /// Hard request deadline: the entry is removed and the op settles with
    /// the caller (failure if quorum was never met, read repair otherwise).
    pub(crate) fn drv_on_hard_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let Some(pending) = self.quorum.ops.remove(&req) else { return };
        let Pending { common, mut op } = pending;
        op.on_deadline(self, ctx, &common);
    }
}
