//! Conditional put — CAS on the record's LWW version — as a thin op pair
//! over the generic quorum driver.
//!
//! The op is two chained phases, each an ordinary driver entry:
//!
//! 1. **predicate check** — a quorum read at `R' = max(R, N-W+1)`. `R'`
//!    overlaps every write quorum (`R' + W > N`), so the reply set is
//!    guaranteed to contain the latest *acknowledged* write and the
//!    predicate is evaluated against it (a plain `R`-read could miss it
//!    when `R + W == N`... the paper's default `(3,2,1)` reads one replica).
//!    The version check itself ([`mystore_engine::cas_version_check`])
//!    lives in the engine next to `wins_over`, keyed on the same packed
//!    LWW stamp.
//! 2. **write** — on a match, a normal quorum write of the freshly
//!    versioned record ([`super::put::WriteReply::Cas`] routes the reply
//!    and metrics back to CAS).
//!
//! A mismatch answers [`StoreError::CasConflict`] carrying the actual
//! version, which the REST tier maps to `409 Conflict`. Note the predicate
//! is checked against the read round, not under a lock: two CAS racing on
//! the same key can both pass the check and then resolve by LWW — the
//! returned versions tell the callers who won. Failure of either phase's
//! quorum reports `cas.failed`, never a silent partial write.

use mystore_engine::cas_version_check;
use mystore_net::{Context, NodeId};

use crate::message::{Body, Msg, StoreError};
use crate::storage_node::StorageNode;

use super::driver::Common;
use super::get::{ReadOp, ReadPurpose};
use super::put::WriteReply;

impl StorageNode {
    /// Coordinator entry point for a conditional put.
    pub(crate) fn start_cas(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        key: String,
        value: Body,
        expected: u64,
    ) {
        self.metrics.cas_started.inc();
        let n = self.cfg.nwr.n;
        let prefs = self.ring.preference_list(key.as_bytes(), n);
        if prefs.is_empty() {
            ctx.send(caller, Msg::CasResp { req: caller_req, result: Err(StoreError::NoRing) });
            return;
        }
        // The write-overlapping read quorum (see module docs).
        let read_quorum = self.cfg.nwr.r.max(n - self.cfg.nwr.w + 1);
        let my_req = self.fresh_req();
        let purpose = ReadPurpose::Cas { value, expected, cas_started_us: ctx.now().as_micros() };
        self.start_read(ctx, my_req, caller, caller_req, key, prefs, read_quorum, purpose);
    }

    /// The predicate-check read met its quorum: evaluate the version check
    /// against the LWW winner and either reject with the actual version or
    /// chain into the write phase.
    pub(crate) fn cas_read_decided(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        common: &Common,
        op: &ReadOp,
    ) {
        let ReadPurpose::Cas { ref value, expected, cas_started_us } = op.purpose else { return };
        match cas_version_check(op.newest(), expected) {
            Err(actual) => {
                self.stats.cas_conflicts += 1;
                self.metrics.cas_conflicts.inc();
                self.metrics
                    .cas_latency_us
                    .record(ctx.now().as_micros().saturating_sub(cas_started_us));
                ctx.record("cas_conflict", 1.0);
                ctx.send(
                    common.caller,
                    Msg::CasResp {
                        req: common.caller_req,
                        result: Err(StoreError::CasConflict(actual)),
                    },
                );
            }
            Ok(()) => {
                let n = self.cfg.nwr.n;
                let prefs = self.ring.preference_list(op.key.as_bytes(), n);
                if prefs.is_empty() {
                    ctx.send(
                        common.caller,
                        Msg::CasResp { req: common.caller_req, result: Err(StoreError::NoRing) },
                    );
                    return;
                }
                let record = self.build_record(ctx, op.key.clone(), value.clone(), false);
                self.start_write(
                    ctx,
                    common.caller,
                    common.caller_req,
                    prefs,
                    record,
                    WriteReply::Cas { cas_started_us },
                );
            }
        }
    }

    /// The CAS write phase reached `W`: answer with the new version (the
    /// caller's predicate for its next CAS).
    pub(crate) fn cas_write_succeeded(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        common: &Common,
        new_version: u64,
        cas_started_us: u64,
    ) {
        self.stats.cas_ok += 1;
        self.metrics.cas_ok.inc();
        self.metrics.cas_latency_us.record(ctx.now().as_micros().saturating_sub(cas_started_us));
        ctx.record("cas_ok", 1.0);
        ctx.send(common.caller, Msg::CasResp { req: common.caller_req, result: Ok(new_version) });
    }

    /// Either CAS phase missed its quorum deadline.
    pub(crate) fn cas_deadline_failed(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        common: &Common,
        err: StoreError,
    ) {
        self.stats.cas_failed += 1;
        self.metrics.cas_failed.inc();
        ctx.record("cas_fail", 1.0);
        ctx.send(common.caller, Msg::CasResp { req: common.caller_req, result: Err(err) });
    }
}
