//! Node-level observability: the [`NodeStats`] operation counters
//! (plain fields, snapshot via [`super::StorageNode::stats`]) and the
//! registry-backed [`StorageMetrics`] series resolved once per node from
//! [`crate::config::StorageConfig::metrics`].

use mystore_obs::{Counter, Gauge, Histogram, Registry};

/// Operation counters, exposed for tests and experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Writes this node coordinated successfully.
    pub puts_ok: u64,
    /// Writes this node coordinated that failed quorum.
    pub puts_failed: u64,
    /// Reads this node coordinated successfully.
    pub gets_ok: u64,
    /// Reads this node coordinated that failed quorum.
    pub gets_failed: u64,
    /// Conditional writes this node coordinated to success.
    pub cas_ok: u64,
    /// Conditional writes rejected on a version-predicate mismatch.
    pub cas_conflicts: u64,
    /// Conditional writes that failed a quorum deadline (either phase).
    pub cas_failed: u64,
    /// Hints this node issued as a coordinator (short-failure diversions).
    pub handoffs_sent: u64,
    /// Hints this node held and later wrote back to the intended replica.
    pub hints_replayed: u64,
    /// Records shipped away during rebalance.
    pub records_migrated_out: u64,
    /// Records sent to peers by rebalance sweeps (per-destination count;
    /// one record shipped to two peers counts twice).
    pub rebalance_records_sent: u64,
    /// Read repairs / replica supplements pushed.
    pub read_repairs: u64,
    /// Records pushed back to this node by anti-entropy exchanges.
    pub anti_entropy_received: u64,
    /// Replica-level store operations applied locally.
    pub replica_puts: u64,
    /// Replica-level fetches served locally.
    pub replica_gets: u64,
}

/// Observability handles for the coordinator and hinted-handoff hot paths.
/// Resolved once per node from [`StorageConfig::metrics`]; all nodes sharing
/// a registry aggregate into the same cluster-wide series.
#[derive(Debug, Clone, Default)]
pub struct StorageMetrics {
    /// Quorum writes this node began coordinating.
    pub quorum_write_started: Counter,
    /// Quorum writes acknowledged to the caller (reached `W`).
    pub quorum_write_ok: Counter,
    /// Quorum writes that failed the hard deadline.
    pub quorum_write_failed: Counter,
    /// Coordinator-side write latency, arrival → `W`-ack reply (µs).
    pub quorum_write_latency_us: Histogram,
    /// Quorum reads this node began coordinating.
    pub quorum_read_started: Counter,
    /// Quorum reads answered to the caller (reached `R`).
    pub quorum_read_ok: Counter,
    /// Quorum reads that failed the hard deadline.
    pub quorum_read_failed: Counter,
    /// Coordinator-side read latency, arrival → `R`-reply (µs).
    pub quorum_read_latency_us: Histogram,
    /// Conditional writes this node began coordinating.
    pub cas_started: Counter,
    /// Conditional writes acknowledged to the caller (predicate held,
    /// write reached `W`).
    pub cas_ok: Counter,
    /// Conditional writes rejected because the version predicate failed.
    pub cas_conflicts: Counter,
    /// Conditional writes that failed a quorum deadline (either phase).
    pub cas_failed: Counter,
    /// Conditional-write latency, arrival → reply, conflicts included (µs).
    pub cas_latency_us: Histogram,
    /// Winner records pushed to stale or missing replicas after a read.
    pub read_repair_pushes: Counter,
    /// Hints accepted for safekeeping (either for a peer or self-held).
    pub hints_stored: Counter,
    /// Hints written back to their intended replica and discharged.
    pub hints_replayed: Counter,
    /// Writes diverted to a fallback node on replica soft-timeout.
    pub handoffs: Counter,
    /// Hints currently parked in this node's `hints` collection.
    pub hint_queue_depth: Gauge,
    /// `StoreReplica` re-sends to write stragglers.
    pub put_retries: Counter,
    /// `FetchReplica` re-sends to read stragglers.
    pub get_retries: Counter,
    /// Requests whose straggler retries all went unanswered (writes then
    /// divert to hinted handoff).
    pub retries_exhausted: Counter,
    /// Backoff delays armed between retry rounds (µs).
    pub retry_backoff_us: Histogram,
    /// Hint replays swept because no ack arrived within the request
    /// deadline (the hint stays parked and is offered again).
    pub hint_replay_expired: Counter,
    /// Storage-node process restarts (WAL replays).
    pub restarts: Counter,
    /// Batched replica messages sent by the coalescing coordinator.
    pub batch_msgs: Counter,
    /// Replica ops carried inside those batched messages.
    pub batch_ops: Counter,
    /// Replica acks held back until the covering WAL sync completed.
    pub acks_deferred: Counter,
    /// Restarts whose WAL replay failed; the node came back empty and
    /// relies on read repair / anti-entropy to re-fill.
    pub recover_failures: Counter,
    /// Migration-engine replica writes awaiting an ack (DESIGN.md §16).
    pub migrate_in_flight: Gauge,
    /// Records the migration engine shipped (per destination copy).
    pub migrate_records_sent: Counter,
    /// Payload bytes the migration engine shipped (per destination copy).
    pub migrate_bytes_sent: Counter,
    /// Ring arcs fully transferred, acknowledged, and cut over.
    pub migrate_arcs_cutover: Counter,
    /// Wall-clock per arc, dispatch start → cutover (µs).
    pub migrate_arc_duration_us: Histogram,
}

impl StorageMetrics {
    /// Resolves the standard `quorum.*` / `cas.*` / `read_repair.*` /
    /// `hint.*` names.
    pub fn from_registry(registry: &Registry) -> Self {
        StorageMetrics {
            quorum_write_started: registry.counter("quorum.write.started"),
            quorum_write_ok: registry.counter("quorum.write.ok"),
            quorum_write_failed: registry.counter("quorum.write.failed"),
            quorum_write_latency_us: registry.histogram("quorum.write.latency_us"),
            quorum_read_started: registry.counter("quorum.read.started"),
            quorum_read_ok: registry.counter("quorum.read.ok"),
            quorum_read_failed: registry.counter("quorum.read.failed"),
            quorum_read_latency_us: registry.histogram("quorum.read.latency_us"),
            cas_started: registry.counter("cas.started"),
            cas_ok: registry.counter("cas.ok"),
            cas_conflicts: registry.counter("cas.conflicts"),
            cas_failed: registry.counter("cas.failed"),
            cas_latency_us: registry.histogram("cas.latency_us"),
            read_repair_pushes: registry.counter("read_repair.pushes"),
            hints_stored: registry.counter("hint.stored"),
            hints_replayed: registry.counter("hint.replayed"),
            handoffs: registry.counter("hint.handoffs"),
            hint_queue_depth: registry.gauge("hint.queue_depth"),
            put_retries: registry.counter("retry.put.resends"),
            get_retries: registry.counter("retry.get.resends"),
            retries_exhausted: registry.counter("retry.exhausted"),
            retry_backoff_us: registry.histogram("retry.backoff_us"),
            hint_replay_expired: registry.counter("hint.replay_expired"),
            restarts: registry.counter("node.restarts"),
            batch_msgs: registry.counter("batch.replica_msgs"),
            batch_ops: registry.counter("batch.replica_ops"),
            acks_deferred: registry.counter("coord.acks_deferred"),
            recover_failures: registry.counter("node.recover_failures"),
            migrate_in_flight: registry.gauge("migrate.in_flight"),
            migrate_records_sent: registry.counter("migrate.records_sent"),
            migrate_bytes_sent: registry.counter("migrate.bytes_sent"),
            migrate_arcs_cutover: registry.counter("migrate.arcs_cutover"),
            migrate_arc_duration_us: registry.histogram("migrate.arc_duration_us"),
        }
    }
}
