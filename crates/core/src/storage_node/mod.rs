//! The MyStore storage node (paper §5).
//!
//! One process per database node, combining:
//!
//! * the **local store** — a [`Db`] holding the `data` collection (indexed
//!   by `self-key`) and the `hints` collection,
//! * the **gossiper** — §5.2.3 state transfer and failure detection,
//! * the **ring view** — rebuilt from gossiped membership (endpoints
//!   publish their virtual-node counts),
//! * the **coordinator** — every node can coordinate any key (the paper
//!   notes "clients can connect to any node in the system to get/put
//!   data"): quorum writes/reads/conditional writes per §5.2.2, hinted
//!   handoff per §5.2.4 (Fig. 8), read repair ("replications are
//!   supplemented to achieve N"),
//! * **rebalance** — migration on node addition and replica rebuilding on
//!   long failure (Fig. 9).
//!
//! The node is a sans-io [`Process`]: all I/O and timing is delegated to
//! the runtime, so identical logic runs in the deterministic simulator and
//! in the threaded runtime.
//!
//! The implementation is a module tree; this file holds the node state,
//! construction, and the [`Process`] dispatch shell:
//!
//! * [`coordinator`] — the generic quorum engine ([`coordinator::quorum::Driver`],
//!   the `QuorumOp` trait) and the thin PUT/GET/CAS op definitions,
//! * [`replica`] — the replica-level server side (store/fetch/hint, ack
//!   deferral under group commit),
//! * [`maintenance`] — membership/ring/rebalance, hint replay,
//!   anti-entropy, outbox coalescing, WAL-flush and gossip ticks.

pub(crate) mod coordinator;
pub(crate) mod maintenance;
pub(crate) mod migrate;
pub(crate) mod replica;
pub(crate) mod stats;
pub(crate) mod sync;

use std::collections::BTreeMap;

use mystore_engine::{Db, GroupCommitConfig, WalMetrics};
use mystore_gossip::{GossipMetrics, Gossiper};
use mystore_net::{Context, NodeId, OpFault, Process, TimerToken};
use mystore_ring::HashRing;

use crate::config::StorageConfig;
use crate::message::{BatchPut, Msg};

use self::coordinator::quorum;
use self::maintenance::HintInFlight;
use self::migrate::{InboundArc, MigAck, MigrationPlan, ProxyFetch};
pub use self::stats::{NodeStats, StorageMetrics};

// Timer-token layout: low 4 bits select the kind, the rest carry a request id.
pub(crate) const TK_KIND_MASK: u64 = 0b1111;
pub(crate) const TK_GOSSIP: u64 = 1;
pub(crate) const TK_HINT_REPLAY: u64 = 2;
pub(crate) const TK_PUT_RETRY: u64 = 3;
pub(crate) const TK_PUT_HARD: u64 = 4;
pub(crate) const TK_GET_HARD: u64 = 5;
pub(crate) const TK_REAP: u64 = 6;
pub(crate) const TK_ANTI_ENTROPY: u64 = 7;
pub(crate) const TK_GET_RETRY: u64 = 8;
pub(crate) const TK_WAL_FLUSH: u64 = 9;
pub(crate) const TK_COALESCE: u64 = 10;
pub(crate) const TK_MIGRATE: u64 = 11;

pub(crate) fn tk(kind: u64, req: u64) -> TimerToken {
    (req << 4) | kind
}

pub(crate) fn tk_split(token: TimerToken) -> (u64, u64) {
    (token & TK_KIND_MASK, token >> 4)
}

/// Collection holding hinted-handoff records.
pub(crate) const HINTS: &str = "hints";

/// The storage-node process.
pub struct StorageNode {
    pub(crate) cfg: StorageConfig,
    pub(crate) db: Db,
    pub(crate) gossiper: Gossiper,
    pub(crate) ring: HashRing<NodeId>,
    /// Membership signature the current ring was built from.
    pub(crate) ring_sig: Vec<(NodeId, u32)>,
    /// The generic quorum engine: every coordinated operation (PUT, GET,
    /// CAS, batched replica writes) lives in its pending table.
    pub(crate) quorum: quorum::Driver,
    /// Hint-replay requests in flight: replica req → hint + send time.
    pub(crate) hint_acks: BTreeMap<u64, HintInFlight>,
    pub(crate) next_req: u64,
    pub(crate) stats: NodeStats,
    /// Bumped every restart; the gossip boot generation.
    pub(crate) generation: u64,
    /// Rotation cursor through the key space for anti-entropy batches.
    pub(crate) sync_cursor: Option<String>,
    /// Anti-entropy round counter (rotates the peer choice).
    pub(crate) sync_round: u64,
    /// `Db::last_seq` observed at the previous anti-entropy round; the idle
    /// backoff widens the period while this stays unchanged.
    pub(crate) ae_last_seq: u64,
    /// Consecutive anti-entropy rounds with no local writes.
    pub(crate) ae_quiet_rounds: u32,
    /// Merkle sync state: per-range leaf hashes over the local keyspace,
    /// kept current from the engine's dirty-key feed (only used when
    /// `anti_entropy_merkle` is on).
    pub(crate) sync_tree: crate::sync::SyncTree,
    /// Highest tombstone-reap cutoff applied locally. Sync digests below
    /// this floor must not resurrect keys we reaped: a missing key whose
    /// remote version is older than the floor was deleted here, not lost.
    /// Volatile by design — reset on restart, when anti-entropy legitimately
    /// refills the store (see DESIGN.md §14).
    pub(crate) reap_floor: u64,
    /// Anti-entropy observability (shared registry, `sync.*` series).
    pub(crate) sync_metrics: crate::sync::SyncMetrics,
    /// Whether a `TK_WAL_FLUSH` timer is armed. The flush timer is
    /// demand-driven: armed when a write stages a group-commit frame, left
    /// unarmed while the WAL has nothing pending — so an idle node
    /// schedules no flush ticks at all.
    pub(crate) wal_flush_armed: bool,
    /// Coalescing buffer: replica writes waiting to be flushed to each peer
    /// as one [`Msg::StoreReplicaBatch`] (empty when coalescing is off).
    pub(crate) outbox: BTreeMap<NodeId, Vec<BatchPut>>,
    /// Whether a `TK_COALESCE` flush timer is already armed.
    pub(crate) outbox_armed: bool,
    /// Acks for locally-applied replica writes whose WAL frames are still
    /// waiting on their covering group-commit sync: `(to, req, ok)`. An ack
    /// must mean "durable here", so these are released only after the sync.
    pub(crate) deferred_acks: Vec<(NodeId, u64, bool)>,
    /// The active migration plan, when a ring change is being drained
    /// through the rate-limited engine (DESIGN.md §16); `None` otherwise
    /// (and always, with the engine disabled).
    pub(crate) migration: Option<MigrationPlan>,
    /// Migration replica-writes awaiting their `StoreAck`.
    pub(crate) migrate_acks: BTreeMap<u64, MigAck>,
    /// Arcs this node is receiving but has not been cut over yet: reads
    /// that miss proxy to (and writes forward to) the arc's old owner.
    pub(crate) pending_in: Vec<InboundArc>,
    /// Fetches deferred while the old owner of an inbound arc is asked.
    pub(crate) read_proxies: BTreeMap<u64, ProxyFetch>,
    /// A persisted migration cursor recovered at (re)start, parked until
    /// gossip re-converges and `start_migration` can rebuild the plan.
    pub(crate) resume_cursor: Option<migrate::ResumeCursor>,
    /// Whether a `TK_MIGRATE` tick is armed (demand-driven, like the WAL
    /// flush timer: an idle node schedules none).
    pub(crate) migrate_armed: bool,
    pub(crate) metrics: StorageMetrics,
}

impl StorageNode {
    /// Creates a node with identity `me`. With
    /// [`StorageConfig::data_dir`] set, the node opens (and on restart,
    /// recovers) a durable WAL named `node<id>.wal` in that directory.
    pub fn new(me: NodeId, cfg: StorageConfig) -> Self {
        // Construction runs before the node joins the cluster; failing fast
        // on a bad config or an unopenable data dir is the intended
        // behaviour (nothing is serving yet), hence the allows below.
        // lint:allow(no-panic-hot-path): startup-time config validation, fail-fast by design
        cfg.nwr.validate().expect("invalid NWR configuration");
        let mut db = match &cfg.data_dir {
            Some(dir) => {
                // lint:allow(no-panic-hot-path): startup-time data-dir setup, fail-fast by design
                std::fs::create_dir_all(dir).expect("create data dir");
                // lint:allow(no-panic-hot-path): startup-time WAL open, fail-fast by design
                Db::open(dir.join(format!("node{}.wal", me.0))).expect("open node wal")
            }
            None => Db::memory(),
        };
        // Record ids must replay identically under the seeded simulator.
        db.set_oid_machine(u64::from(me.0));
        // Recovered databases already carry the index.
        let indexed = db
            .collection(&cfg.collection)
            .map(|c| c.index_fields().contains(&"self-key"))
            .unwrap_or(false);
        if !indexed {
            // lint:allow(no-panic-hot-path): startup-time index creation, fail-fast by design
            db.create_index(&cfg.collection, "self-key").expect("fresh db");
        }
        db.set_wal_metrics(WalMetrics::from_registry(&cfg.metrics));
        if cfg.group_commit_ops > 1 {
            db.set_group_commit(Some(GroupCommitConfig {
                ops: cfg.group_commit_ops,
                max_delay_us: cfg.group_commit_max_delay_us,
            }));
        }
        if cfg.anti_entropy_merkle {
            // The sync tree mirrors the data collection incrementally; the
            // engine reports every mutated self-key so leaves dirty in O(1).
            db.track_dirty_keys(&cfg.collection);
        }
        let mut gossiper = Gossiper::new(me, 1, cfg.gossip.clone());
        gossiper.set_metrics(GossipMetrics::from_registry(&cfg.metrics));
        let metrics = StorageMetrics::from_registry(&cfg.metrics);
        let sync_tree = crate::sync::SyncTree::new(cfg.merkle_leaf_splits);
        let sync_metrics = crate::sync::SyncMetrics::from_registry(&cfg.metrics);
        StorageNode {
            cfg,
            db,
            gossiper,
            ring: HashRing::new(),
            ring_sig: Vec::new(),
            quorum: quorum::Driver::new(),
            hint_acks: BTreeMap::new(),
            next_req: 1,
            stats: NodeStats::default(),
            generation: 1,
            sync_cursor: None,
            sync_round: 0,
            ae_last_seq: 0,
            ae_quiet_rounds: 0,
            sync_tree,
            reap_floor: 0,
            sync_metrics,
            wal_flush_armed: false,
            outbox: BTreeMap::new(),
            outbox_armed: false,
            deferred_acks: Vec::new(),
            migration: None,
            migrate_acks: BTreeMap::new(),
            pending_in: Vec::new(),
            read_proxies: BTreeMap::new(),
            resume_cursor: None,
            migrate_armed: false,
            metrics,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.gossiper.id()
    }

    /// Operation counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Records stored locally in the data collection (replicas included,
    /// tombstones included) — the quantity Fig. 15 plots.
    pub fn record_count(&self) -> usize {
        self.db.collection(&self.cfg.collection).map(|c| c.len()).unwrap_or(0)
    }

    /// Outstanding hints held for other nodes.
    pub fn hint_count(&self) -> usize {
        self.db.collection(HINTS).map(|c| c.len()).unwrap_or(0)
    }

    /// Read access to the local database (tests, diagnostics).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Directly installs a replica, bypassing the network path. Experiment
    /// harnesses use this to preload large corpora without simulating hours
    /// of load traffic; placement must be computed by the caller (see
    /// `mystore-workload`'s preload helpers).
    pub fn preload_record(&mut self, record: &mystore_engine::Record) {
        let _ = self.db.put_record(&self.cfg.collection, record);
    }

    /// The node's current ring view.
    pub fn ring(&self) -> &HashRing<NodeId> {
        &self.ring
    }

    /// Gossip-derived liveness belief.
    pub fn believes_alive(&self, node: NodeId) -> bool {
        self.gossiper.is_alive(node)
    }

    /// Hint replays currently awaiting an acknowledgement (tests: the
    /// hint-ack map must stay bounded when targets die mid-replay).
    pub fn inflight_hint_replays(&self) -> usize {
        self.hint_acks.len()
    }

    /// Coordinated operations currently in the quorum engine's pending
    /// table (tests: the table must drain once deadlines pass).
    pub fn inflight_quorum_ops(&self) -> usize {
        self.quorum.ops.len()
    }

    /// Highest tombstone-reap cutoff applied since the last restart
    /// (tests: resurrection protection must engage after a reap).
    pub fn reap_floor(&self) -> u64 {
        self.reap_floor
    }

    pub(crate) fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }
}

impl Process<Msg> for StorageNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // A recovered store may hold an interrupted migration's cursor
        // (durable WAL restart): park it before the first ring refresh.
        self.resume_migration();
        // Make sure the local ring at least contains this node, so a
        // single-node deployment serves requests before any gossip.
        self.refresh_ring(ctx);
        // Stagger the first gossip round a little to avoid lockstep.
        let jitter = ctx.rng().range_u64(0, self.cfg.gossip.interval_us / 4 + 1);
        ctx.set_timer(self.cfg.gossip.interval_us / 4 + jitter, tk(TK_GOSSIP, 0));
        ctx.set_timer(self.cfg.hint_replay_interval_us, tk(TK_HINT_REPLAY, 0));
        if self.cfg.compaction_interval_us > 0 {
            ctx.set_timer(self.cfg.compaction_interval_us, tk(TK_REAP, 0));
        }
        if self.cfg.anti_entropy_interval_us > 0 {
            // Stagger the first round so nodes don't sync in lockstep.
            let jitter = ctx.rng().range_u64(0, self.cfg.anti_entropy_interval_us / 2 + 1);
            ctx.set_timer(self.cfg.anti_entropy_interval_us / 2 + jitter, tk(TK_ANTI_ENTROPY, 0));
        }
        // TK_WAL_FLUSH is demand-driven (armed by the first staged
        // group-commit frame, see `ensure_wal_flush_armed`), so an idle
        // node runs no flush ticks.
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        // Crash recovery: drop all volatile state and rebuild the store
        // from its WAL — anything that never reached the log is lost,
        // exactly as on a real process crash.
        let db = std::mem::replace(&mut self.db, Db::memory());
        self.db = match db.recover_from_wal() {
            Ok(recovered) => recovered,
            Err(_) => {
                // A corrupt log must not take the node (and in the sim, the
                // whole cluster process) down: come back empty — read repair
                // and anti-entropy re-fill us — and count the event.
                self.metrics.recover_failures.inc();
                let mut fresh = Db::memory();
                let _ = fresh.create_index(&self.cfg.collection, "self-key");
                fresh.set_wal_metrics(WalMetrics::from_registry(&self.cfg.metrics));
                fresh.set_oid_machine(u64::from(self.id().0));
                if self.cfg.group_commit_ops > 1 {
                    fresh.set_group_commit(Some(GroupCommitConfig {
                        ops: self.cfg.group_commit_ops,
                        max_delay_us: self.cfg.group_commit_max_delay_us,
                    }));
                }
                fresh
            }
        };
        if self.cfg.anti_entropy_merkle {
            self.db.track_dirty_keys(&self.cfg.collection);
        }
        // The tree mirrors pre-crash state; rebuild lazily from the
        // recovered store on the next merkle round. The reap floor is
        // volatile on purpose: an empty recovered store must accept
        // anti-entropy refills.
        self.sync_tree.reset();
        self.reap_floor = 0;
        // A restart is a new boot generation (paper's bootGeneration field):
        // peers see the bump and reset our state, clearing any long-failure
        // declaration. Build on the gossiper's generation too — it may have
        // reasserted a higher one after a lost-clock recovery.
        self.generation = self.generation.max(self.gossiper.generation()) + 1;
        self.gossiper = Gossiper::new(self.id(), self.generation, self.cfg.gossip.clone());
        self.gossiper.set_metrics(GossipMetrics::from_registry(&self.cfg.metrics));
        self.quorum.ops.clear();
        self.hint_acks.clear();
        self.outbox.clear();
        self.outbox_armed = false;
        self.wal_flush_armed = false;
        self.ae_last_seq = 0;
        self.ae_quiet_rounds = 0;
        self.deferred_acks.clear();
        // Volatile migration state dies with the process; the persisted
        // cursor in `migrate_state` is what survives, and `resume_migration`
        // rebuilds the plan from it below.
        self.migration = None;
        self.migrate_acks.clear();
        self.pending_in.clear();
        self.read_proxies.clear();
        self.resume_cursor = None;
        self.migrate_armed = false;
        self.metrics.restarts.inc();
        // `on_start` re-parks the persisted migration cursor (if any) via
        // `resume_migration` before the first ring refresh.
        self.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        // The runtime samples at most one per-operation fault (Table 2);
        // replica-level storage ops interpret it below.
        let fault = ctx.take_op_fault();
        match msg {
            Msg::Put { req, key, value, delete } => {
                if fault == Some(OpFault::NetworkException) {
                    return; // request lost on the wire; caller times out
                }
                self.start_put(ctx, from, req, key, value, delete);
            }
            Msg::Get { req, key } => {
                if fault == Some(OpFault::NetworkException) {
                    return;
                }
                self.start_get(ctx, from, req, key);
            }
            Msg::Cas { req, key, value, expected } => {
                if fault == Some(OpFault::NetworkException) {
                    return;
                }
                self.start_cas(ctx, from, req, key, value, expected);
            }
            Msg::StoreReplica { req, record } => {
                self.on_store_replica(ctx, from, req, record, fault)
            }
            Msg::StoreReplicaBatch { ops } => self.on_store_replica_batch(ctx, from, ops, fault),
            Msg::StoreAck { req, ok } => self.on_store_ack(ctx, from, req, ok),
            Msg::StoreAckBatch { acks } => {
                for (req, ok) in acks {
                    self.on_store_ack(ctx, from, req, ok);
                }
            }
            Msg::FetchReplica { req, key } => self.on_fetch_replica(ctx, from, req, key, fault),
            Msg::FetchAck { req, found, ok } => {
                // A deferred dual-ownership fetch: the old owner answered;
                // complete the original request with its copy.
                if let Some(proxy) = self.read_proxies.remove(&req) {
                    ctx.send(proxy.requester, Msg::FetchAck { req: proxy.orig_req, found, ok });
                    return;
                }
                self.drv_on_reply(ctx, req, from, quorum::Reply::Fetch { found, ok })
            }
            Msg::StoreHint { req, intended, record } => {
                self.on_store_hint(ctx, from, req, intended, record, fault)
            }
            Msg::SyncDigest { entries } => self.on_sync_digest(ctx, from, entries),
            Msg::SyncRecords { records } => {
                for record in records {
                    // Resurrection guard (push path): a record the sender
                    // believes we are missing, but whose version predates a
                    // tombstone reap we performed, is the ghost of a key we
                    // deleted — not data we lost.
                    if self.reap_floor > 0
                        && record.version <= self.reap_floor
                        && self
                            .db
                            .get_record(&self.cfg.collection, &record.self_key)
                            .ok()
                            .flatten()
                            .is_none()
                    {
                        self.sync_metrics.resurrections_blocked.inc();
                        continue;
                    }
                    ctx.consume(self.cfg.cost.put_us(record.val.len()));
                    if self.db.put_record(&self.cfg.collection, &record).unwrap_or(false) {
                        self.stats.anti_entropy_received += 1;
                        ctx.record("anti_entropy_repair", 1.0);
                    }
                }
                self.ensure_wal_flush_armed(ctx);
            }
            Msg::SyncTreeRequest { ring_hash, root } => {
                self.on_sync_tree_request(ctx, from, ring_hash, root)
            }
            Msg::SyncTreeLevel { ring_hash, nodes } => {
                self.on_sync_tree_level(ctx, from, ring_hash, nodes)
            }
            Msg::SyncLeafDigest { ring_hash, leaves, entries } => {
                self.on_sync_leaf_digest(ctx, from, ring_hash, leaves, entries)
            }
            Msg::MigrateCutover { start, end } => self.on_migrate_cutover(from, start, end),
            Msg::MigrateBegin { start, end } => self.on_migrate_begin(from, start, end),
            Msg::TransferRecords { records } => {
                for record in records {
                    ctx.consume(self.cfg.cost.put_us(record.val.len()));
                    let _ = self.db.put_record(&self.cfg.collection, &record);
                }
                self.ensure_wal_flush_armed(ctx);
            }
            Msg::Gossip(g) => {
                ctx.consume(self.cfg.cost.gossip_us);
                let now = ctx.now();
                if let Some((to, reply)) = self.gossiper.handle(now, from, g) {
                    ctx.send(to, Msg::Gossip(reply));
                }
                self.process_membership(ctx);
            }
            Msg::RingReq { req } => {
                let mut members: Vec<NodeId> = self.ring.nodes().copied().collect();
                members.sort_unstable();
                ctx.send(from, Msg::RingResp { req, members });
            }
            // REST/cache traffic does not terminate here.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        let (kind, req) = tk_split(token);
        match kind {
            TK_GOSSIP => self.gossip_tick(ctx),
            TK_HINT_REPLAY => {
                self.replay_hints(ctx);
                ctx.set_timer(self.cfg.hint_replay_interval_us, tk(TK_HINT_REPLAY, 0));
            }
            TK_REAP => {
                // Deferred reclamation of logical deletes (§3.3): physically
                // drop tombstones old enough that no repair can resurrect
                // their keys.
                let now_us = ctx.now().as_micros();
                let cutoff = mystore_engine::pack_version(
                    now_us.saturating_sub(self.cfg.tombstone_grace_us),
                    0,
                );
                if let Ok(reaped) = self.db.reap_tombstones(&self.cfg.collection, cutoff) {
                    if reaped > 0 {
                        ctx.record("tombstones_reaped", reaped as f64);
                        // Only advance the floor when something was actually
                        // reaped: a fresh (or refilled-from-empty) node keeps
                        // floor 0 so anti-entropy can seed it.
                        self.reap_floor = self.reap_floor.max(cutoff);
                    }
                }
                ctx.set_timer(self.cfg.compaction_interval_us, tk(TK_REAP, 0));
            }
            TK_ANTI_ENTROPY => {
                self.anti_entropy_round(ctx);
                ctx.set_timer(self.next_anti_entropy_delay_us(), tk(TK_ANTI_ENTROPY, 0));
            }
            // All four retry/deadline kinds resolve through the unified
            // driver: the pending table is keyed by request id, so the op
            // kind is recovered from the table, not the token.
            TK_PUT_RETRY | TK_GET_RETRY => self.drv_on_retry_timeout(ctx, req),
            TK_PUT_HARD | TK_GET_HARD => self.drv_on_hard_timeout(ctx, req),
            TK_WAL_FLUSH => self.wal_flush_tick(ctx),
            TK_COALESCE => self.flush_outbox(ctx),
            TK_MIGRATE => self.migrate_tick(ctx),
            _ => {}
        }
    }

    fn quiescent(&self) -> bool {
        // In-flight quorum coordination, parked group-commit acks, and
        // queued replica batches all represent work a graceful drain must
        // let finish; background maintenance (gossip, anti-entropy, hint
        // replay) can be cut at any point.
        self.quorum.ops.is_empty()
            && self.deferred_acks.is_empty()
            && self.outbox.values().all(Vec::is_empty)
    }

    fn on_shutdown(&mut self, ctx: &mut Context<'_, Msg>) {
        // Push out anything still coalescing, make the WAL durable, and
        // release the acks that durability was gating — the shutdown
        // counterpart of `wal_flush_tick`, without re-arming the timer.
        self.flush_outbox(ctx);
        if self.db.wal_pending_ops() > 0 {
            let _ = self.db.sync_wal();
        }
        self.maybe_flush_deferred_acks(ctx);
    }
}
