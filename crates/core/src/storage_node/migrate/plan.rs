//! Data types of the migration engine: the resumable plan, its arcs and
//! work items, and the dual-ownership bookkeeping ([`InboundArc`],
//! [`ProxyFetch`]) kept by nodes on the receiving side. The engine logic
//! that drives these lives in the parent module.

use std::collections::{BTreeMap, BTreeSet};

use mystore_net::NodeId;
use mystore_ring::{Arc_, HashRing};

/// One ring arc this node owes records to the new ring for.
pub(crate) struct PlanArc {
    /// The elementary arc (constant preference lists inside it).
    pub(crate) arc: Arc_,
    /// Peers that receive a copy of every record in the arc (the legacy
    /// sweep's targeting rule: entrants only while we keep our copy, the
    /// whole new replica set when we are leaving).
    pub(crate) targets: Vec<NodeId>,
    /// Peers that newly entered the replica set — they get the cutover.
    pub(crate) entrants: Vec<NodeId>,
    /// Whether this node stays in the arc's replica set.
    pub(crate) keep: bool,
    /// Whether this node was the arc's old *primary* (first of the old
    /// preference list) — the designated announcer of `MigrateBegin` /
    /// proxy target for dual-ownership reads.
    pub(crate) primary: bool,
    /// One past the last work-list index belonging to this arc.
    pub(crate) end_idx: usize,
    /// Clock at first dispatch (0 = not started yet).
    pub(crate) started_at_us: u64,
    /// Whether the arc has been cut over.
    pub(crate) cutover: bool,
}

/// One record owed to the new ring: `(arc index, self-key)`.
pub(crate) type WorkItem = (usize, String);

/// A migration replica-write awaiting its ack.
pub(crate) struct MigAck {
    /// Work-list index the ack settles (one item can await several acks,
    /// one per destination copy).
    pub(crate) idx: usize,
    /// The destination the copy was sent to: acks settle per `(idx,
    /// target)`, so a duplicate ack from one target can never stand in
    /// for another target's missing copy.
    pub(crate) target: NodeId,
    /// Send time, for the expiry sweep.
    pub(crate) sent_at_us: u64,
}

/// A resumable, rate-limited transfer of every record the latest ring
/// change re-homed.
pub(crate) struct MigrationPlan {
    /// The ring the diff was taken *from* (kept so a second membership
    /// change mid-flight re-plans from the original base, not the
    /// half-migrated intermediate).
    pub(crate) old_ring: HashRing<NodeId>,
    /// Membership signature of `old_ring` (persisted for resume).
    pub(crate) from_sig: Vec<(NodeId, u32)>,
    /// Arcs in dispatch order.
    pub(crate) arcs: Vec<PlanArc>,
    /// Work items sorted by `(arc, key)` — the deterministic cursor space.
    pub(crate) work: Vec<WorkItem>,
    /// Longest fully-acked prefix of `work`.
    pub(crate) low_water: usize,
    /// Next item to dispatch.
    pub(crate) cursor: usize,
    /// Acked indices above the low-water mark.
    pub(crate) acked: BTreeSet<usize>,
    /// Targets still owing an ack, per dispatched item. An item settles
    /// only when every distinct target has acknowledged its copy;
    /// re-dispatch after a failure goes only to the targets still listed.
    pub(crate) needed: BTreeMap<usize, BTreeSet<NodeId>>,
    /// Items whose ack failed or expired; re-dispatched before the cursor.
    pub(crate) retry: BTreeSet<usize>,
    /// Low-water value last persisted to `migrate_state`.
    pub(crate) persisted: usize,
}

impl MigrationPlan {
    /// Arcs already cut over (gossiped as migration progress).
    pub(crate) fn arcs_done(&self) -> usize {
        self.arcs.iter().filter(|a| a.cutover).count()
    }

    pub(crate) fn done(&self) -> bool {
        self.low_water == self.work.len() && self.arcs.iter().all(|a| a.cutover)
    }

    pub(crate) fn advance_low_water(&mut self) {
        while self.acked.remove(&self.low_water) {
            self.low_water += 1;
        }
    }
}

/// An arc this node is *entering*: until the old owner cuts it over,
/// fetch misses proxy to `source` and applied writes are forwarded there.
pub(crate) struct InboundArc {
    /// The arc being received.
    pub(crate) arc: Arc_,
    /// The arc's old primary (first of the old preference list).
    pub(crate) source: NodeId,
}

/// A persisted migration cursor loaded at restart, waiting for gossip to
/// re-converge: the base-ring signature and the last fully-acked `(arc,
/// key)` position. Consumed by the first non-empty plan
/// [`StorageNode::start_migration`] builds.
pub(crate) struct ResumeCursor {
    /// Base-ring membership the interrupted plan diffed from.
    pub(crate) sig: Vec<(NodeId, u32)>,
    /// Arc index of the acked cursor (`-1` = nothing acked yet).
    pub(crate) arc: i64,
    /// Key of the acked cursor.
    pub(crate) key: String,
}

/// A fetch this node answered by asking the old owner; the `FetchAck` is
/// deferred until the source replies (or the entry expires).
pub(crate) struct ProxyFetch {
    /// Who asked us.
    pub(crate) requester: NodeId,
    /// Their correlation id, restored on the forwarded `FetchAck`.
    pub(crate) orig_req: u64,
    /// Send time, for the expiry sweep.
    pub(crate) sent_at_us: u64,
}

/// True when `outer` fully covers `inner` (wrap-aware): both the point
/// just after `inner`'s start and `inner`'s end fall inside `outer`.
pub(crate) fn covers(outer: &Arc_, inner: &Arc_) -> bool {
    outer.contains(inner.end) && outer.contains(inner.start.wrapping_add(1))
}
