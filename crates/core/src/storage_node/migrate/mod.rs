//! The incremental, rate-limited migration engine (DESIGN.md §16).
//!
//! Replaces the one-shot [`StorageNode::rebalance_sweep`] when either
//! per-tick budget in [`crate::config::StorageConfig`] is set
//! (`migrate_max_records_per_tick` / `migrate_max_bytes_per_tick`). A
//! membership change then builds a [`MigrationPlan`]: the old-vs-new ring
//! preference diff, cut into arcs, with one work item per locally-held
//! record whose replica set changed. A `TK_MIGRATE` tick drains the work
//! list in key order under the budgets, shipping records on the
//! acknowledged `StoreReplica`/`StoreReplicaBatch` path; an arc whose
//! items are all acked is *cut over* — entrants are told they are now
//! authoritative ([`crate::message::Msg::MigrateCutover`]) and, when this
//! node left the arc's replica set, its local copies are dropped.
//!
//! Until cutover the cluster is in **dual ownership** for the arc: an
//! entrant that misses a key proxies the fetch to the arc's old primary
//! ([`StorageNode::proxy_source`]), and writes it applies are forwarded to
//! that old owner so a cancelled migration never loses acked data.
//!
//! The acked low-water mark — the longest fully-acknowledged prefix of the
//! (deterministic) work list — is persisted as an `(arc, key)` cursor in
//! the `migrate_state` collection, so a crashed source resumes where it
//! stopped instead of restarting the sweep; at most the in-flight window
//! is re-sent, and LWW application dedups it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc as StdArc;

use mystore_bson::doc;
use mystore_engine::Record;
use mystore_net::{Context, NodeId};
use mystore_ring::{Arc_, HashRing};

use crate::message::{BatchPut, Msg};
use crate::storage_node::{tk, StorageNode, TK_MIGRATE};

/// Collection holding the persisted migration cursor (≤ 1 document).
pub(crate) const MIGRATE_STATE: &str = "migrate_state";

mod plan;

use plan::covers;
pub(crate) use plan::{
    InboundArc, MigAck, MigrationPlan, PlanArc, ProxyFetch, ResumeCursor, WorkItem,
};

impl StorageNode {
    /// Reweights this node at runtime: republishes the scaled vnode count
    /// so the whole ring (locally at once, peers via gossip) re-derives
    /// placement, which the migration engine then converges on.
    pub fn set_weight(&mut self, ctx: &mut Context<'_, Msg>, weight: u32) {
        if self.set_weight_deferred(weight) {
            self.refresh_ring(ctx);
        }
    }

    /// Context-free half of [`StorageNode::set_weight`]: updates the config
    /// and republishes gossip state, returning whether anything changed.
    /// The local ring refresh then rides the next gossip tick (embedders
    /// and tests without a runtime context in hand use this directly).
    pub fn set_weight_deferred(&mut self, weight: u32) -> bool {
        let weight = weight.max(1);
        if weight == self.cfg.weight {
            return false;
        }
        self.cfg.weight = weight;
        // Rebroadcast the *effective* vnode count immediately — peers build
        // their rings from VNODES alone, so a weight change that did not
        // bump it would never propagate.
        self.gossiper
            .set_app_state(mystore_gossip::keys::VNODES, self.cfg.effective_vnodes().to_string());
        self.gossiper
            .set_app_state_if_changed(mystore_gossip::keys::WEIGHT, self.cfg.weight.to_string());
        true
    }

    /// `<arcs cut over>/<arcs total>` of the active plan, if any.
    pub fn migration_progress(&self) -> Option<(usize, usize)> {
        self.migration.as_ref().map(|p| (p.arcs_done(), p.arcs.len()))
    }

    /// Arcs this node is still receiving (dual-ownership reads active).
    pub fn inbound_arcs(&self) -> usize {
        self.pending_in.len()
    }

    /// The old primary to consult for `key` while its arc is still
    /// inbound, if that source is currently believed alive.
    pub(crate) fn proxy_source(&self, key: &str) -> Option<NodeId> {
        if self.pending_in.is_empty() {
            return None;
        }
        let point = HashRing::<NodeId>::key_point(key.as_bytes());
        self.pending_in
            .iter()
            .find(|e| e.arc.contains(point))
            .map(|e| e.source)
            .filter(|&s| self.gossiper.is_alive(s) && !self.gossiper.is_removed(s))
    }

    /// Forwards a just-applied replica write to the old owner of a still
    /// inbound arc, so a migration cancelled before cutover loses nothing.
    /// No-op outside migration windows (`pending_in` empty).
    pub(crate) fn maybe_forward_inbound(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        record: &StdArc<Record>,
    ) {
        if self.pending_in.is_empty() {
            return;
        }
        let Some(source) = self.proxy_source(&record.self_key) else { return };
        // The transfer stream itself must not echo back to its sender.
        if source == from || source == self.id() {
            return;
        }
        ctx.send(source, Msg::StoreReplica { req: 0, record: StdArc::clone(record) });
    }

    /// The old owner finished an arc: this node is authoritative for it
    /// now — stop proxying reads and forwarding writes. Scoped to entries
    /// from that owner, so a stale cutover from a superseded plan cannot
    /// close a window another source still has open.
    pub(crate) fn on_migrate_cutover(&mut self, from: NodeId, start: u64, end: u64) {
        let cut = Arc_ { start, end };
        self.pending_in.retain(|e| !(covers(&cut, &e.arc) && e.source == from));
    }

    /// An arc's old primary announced a transfer into this node: open the
    /// dual-ownership window (see [`Msg::MigrateBegin`]).
    pub(crate) fn on_migrate_begin(&mut self, from: NodeId, start: u64, end: u64) {
        if from == self.id() {
            return;
        }
        self.register_inbound(Arc_ { start, end }, from);
    }

    /// Records an inbound arc, deduping on the arc bounds: locally-derived
    /// entries (from this node's own ring diff) and announced ones
    /// ([`Msg::MigrateBegin`]) both land here and may describe the same
    /// transfer.
    fn register_inbound(&mut self, arc: Arc_, source: NodeId) {
        if self.pending_in.iter().any(|e| e.arc.start == arc.start && e.arc.end == arc.end) {
            return;
        }
        self.pending_in.push(InboundArc { arc, source });
    }

    /// Builds (or re-bases) the migration plan after a ring change. Called
    /// from `refresh_ring` instead of the legacy sweep when the engine is
    /// enabled; `old_ring` is the ring that was just replaced.
    pub(crate) fn start_migration(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        old_ring: HashRing<NodeId>,
    ) {
        // A second membership change mid-flight re-plans from the original
        // base ring: arcs still owed from the previous transition stay in
        // the new diff instead of being silently skipped. A pending resume
        // cursor supplies the base the same way — the ring visible right
        // after a restart is the collapsed single-node one and must not
        // become the diff base, or the whole transfer restarts from zero.
        let had_prev = self.migration.is_some();
        let base_ring = match self.migration.take() {
            Some(prev) => {
                let dropped = self.migrate_acks.len();
                self.migrate_acks.clear();
                for _ in 0..dropped {
                    self.metrics.migrate_in_flight.dec_clamped();
                }
                prev.old_ring
            }
            None => match &self.resume_cursor {
                Some(resume) => {
                    let mut ring = HashRing::new();
                    for &(id, vn) in &resume.sig {
                        let _ = ring.add_node(id, format!("node{}", id.0), vn);
                    }
                    ring
                }
                None => old_ring,
            },
        };
        let base_sig: Vec<(NodeId, u32)> =
            base_ring.nodes().map(|n| (*n, base_ring.vnodes_of(n).unwrap_or(0))).collect();
        let me = self.id();
        let n = self.cfg.nwr.n;
        let mut arcs: Vec<PlanArc> = Vec::new();
        for (arc, old_p, new_p) in base_ring.diff_prefs(&self.ring, n) {
            let entering = new_p.contains(&me) && !old_p.contains(&me);
            if entering {
                if let Some(&source) = old_p.first() {
                    if source != me {
                        self.register_inbound(arc, source);
                    }
                }
                continue;
            }
            if !old_p.contains(&me) {
                continue;
            }
            let primary = old_p.first() == Some(&me);
            let keep = new_p.contains(&me);
            let targets: Vec<NodeId> = new_p
                .iter()
                .copied()
                .filter(|&t| t != me && (!keep || !old_p.contains(&t)))
                .collect();
            let entrants: Vec<NodeId> =
                new_p.iter().copied().filter(|t| !old_p.contains(t)).collect();
            if targets.is_empty() && keep {
                continue; // nothing to ship, nothing changes hands
            }
            arcs.push(PlanArc {
                arc,
                targets,
                entrants,
                keep,
                primary,
                end_idx: 0,
                started_at_us: 0,
                cutover: false,
            });
        }
        if arcs.is_empty() {
            // A re-based live plan that diffed to nothing is finished; a
            // pending resume stays parked (the post-restart ring has not
            // re-converged yet — the next refresh tries again). The
            // gossiped progress must go idle here too: the normal idle
            // transition lives on the tick completion path, which this
            // plan will never reach.
            if had_prev {
                self.clear_migrate_state();
                self.gossiper.set_app_state_if_changed(mystore_gossip::keys::MIGRATION, "idle");
            }
            return;
        }
        let work = self.build_work_list(&arcs);
        let mut end = 0usize;
        for (i, arc) in arcs.iter_mut().enumerate() {
            end += work.iter().filter(|(a, _)| *a == i).count();
            arc.end_idx = end;
        }
        // Announce each non-trivial transfer to its entrants. A joining
        // node's own diff base is the collapsed single-node ring, so it
        // cannot derive its inbound arcs locally — without this announce
        // its dual-ownership window never opens and a sparse-quorum read
        // could take its not-yet-authoritative miss at face value. Only
        // the arc's old primary announces, so each entrant tracks exactly
        // one source per arc.
        let mut start_idx = 0usize;
        for arc in &arcs {
            let has_work = arc.end_idx > start_idx;
            start_idx = arc.end_idx;
            if !arc.primary || !has_work {
                continue;
            }
            for &entrant in &arc.entrants {
                ctx.send(entrant, Msg::MigrateBegin { start: arc.arc.start, end: arc.arc.end });
            }
        }
        let mut plan = MigrationPlan {
            old_ring: base_ring,
            from_sig: base_sig,
            arcs,
            work,
            low_water: 0,
            cursor: 0,
            acked: BTreeSet::new(),
            needed: BTreeMap::new(),
            retry: BTreeSet::new(),
            persisted: usize::MAX, // force the first persist
        };
        // Crash resume: fast-forward past the work-list prefix the
        // pre-crash incarnation already had fully acknowledged. Sound when
        // the cluster re-converged on the same target ring (the common
        // case); if it moved on, anti-entropy covers any skipped copies.
        if let Some(resume) = self.resume_cursor.take() {
            if resume.arc >= 0 {
                let pos = (resume.arc as usize, resume.key);
                let skip = plan
                    .work
                    .partition_point(|item| (item.0, item.1.as_str()) <= (pos.0, pos.1.as_str()));
                plan.low_water = skip;
                plan.cursor = skip;
            }
        }
        self.migration = Some(plan);
        self.persist_migrate_cursor();
        if !self.migrate_armed {
            self.migrate_armed = true;
            ctx.set_timer(self.cfg.migrate_tick_us, tk(TK_MIGRATE, 0));
        }
    }

    /// One scan of the data collection → the sorted work list. Arc lookup
    /// is a wrap-aware scan over the (few) plan arcs per record.
    fn build_work_list(&self, arcs: &[PlanArc]) -> Vec<WorkItem> {
        let Ok(coll) = self.db.collection(&self.cfg.collection) else { return Vec::new() };
        let mut work: Vec<WorkItem> = Vec::new();
        for (_, docu) in coll.iter() {
            let Some(key) = docu.get_str("self-key") else { continue };
            let point = HashRing::<NodeId>::key_point(key.as_bytes());
            if let Some(i) = arcs.iter().position(|a| a.arc.contains(point)) {
                work.push((i, key.to_string()));
            }
        }
        work.sort_unstable();
        work
    }

    /// `TK_MIGRATE`: sweep expired acks, advance the acked low-water mark,
    /// cut over finished arcs, persist the cursor, then dispatch the next
    /// budgeted slice of the work list.
    pub(crate) fn migrate_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        self.migrate_armed = false;
        let Some(mut plan) = self.migration.take() else { return };
        let now = ctx.now().as_micros();
        // Acks that never arrived: requeue their items (idempotent LWW).
        let deadline = self.cfg.request_deadline_us;
        let expired: Vec<u64> = self
            .migrate_acks
            .iter()
            .filter(|(_, a)| now.saturating_sub(a.sent_at_us) >= deadline)
            .map(|(&req, _)| req)
            .collect();
        for req in expired {
            if let Some(ack) = self.migrate_acks.remove(&req) {
                self.metrics.migrate_in_flight.dec_clamped();
                if !plan.acked.contains(&ack.idx) && ack.idx >= plan.low_water {
                    // The per-target `needed` entry stays: targets that
                    // already acked are settled for good, and re-dispatch
                    // goes only to the ones still listed.
                    plan.retry.insert(ack.idx);
                }
            }
        }
        plan.advance_low_water();
        self.cutover_ready_arcs(ctx, &mut plan, now);
        self.dispatch_budgeted(ctx, &mut plan, now);
        if plan.done() {
            self.clear_migrate_state();
            ctx.record("migration_done", plan.work.len() as f64);
            self.gossiper.set_app_state_if_changed(mystore_gossip::keys::MIGRATION, "idle");
            return; // plan dropped; timer stays unarmed
        }
        if plan.persisted != plan.low_water {
            self.migration = Some(plan);
            self.persist_migrate_cursor();
        } else {
            self.migration = Some(plan);
        }
        self.migrate_armed = true;
        ctx.set_timer(self.cfg.migrate_tick_us, tk(TK_MIGRATE, 0));
    }

    /// Cuts over every arc whose work is fully acked, in arc order.
    fn cutover_ready_arcs(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        plan: &mut MigrationPlan,
        now: u64,
    ) {
        let mut prev_end = 0usize;
        for i in 0..plan.arcs.len() {
            let start_idx = prev_end;
            let Some(arc) = plan.arcs.get_mut(i) else { break };
            prev_end = arc.end_idx;
            if arc.cutover || plan.low_water < arc.end_idx {
                continue;
            }
            arc.cutover = true;
            for &entrant in &arc.entrants {
                ctx.send(entrant, Msg::MigrateCutover { start: arc.arc.start, end: arc.arc.end });
            }
            let (keep, end_idx, began) = (arc.keep, arc.end_idx, arc.started_at_us);
            if !keep {
                let keys: Vec<String> = plan
                    .work
                    .get(start_idx..end_idx)
                    .unwrap_or(&[])
                    .iter()
                    .map(|(_, k)| k.clone())
                    .collect();
                for key in keys {
                    if let Ok(Some(rec)) = self.db.get_record(&self.cfg.collection, &key) {
                        let _ = self.db.remove(&self.cfg.collection, rec.id);
                        self.stats.records_migrated_out += 1;
                    }
                }
            }
            self.metrics.migrate_arcs_cutover.inc();
            let began = if began > 0 { began } else { now };
            self.metrics.migrate_arc_duration_us.record(now.saturating_sub(began));
            ctx.record("migrate_arc_cutover", 1.0);
        }
    }

    /// Dispatches retries first, then the cursor, until a per-tick budget
    /// is exhausted. One item ships atomically to all its targets; the
    /// first item of a tick always ships even if it alone exceeds either
    /// budget (progress guarantee — a leaving node ships to the whole new
    /// replica set, so one item can carry more copies than a small record
    /// budget allows and must not stall the head of the work list).
    fn dispatch_budgeted(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        plan: &mut MigrationPlan,
        now: u64,
    ) {
        let rec_budget = if self.cfg.migrate_max_records_per_tick > 0 {
            self.cfg.migrate_max_records_per_tick as usize
        } else {
            usize::MAX
        };
        let byte_budget = if self.cfg.migrate_max_bytes_per_tick > 0 {
            self.cfg.migrate_max_bytes_per_tick as usize
        } else {
            usize::MAX
        };
        let mut recs_used = 0usize;
        let mut bytes_used = 0usize;
        let mut batches: BTreeMap<NodeId, Vec<BatchPut>> = BTreeMap::new();
        loop {
            let idx = match plan.retry.iter().next().copied() {
                Some(i) => i,
                None if plan.cursor < plan.work.len() => plan.cursor,
                None => break,
            };
            let Some((arc_idx, key)) = plan.work.get(idx).cloned() else {
                // Defensive: a stale retry index past the work list.
                self.settle_item(plan, idx);
                continue;
            };
            let record = match self.db.get_record(&self.cfg.collection, &key) {
                Ok(Some(r)) => StdArc::new(r),
                // Deleted since the scan (reaped tombstone): nothing to
                // ship, the item is settled.
                _ => {
                    self.settle_item(plan, idx);
                    continue;
                }
            };
            let targets = match plan.arcs.get(arc_idx) {
                Some(arc) if !arc.targets.is_empty() => arc.targets.clone(),
                _ => {
                    self.settle_item(plan, idx);
                    continue;
                }
            };
            // A retried item re-dispatches only to the targets that have
            // not acked yet (its `needed` entry); a fresh item owes every
            // target a copy.
            let targets: Vec<NodeId> = match plan.needed.get(&idx) {
                Some(owing) => targets.iter().copied().filter(|t| owing.contains(t)).collect(),
                None => targets,
            };
            if targets.is_empty() {
                self.settle_item(plan, idx);
                continue;
            }
            let copies = targets.len();
            let bytes = record.val.len() * copies;
            if recs_used > 0
                && (recs_used + copies > rec_budget || bytes_used + bytes > byte_budget)
            {
                break;
            }
            if let Some(arc) = plan.arcs.get_mut(arc_idx) {
                if arc.started_at_us == 0 {
                    arc.started_at_us = now;
                }
            }
            recs_used += copies;
            bytes_used += bytes;
            plan.needed.insert(idx, targets.iter().copied().collect());
            for &target in &targets {
                let req = self.fresh_req();
                self.migrate_acks.insert(req, MigAck { idx, target, sent_at_us: now });
                batches
                    .entry(target)
                    .or_default()
                    .push(BatchPut { req, record: StdArc::clone(&record) });
            }
            self.metrics.migrate_in_flight.add(copies as i64);
            self.metrics.migrate_records_sent.add(copies as u64);
            self.metrics.migrate_bytes_sent.add(bytes as u64);
            self.stats.rebalance_records_sent += copies as u64;
            if !plan.retry.remove(&idx) {
                plan.cursor = idx + 1;
            }
        }
        for (target, mut ops) in batches {
            if ops.len() == 1 {
                if let Some(op) = ops.pop() {
                    ctx.send(target, Msg::StoreReplica { req: op.req, record: op.record });
                }
            } else {
                ctx.send(target, Msg::StoreReplicaBatch { ops });
            }
        }
    }

    /// Marks an item acked without a wire exchange (record gone or no
    /// targets) and pops it from the dispatch front.
    fn settle_item(&self, plan: &mut MigrationPlan, idx: usize) {
        plan.acked.insert(idx);
        plan.needed.remove(&idx);
        if !plan.retry.remove(&idx) {
            plan.cursor = idx + 1;
        }
        plan.advance_low_water();
    }

    /// A `StoreAck` for a migration replica-write (routed here before the
    /// quorum driver by the req being in `migrate_acks`).
    pub(crate) fn on_migrate_ack(&mut self, req: u64, ok: bool) {
        let Some(ack) = self.migrate_acks.remove(&req) else { return };
        self.metrics.migrate_in_flight.dec_clamped();
        let Some(plan) = &mut self.migration else { return };
        if ack.idx < plan.low_water || plan.acked.contains(&ack.idx) {
            return; // late duplicate for an already-settled item
        }
        if ok {
            if let Some(owing) = plan.needed.get_mut(&ack.idx) {
                owing.remove(&ack.target);
                if owing.is_empty() {
                    plan.needed.remove(&ack.idx);
                    plan.retry.remove(&ack.idx);
                    plan.acked.insert(ack.idx);
                    plan.advance_low_water();
                }
            }
        } else {
            // The failed target stays in `needed`; the retry re-sends to
            // it (and any other target still owing) only — an ack from a
            // target that already succeeded must not settle the item on
            // another target's behalf.
            plan.retry.insert(ack.idx);
        }
    }

    // ---- persistence & resume -------------------------------------------

    /// Writes the acked low-water mark as an `(arc, key)` cursor (plus the
    /// base-ring signature) to the `migrate_state` collection.
    fn persist_migrate_cursor(&mut self) {
        let (arc, key, sig, low) = {
            let Some(plan) = &self.migration else { return };
            let (arc, key) = match plan.low_water.checked_sub(1).and_then(|i| plan.work.get(i)) {
                Some((a, k)) => (*a as i64, k.clone()),
                None => (-1, String::new()),
            };
            let sig = plan
                .from_sig
                .iter()
                .map(|(n, v)| format!("{}:{}", n.0, v))
                .collect::<Vec<_>>()
                .join(",");
            (arc, key, sig, plan.low_water)
        };
        self.clear_migrate_state();
        let _ = self.db.insert_doc(MIGRATE_STATE, doc! { "from_sig": sig, "arc": arc, "key": key });
        if let Some(plan) = &mut self.migration {
            plan.persisted = low;
        }
    }

    /// Drops the persisted cursor (plan finished or abandoned).
    pub(crate) fn clear_migrate_state(&mut self) {
        let ids: Vec<_> = self
            .db
            .collection(MIGRATE_STATE)
            .map(|c| c.iter().map(|(id, _)| *id).collect())
            .unwrap_or_default();
        for id in ids {
            let _ = self.db.remove(MIGRATE_STATE, id);
        }
    }

    /// Crash recovery: load the persisted cursor and park it as a pending
    /// resume. The plan itself is rebuilt by `start_migration` once gossip
    /// re-converges the ring (right after a restart the local ring is the
    /// collapsed single-node one and would produce an empty — or wrong —
    /// diff); at most the unacked in-flight window is re-sent.
    pub(crate) fn resume_migration(&mut self) {
        let Some((sig_str, arc, key)) = self.db.collection(MIGRATE_STATE).ok().and_then(|c| {
            c.iter().next().and_then(|(_, d)| {
                Some((
                    d.get_str("from_sig")?.to_string(),
                    d.get_i64("arc")?,
                    d.get_str("key")?.to_string(),
                ))
            })
        }) else {
            return;
        };
        if !self.cfg.migration_rate_limited() {
            self.clear_migrate_state();
            return;
        }
        let sig: Vec<(NodeId, u32)> = sig_str
            .split(',')
            .filter(|p| !p.is_empty())
            .filter_map(|part| {
                let (id, vn) = part.split_once(':')?;
                Some((NodeId(id.parse().ok()?), vn.parse().ok()?))
            })
            .collect();
        if sig.is_empty() {
            self.clear_migrate_state();
            return;
        }
        self.resume_cursor = Some(ResumeCursor { sig, arc, key });
    }
}
