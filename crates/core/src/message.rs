//! The cluster message type.
//!
//! One enum carries every message class in the system — REST traffic,
//! cache-tier operations, coordinator-level Get/Put, replica-level storage
//! ops, hinted handoff, migration transfers, and gossip — so a single
//! runtime (simulated or threaded) can host the whole deployment, including
//! the baseline systems which speak only the REST subset.
//!
//! The binary wire layout of this enum (tags, field order, widths — see
//! `server/src/codec/`) is frozen in `crates/lint/schema.lock` and checked
//! by `mystore-lint --check-schema`; tags are append-only, and adding one
//! requires re-blessing the lock (DESIGN.md §15).

use std::sync::Arc;

use mystore_engine::Record;
use mystore_gossip::GossipMsg;
use mystore_net::{NodeId, WireSized};

/// A shared, immutable payload. Request bodies are wrapped once where they
/// enter the system (client or REST tier) and then travel by reference count
/// through the frontend, cache tier, and coordinator — cloning a [`Body`] is
/// a pointer bump, never a byte copy. The payload is only materialized into
/// an owned `Vec<u8>` at the single point a [`Record`] is built.
pub type Body = Arc<Vec<u8>>;

/// HTTP-style method of a REST request (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Retrieve the addressed data.
    Get,
    /// Create (no key) or update (with key) an entry.
    Post,
    /// Logically delete the addressed data.
    Delete,
}

/// A REST request as the front end sees it.
#[derive(Debug, Clone)]
pub struct RestRequest {
    /// Client-chosen request id (echoed in the response).
    pub req: u64,
    /// Method.
    pub method: Method,
    /// Resource key; `None` on a key-less POST (create).
    pub key: Option<String>,
    /// Body payload (POST only).
    pub body: Body,
    /// Conditional-put predicate (`If-Match` style, POST with key only): the
    /// decimal LWW version the caller last observed, `"0"` for "key must be
    /// absent". Anything non-numeric is rejected with `400`.
    pub if_match: Option<String>,
    /// Authentication, when the deployment requires it:
    /// `(user, signature)`.
    pub auth: Option<(String, crate::auth::Signature)>,
}

impl RestRequest {
    /// The request URI used both for routing and signing.
    pub fn uri(&self) -> String {
        match &self.key {
            Some(k) => format!("/data/{k}"),
            None => "/data".to_string(),
        }
    }
}

/// HTTP-ish status codes used by the front end.
pub mod status {
    /// Success.
    pub const OK: u16 = 200;
    /// Created (POST without key).
    pub const CREATED: u16 = 201;
    /// Signature verification failed.
    pub const UNAUTHORIZED: u16 = 401;
    /// No such key.
    pub const NOT_FOUND: u16 = 404;
    /// Malformed request (e.g. DELETE without key).
    pub const BAD_REQUEST: u16 = 400;
    /// Conditional put failed: the version predicate did not match (the
    /// response body carries the actual current version).
    pub const CONFLICT: u16 = 409;
    /// Load shed: too many requests in flight.
    pub const BUSY: u16 = 503;
    /// Storage layer failed the operation.
    pub const STORAGE_ERROR: u16 = 500;
    /// The request deadline expired inside the cluster.
    pub const TIMEOUT: u16 = 504;
}

/// A REST response.
#[derive(Debug, Clone)]
pub struct RestResponse {
    /// Echoed request id.
    pub req: u64,
    /// Status code (see [`status`]).
    pub status: u16,
    /// Body (GET payload; empty otherwise).
    pub body: Body,
    /// On a key-less POST, the key the system assigned.
    pub assigned_key: Option<String>,
    /// True when served from the cache tier (diagnostics).
    pub from_cache: bool,
}

/// Failures surfaced by the storage module to its callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Fewer than `W` replicas acknowledged before the deadline.
    QuorumWriteFailed,
    /// Fewer than `R` replicas answered before the deadline.
    QuorumReadFailed,
    /// The coordinator had no ring (no known storage peers).
    NoRing,
    /// Conditional put: the version predicate did not match; carries the
    /// actual current version (0 = key absent) so the caller can re-read,
    /// or retry directly against the version it lost to.
    CasConflict(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::QuorumWriteFailed => write!(f, "write quorum not reached"),
            StoreError::QuorumReadFailed => write!(f, "read quorum not reached"),
            StoreError::NoRing => write!(f, "no storage ring available"),
            StoreError::CasConflict(actual) => {
                write!(f, "version precondition failed (current version {actual})")
            }
        }
    }
}

/// One write inside a [`Msg::StoreReplicaBatch`].
#[derive(Debug, Clone)]
pub struct BatchPut {
    /// Correlation id (coordinator-scoped), acked individually.
    pub req: u64,
    /// The record (already versioned by the coordinator).
    pub record: Arc<Record>,
}

/// Every message that can travel between cluster nodes.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- REST tier ---------------------------------------------------
    /// Client → front end (or baseline store).
    RestReq(RestRequest),
    /// Front end (or baseline store) → client.
    RestResp(RestResponse),

    // ---- authentication (Fig. 2: "get TOKEN from TOKEN DB") -------------
    /// Client → front end: request a single-use token for `user`.
    TokenReq {
        /// Correlation id.
        req: u64,
        /// The requesting user (must hold a registered secret).
        user: String,
    },
    /// Front end → client: the issued token, or `None` for unknown users.
    TokenResp {
        /// Correlation id.
        req: u64,
        /// The token to embed in the next signed request.
        token: Option<String>,
    },

    // ---- cache tier ----------------------------------------------------
    /// Front end → cache server: lookup.
    CacheGet {
        /// Correlation id.
        req: u64,
        /// Resource key.
        key: String,
    },
    /// Cache server → front end: lookup answer.
    CacheGetResp {
        /// Correlation id.
        req: u64,
        /// Hit payload, or `None` on miss.
        value: Option<Body>,
    },
    /// Front end → cache server: populate/refresh (fire-and-forget).
    CachePut {
        /// Resource key.
        key: String,
        /// Payload.
        value: Body,
    },
    /// Front end → cache server: invalidate (fire-and-forget).
    CacheDel {
        /// Resource key.
        key: String,
    },

    // ---- storage module, coordinator interface (§5.1 Get/Put) ---------
    /// Caller → coordinator: read `key`.
    Get {
        /// Correlation id.
        req: u64,
        /// Record key (`self-key`).
        key: String,
    },
    /// Coordinator → caller: read result (`Ok(None)` = not found/deleted).
    GetResp {
        /// Correlation id.
        req: u64,
        /// The payload, or why it failed.
        result: Result<Option<Body>, StoreError>,
    },
    /// Caller → coordinator: write `key` (or tombstone it).
    Put {
        /// Correlation id.
        req: u64,
        /// Record key (`self-key`).
        key: String,
        /// Payload (ignored when `delete`).
        value: Body,
        /// True for the DELETE path (logical delete, §3.3).
        delete: bool,
    },
    /// Coordinator → caller: write outcome.
    PutResp {
        /// Correlation id.
        req: u64,
        /// Success, or why it failed.
        result: Result<(), StoreError>,
    },
    /// Caller → coordinator: conditional write — apply only if the current
    /// LWW version of `key` equals `expected` (`0` = key must be absent).
    /// The coordinator runs a read round at `max(R, N-W+1)` (overlapping the
    /// write quorum) to evaluate the predicate, then a normal quorum write.
    Cas {
        /// Correlation id.
        req: u64,
        /// Record key (`self-key`).
        key: String,
        /// Payload to write when the predicate holds.
        value: Body,
        /// The version the caller last observed (`0` = absent).
        expected: u64,
    },
    /// Coordinator → caller: conditional-write outcome; `Ok` carries the
    /// newly written LWW version (the predicate for a follow-up CAS).
    CasResp {
        /// Correlation id.
        req: u64,
        /// The new version, or why it failed (including
        /// [`StoreError::CasConflict`] with the actual current version).
        result: Result<u64, StoreError>,
    },

    // ---- storage module, replica level ---------------------------------
    /// Coordinator → replica: store this record (LWW). The record is
    /// `Arc`-shared so fanning one write out to `N` replicas does not copy
    /// the payload `N` times.
    StoreReplica {
        /// Correlation id (coordinator-scoped).
        req: u64,
        /// The record (already versioned by the coordinator).
        record: Arc<Record>,
    },
    /// Replica → coordinator: store outcome (`ok = false` ⇒ disk error).
    StoreAck {
        /// Correlation id.
        req: u64,
        /// Whether the replica applied the write.
        ok: bool,
    },
    /// Coordinator → replica: store all these records (LWW), covered by one
    /// group-commit sync at the replica. Each op keeps its own correlation
    /// id so retry/backoff and hinted handoff still operate per op.
    StoreReplicaBatch {
        /// The coalesced writes, in coordinator send order.
        ops: Vec<BatchPut>,
    },
    /// Replica → coordinator: per-op outcomes for a
    /// [`Msg::StoreReplicaBatch`], in the same order.
    StoreAckBatch {
        /// `(req, ok)` per batched op.
        acks: Vec<(u64, bool)>,
    },
    /// Coordinator → replica: fetch your copy of `key`.
    FetchReplica {
        /// Correlation id.
        req: u64,
        /// Record key.
        key: String,
    },
    /// Replica → coordinator: your copy (or none), `ok = false` ⇒ error.
    FetchAck {
        /// Correlation id.
        req: u64,
        /// The replica's record, if it has one.
        found: Option<Record>,
        /// Whether the read itself succeeded.
        ok: bool,
    },

    // ---- hinted handoff (Fig. 8) ----------------------------------------
    /// Coordinator → temporary node C: hold this for `intended` (node B).
    StoreHint {
        /// Correlation id (acked via [`Msg::StoreAck`]).
        req: u64,
        /// The unreachable replica the hint is destined for.
        intended: NodeId,
        /// The record to write back when `intended` recovers.
        record: Arc<Record>,
    },

    // ---- migration / re-replication (§5.2.4) ----------------------------
    /// Bulk record transfer during rebalance; applied LWW, no ack.
    TransferRecords {
        /// The records changing owner.
        records: Vec<Arc<Record>>,
    },

    /// Migration source → arc entrant: every record of the ring arc
    /// `(start, end]` has been transferred and acknowledged — the entrant
    /// is now an authoritative owner and stops proxying reads for (and
    /// forwarding writes from) that arc to the old owner (DESIGN.md §16).
    MigrateCutover {
        /// Arc start point (exclusive).
        start: u64,
        /// Arc end point (inclusive).
        end: u64,
    },

    /// Migration source (the arc's old primary) → arc entrant: a transfer
    /// of the ring arc `(start, end]` is starting — until the matching
    /// [`Msg::MigrateCutover`], the entrant's misses in the arc are not
    /// authoritative and proxy back to the sender (DESIGN.md §16). This is
    /// what tells a *joining* node its inbound arcs: its own diff base is
    /// the collapsed single-node ring and cannot derive them locally.
    MigrateBegin {
        /// Arc start point (exclusive).
        start: u64,
        /// Arc end point (inclusive).
        end: u64,
    },

    // ---- anti-entropy (extension: §7 "problems on data's consistency") --
    /// Periodic replica synchronization: the sender's `(key, version)`
    /// digest for records it believes the receiver should also hold.
    SyncDigest {
        /// `(self-key, LWW version)` pairs.
        entries: Vec<(String, u64)>,
    },
    /// Reply to [`Msg::SyncDigest`]: full records the receiver had newer
    /// (or that the sender was missing entirely are pulled via the same
    /// exchange initiated from the other side).
    SyncRecords {
        /// The newer records.
        records: Vec<Record>,
    },
    /// Merkle anti-entropy opener (DESIGN.md §14): the sender's tree root
    /// over the key ranges the two nodes jointly replicate. Matching roots
    /// end the exchange in one round trip regardless of corpus size.
    SyncTreeRequest {
        /// Guard over the node pair, split count, and shared-arc list; a
        /// mismatch means the peers' ring views disagree and the exchange
        /// is abandoned until gossip reconverges.
        ring_hash: u64,
        /// Root hash of the sender's tree.
        root: u64,
    },
    /// One level of the Merkle walk: the sender's hashes at the given heap
    /// indices. The receiver compares each against its own tree, answers
    /// mismatched internal nodes with their children, and divergent leaves
    /// with a [`Msg::SyncLeafDigest`].
    SyncTreeLevel {
        /// Ring-view guard (see [`Msg::SyncTreeRequest`]).
        ring_hash: u64,
        /// `(heap index, subtree hash)` pairs.
        nodes: Vec<(u32, u64)>,
    },
    /// Per-key fallback once the walk bottoms out: an exhaustive digest of
    /// the divergent leaves only, tombstones included. Answered like a
    /// [`Msg::SyncDigest`] (push newer, counter-digest stale, pull
    /// missing), plus a push of keys the sender's leaves turned out to
    /// lack entirely.
    SyncLeafDigest {
        /// Ring-view guard (see [`Msg::SyncTreeRequest`]).
        ring_hash: u64,
        /// Heap indices of the leaves `entries` exhaustively covers.
        leaves: Vec<u32>,
        /// `(self-key, LWW version)` pairs, tombstones included.
        entries: Vec<(String, u64)>,
    },

    // ---- gossip ----------------------------------------------------------
    /// Gossip protocol traffic (§5.2.3).
    Gossip(GossipMsg),

    // ---- diagnostics (production runtime readiness) ----------------------
    /// Ask a storage node for its current ring membership view. Used by the
    /// production runtime's readiness probe and by harnesses polling for
    /// gossip convergence instead of sleeping a fixed interval.
    RingReq {
        /// Correlation id.
        req: u64,
    },
    /// Reply to [`Msg::RingReq`]: the nodes currently in the sender's ring,
    /// sorted by id.
    RingResp {
        /// Correlation id.
        req: u64,
        /// Ring members as seen by the responding node.
        members: Vec<NodeId>,
    },
}

impl Msg {
    /// True for operation-level messages — the granularity at which the
    /// paper's Table 2 fault probabilities apply. Experiment harnesses pass
    /// this to [`mystore_net::Sim::set_fault_filter`] so acks and gossip
    /// frames do not draw their own faults.
    pub fn is_client_op(&self) -> bool {
        matches!(self, Msg::Put { .. } | Msg::Get { .. } | Msg::Cas { .. })
    }

    /// True for replica-level storage operations — the per-replica reads
    /// and writes a user operation fans out into. The Fig. 16/17 harnesses
    /// inject Table 2 faults here: a lost replica write is exactly the
    /// short failure that hinted handoff (Fig. 8) exists to mask.
    pub fn is_replica_op(&self) -> bool {
        matches!(
            self,
            Msg::StoreReplica { .. }
                | Msg::StoreReplicaBatch { .. }
                | Msg::FetchReplica { .. }
                | Msg::StoreHint { .. }
        )
    }
}

impl WireSized for Msg {
    fn wire_size(&self) -> usize {
        const HDR: usize = 48; // framing + addressing overhead per message
        HDR + match self {
            Msg::RestReq(r) => {
                r.key.as_ref().map(String::len).unwrap_or(0)
                    + r.body.len()
                    + r.if_match.as_ref().map(String::len).unwrap_or(0)
                    + 64
            }
            Msg::RestResp(r) => r.body.len() + 32,
            Msg::TokenReq { user, .. } => user.len(),
            Msg::TokenResp { token, .. } => token.as_ref().map(String::len).unwrap_or(0),
            Msg::CacheGet { key, .. } => key.len(),
            Msg::CacheGetResp { value, .. } => value.as_ref().map(|v| v.len()).unwrap_or(0),
            Msg::CachePut { key, value } => key.len() + value.len(),
            Msg::CacheDel { key } => key.len(),
            Msg::Get { key, .. } => key.len(),
            Msg::GetResp { result, .. } => {
                result.as_ref().ok().and_then(|v| v.as_ref()).map(|v| v.len()).unwrap_or(0)
            }
            Msg::Put { key, value, .. } => key.len() + value.len(),
            Msg::PutResp { .. } => 8,
            Msg::Cas { key, value, .. } => key.len() + value.len() + 8,
            Msg::CasResp { .. } => 16,
            Msg::StoreReplica { record, .. } => record.to_document().encoded_size(),
            Msg::StoreAck { .. } => 8,
            Msg::StoreReplicaBatch { ops } => {
                ops.iter().map(|op| op.record.to_document().encoded_size() + 8).sum()
            }
            Msg::StoreAckBatch { acks } => acks.len() * 10 + 8,
            Msg::FetchReplica { key, .. } => key.len(),
            Msg::FetchAck { found, .. } => {
                found.as_ref().map(|r| r.to_document().encoded_size()).unwrap_or(8)
            }
            Msg::StoreHint { record, .. } => record.to_document().encoded_size() + 8,
            Msg::TransferRecords { records } => {
                records.iter().map(|r| r.to_document().encoded_size()).sum()
            }
            Msg::MigrateCutover { .. } => 16,
            Msg::MigrateBegin { .. } => 16,
            Msg::SyncDigest { entries } => entries.iter().map(|(k, _)| k.len() + 8).sum::<usize>(),
            Msg::SyncRecords { records } => {
                records.iter().map(|r| r.to_document().encoded_size()).sum()
            }
            Msg::SyncTreeRequest { .. } => 16,
            Msg::SyncTreeLevel { nodes, .. } => 8 + nodes.len() * 12,
            Msg::SyncLeafDigest { leaves, entries, .. } => {
                8 + leaves.len() * 4 + entries.iter().map(|(k, _)| k.len() + 8).sum::<usize>()
            }
            Msg::Gossip(g) => g.wire_size(),
            Msg::RingReq { .. } => 8,
            Msg::RingResp { members, .. } => 8 + members.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_bson::ObjectId;
    use mystore_engine::pack_version;

    #[test]
    fn uri_formats() {
        let with_key = RestRequest {
            req: 1,
            method: Method::Get,
            key: Some("Resistor5".into()),
            body: Body::default(),
            if_match: None,
            auth: None,
        };
        assert_eq!(with_key.uri(), "/data/Resistor5");
        let keyless = RestRequest {
            req: 2,
            method: Method::Post,
            key: None,
            body: Arc::new(vec![1]),
            if_match: None,
            auth: None,
        };
        assert_eq!(keyless.uri(), "/data");
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small =
            Msg::Put { req: 1, key: "k".into(), value: Arc::new(vec![0; 10]), delete: false };
        let large =
            Msg::Put { req: 1, key: "k".into(), value: Arc::new(vec![0; 100_000]), delete: false };
        assert!(large.wire_size() > small.wire_size() + 90_000);
        let rec = Arc::new(Record::new(
            ObjectId::from_parts(1, 1, 1),
            "k",
            vec![0; 5000],
            pack_version(1, 1),
        ));
        let m = Msg::StoreReplica { req: 1, record: rec };
        assert!(m.wire_size() > 5000);
    }

    #[test]
    fn batch_wire_size_sums_ops() {
        let rec = |i: u64| {
            Arc::new(Record::new(
                ObjectId::from_parts(1, 1, i as u32),
                format!("k{i}"),
                vec![0; 1000],
                pack_version(i, 1),
            ))
        };
        let batch = Msg::StoreReplicaBatch {
            ops: (0..4).map(|i| BatchPut { req: i, record: rec(i) }).collect(),
        };
        let single = Msg::StoreReplica { req: 0, record: rec(0) };
        assert!(batch.wire_size() > 4 * 1000);
        // One batch costs one header; four singles cost four.
        assert!(batch.wire_size() < 4 * single.wire_size());
        assert!(batch.is_replica_op());
        let acks = Msg::StoreAckBatch { acks: vec![(1, true), (2, false)] };
        assert!(!acks.is_replica_op());
        assert!(acks.wire_size() < single.wire_size());
    }

    #[test]
    fn store_error_displays() {
        assert!(StoreError::QuorumWriteFailed.to_string().contains("write"));
        assert!(StoreError::QuorumReadFailed.to_string().contains("read"));
        assert!(StoreError::NoRing.to_string().contains("ring"));
        assert!(StoreError::CasConflict(42).to_string().contains("42"));
    }

    #[test]
    fn cas_is_a_client_op_with_payload_sized_wire_cost() {
        let cas =
            Msg::Cas { req: 1, key: "k".into(), value: Arc::new(vec![0; 5_000]), expected: 7 };
        assert!(cas.is_client_op());
        assert!(!cas.is_replica_op());
        assert!(cas.wire_size() > 5_000);
        let resp = Msg::CasResp { req: 1, result: Err(StoreError::CasConflict(9)) };
        assert!(resp.wire_size() < 100);
    }

    #[test]
    fn body_clone_shares_the_allocation() {
        let body: Body = Arc::new(vec![0; 4096]);
        let copy = body.clone();
        assert!(Arc::ptr_eq(&body, &copy));
    }
}
