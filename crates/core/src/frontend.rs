//! The REST front end (paper §4, Fig. 1).
//!
//! Plays the role of nginx + spawn-fcgi + the Python logical processes: it
//! terminates REST requests (GET/POST/DELETE), authenticates URI signatures
//! when configured, consults the cache tier (hash-routed cache servers),
//! and forwards misses/writes to the storage module, distributing across
//! coordinators round-robin. The number of concurrent requests it can carry
//! is bounded like a process pool: beyond `max_inflight`, requests are shed
//! with `503` (which is what flattens the latency curve in Fig. 13).

use std::collections::BTreeMap;

use mystore_net::{Context, NodeId, Process, TimerToken};
use mystore_obs::{Counter, Gauge, Registry};
use mystore_ring::HashRing;

use crate::auth::TokenStore;
use crate::config::FrontendConfig;
use crate::message::{status, Body, Method, Msg, RestRequest, RestResponse, StoreError};

const TK_DEADLINE: u64 = 1;

fn tk_deadline(req: u64) -> TimerToken {
    (req << 3) | TK_DEADLINE
}

/// Replies to a request that was never admitted (no `Pending` entry to
/// route through [`Frontend::respond`]).
fn reply_now(ctx: &mut Context<'_, Msg>, client: NodeId, req: u64, status_code: u16, body: Body) {
    ctx.send(
        client,
        Msg::RestResp(RestResponse {
            req,
            status: status_code,
            body,
            assigned_key: None,
            from_cache: false,
        }),
    );
}

/// What a pending request is waiting on.
enum Phase {
    /// Waiting for the cache tier (GET only).
    CacheLookup,
    /// Waiting for the storage module.
    Store,
}

struct Pending {
    client: NodeId,
    client_req: u64,
    method: Method,
    key: String,
    /// The request payload, shared with every forward of this request (the
    /// front end never copies the bytes — see [`Body`]).
    body: Body,
    /// Parsed `If-Match` version predicate: `Some` routes the write as a
    /// CAS instead of a plain PUT.
    if_match: Option<u64>,
    assigned_key: Option<String>,
    phase: Phase,
    redispatches: u32,
    /// Coordinator the request was last forwarded to; a re-dispatch avoids
    /// picking it again (it is the one that went silent).
    last_node: Option<NodeId>,
    done: bool,
}

/// Front-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed with 503.
    pub shed: u64,
    /// Responses served from cache.
    pub cache_hits: u64,
    /// Requests rejected by signature verification.
    pub auth_failures: u64,
    /// Requests that timed out inside the cluster.
    pub timeouts: u64,
    /// Deadline-expired requests re-dispatched to another coordinator.
    pub redispatches: u64,
}

/// Observability handles for front-end admission and cache routing.
/// Resolved from [`FrontendConfig::metrics`].
#[derive(Debug, Clone, Default)]
pub struct FrontendMetrics {
    /// Requests admitted past the process-pool bound.
    pub admitted: Counter,
    /// Requests shed with `503 Busy`.
    pub shed: Counter,
    /// Responses served from the cache tier.
    pub cache_hits: Counter,
    /// Requests rejected by signature verification.
    pub auth_failures: Counter,
    /// Requests that timed out inside the cluster.
    pub timeouts: Counter,
    /// Deadline-expired requests re-dispatched to another coordinator.
    pub redispatches: Counter,
    /// Requests currently in flight at this front end.
    pub inflight: Gauge,
}

impl FrontendMetrics {
    /// Resolves the standard `frontend.*` metric names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        FrontendMetrics {
            admitted: registry.counter("frontend.admitted"),
            shed: registry.counter("frontend.shed"),
            cache_hits: registry.counter("frontend.cache_hits"),
            auth_failures: registry.counter("frontend.auth_failures"),
            timeouts: registry.counter("frontend.timeouts"),
            redispatches: registry.counter("frontend.redispatches"),
            inflight: registry.gauge("frontend.inflight"),
        }
    }
}

/// The front-end process.
pub struct Frontend {
    cfg: FrontendConfig,
    tokens: TokenStore,
    pending: BTreeMap<u64, Pending>,
    next_req: u64,
    rr: usize,
    stats: FrontendStats,
    metrics: FrontendMetrics,
}

impl Frontend {
    /// Creates a front end.
    pub fn new(cfg: FrontendConfig) -> Self {
        let metrics = FrontendMetrics::from_registry(&cfg.metrics);
        Frontend {
            cfg,
            tokens: TokenStore::new(),
            pending: BTreeMap::new(),
            next_req: 1,
            rr: 0,
            stats: FrontendStats::default(),
            metrics,
        }
    }

    /// Statistics counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Issues an auth token for `user` (test/deployment hook standing in
    /// for the paper's TOKEN DB web flow).
    pub fn issue_token(&mut self, user: &str) -> String {
        self.tokens.issue(user)
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }

    fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Round-robin coordinator choice (the nginx upstream behaviour). When
    /// `avoid` is set (a re-dispatch after a coordinator went silent) the
    /// walk skips that node unless it is the only one.
    fn next_storage(&mut self, avoid: Option<NodeId>) -> Option<NodeId> {
        if self.cfg.storage_nodes.is_empty() {
            return None;
        }
        for _ in 0..self.cfg.storage_nodes.len() {
            let slot = self.rr % self.cfg.storage_nodes.len();
            self.rr += 1;
            let Some(&node) = self.cfg.storage_nodes.get(slot) else { continue };
            if Some(node) != avoid {
                return Some(node);
            }
        }
        avoid
    }

    /// Hash-routed cache server for `key` (§4: "load balances are based on
    /// the hash of resources' keys").
    fn cache_for(&self, key: &str) -> Option<NodeId> {
        if self.cfg.cache_nodes.is_empty() {
            return None;
        }
        let h = HashRing::<NodeId>::key_point(key.as_bytes());
        self.cfg.cache_nodes.get((h % self.cfg.cache_nodes.len() as u64) as usize).copied()
    }

    fn respond(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        status_code: u16,
        body: Body,
        from_cache: bool,
    ) {
        let Some(p) = self.pending.get_mut(&req) else { return };
        if p.done {
            return;
        }
        p.done = true;
        ctx.record("fe_response", status_code as f64);
        ctx.send(
            p.client,
            Msg::RestResp(RestResponse {
                req: p.client_req,
                status: status_code,
                body,
                assigned_key: p.assigned_key.clone(),
                from_cache,
            }),
        );
        self.pending.remove(&req);
        self.metrics.inflight.set(self.pending.len() as i64);
    }

    fn on_rest(&mut self, ctx: &mut Context<'_, Msg>, client: NodeId, r: RestRequest) {
        // `GET /data/_stats`: the cluster-wide metrics snapshot. Keys
        // starting with `_` are reserved for diagnostics; the endpoint is
        // served before admission control (it must answer precisely when
        // the cluster is shedding) and without auth, like an internal
        // status page.
        if r.method == Method::Get && r.key.as_deref() == Some("_stats") {
            ctx.consume(self.cfg.cost.frontend_base_us);
            let body: Body = self.cfg.metrics.snapshot().to_pretty_string().into_bytes().into();
            reply_now(ctx, client, r.req, status::OK, body);
            return;
        }
        // Admission control (the spawn-fcgi process-pool bound). Shedding
        // happens before the request costs real CPU — like nginx returning
        // 503 from the listener without dispatching to a worker.
        if self.pending.len() >= self.cfg.max_inflight {
            ctx.consume(10);
            self.stats.shed += 1;
            self.metrics.shed.inc();
            ctx.record("fe_shed", 1.0);
            reply_now(ctx, client, r.req, status::BUSY, Body::default());
            return;
        }
        ctx.consume(self.cfg.cost.frontend_us(r.body.len()));
        // Authentication (Fig. 2) when configured.
        if let Some(auth_cfg) = &self.cfg.auth {
            let ok = match &r.auth {
                Some((user, sig)) => self.tokens.verify(auth_cfg, user, &r.uri(), sig),
                None => false,
            };
            if !ok {
                self.stats.auth_failures += 1;
                self.metrics.auth_failures.inc();
                reply_now(ctx, client, r.req, status::UNAUTHORIZED, Body::default());
                return;
            }
        }
        // Request-shape validation. Everything here answers `400` straight
        // from the front end: a malformed request must never reach a
        // coordinator (the REST-conformance tests assert no storage message
        // is emitted for any of these).
        // DELETE must address a key (§4).
        if r.method == Method::Delete && r.key.is_none() {
            reply_now(ctx, client, r.req, status::BAD_REQUEST, Body::default());
            return;
        }
        // Keys are bounded (they travel in every replica message).
        if r.key.as_ref().is_some_and(|k| k.len() > self.cfg.max_key_bytes) {
            reply_now(ctx, client, r.req, status::BAD_REQUEST, Body::default());
            return;
        }
        // `If-Match` must be a decimal version, and only means something on
        // a keyed POST (a CAS needs an existing key to condition on; `0`
        // with a key states "create only if absent").
        let if_match = match &r.if_match {
            None => None,
            Some(raw) => match raw.trim().parse::<u64>() {
                Ok(v) if r.method == Method::Post && r.key.is_some() => Some(v),
                _ => {
                    reply_now(ctx, client, r.req, status::BAD_REQUEST, Body::default());
                    return;
                }
            },
        };
        self.stats.admitted += 1;
        self.metrics.admitted.inc();
        let req = self.fresh_req();
        // POST without key creates a new entry: assign a key (the paper
        // returns the generated key to the user).
        let (key, assigned_key) = match (&r.key, r.method) {
            (Some(k), _) => (k.clone(), None),
            (None, Method::Post) => {
                let k = format!("obj-{}-{}", ctx.id().0, req);
                (k.clone(), Some(k))
            }
            (None, _) => {
                reply_now(ctx, client, r.req, status::BAD_REQUEST, Body::default());
                return;
            }
        };
        let mut pending = Pending {
            client,
            client_req: r.req,
            method: r.method,
            key: key.clone(),
            body: r.body,
            if_match,
            assigned_key,
            phase: Phase::Store,
            redispatches: 0,
            last_node: None,
            done: false,
        };
        ctx.set_timer(self.cfg.request_deadline_us, tk_deadline(req));
        match r.method {
            Method::Get => {
                // Cache first (§4): "GET operation locates unstructured data
                // with the key in cache or database".
                if let Some(cache) = self.cache_for(&key) {
                    pending.phase = Phase::CacheLookup;
                    self.pending.insert(req, pending);
                    ctx.send(cache, Msg::CacheGet { req, key });
                } else {
                    self.pending.insert(req, pending);
                    self.forward_get(ctx, req, key);
                }
            }
            Method::Post => {
                // The payload is an `Arc` — cloning shares it with the
                // pending entry, nothing is copied.
                let value = pending.body.clone();
                self.pending.insert(req, pending);
                match if_match {
                    Some(expected) => self.forward_cas(ctx, req, key, value, expected),
                    None => self.forward_put(ctx, req, key, value, false),
                }
            }
            Method::Delete => {
                // Invalidate the cache eagerly; the DB copy is tombstoned.
                if let Some(cache) = self.cache_for(&key) {
                    ctx.send(cache, Msg::CacheDel { key: key.clone() });
                }
                self.pending.insert(req, pending);
                self.forward_put(ctx, req, key, Body::default(), true);
            }
        }
        self.metrics.inflight.set(self.pending.len() as i64);
    }

    fn forward_get(&mut self, ctx: &mut Context<'_, Msg>, req: u64, key: String) {
        let avoid = self.pending.get(&req).and_then(|p| p.last_node);
        match self.next_storage(avoid) {
            Some(node) => {
                if let Some(p) = self.pending.get_mut(&req) {
                    p.last_node = Some(node);
                }
                ctx.send(node, Msg::Get { req, key });
            }
            None => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
        }
    }

    fn forward_put(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        key: String,
        value: Body,
        delete: bool,
    ) {
        let avoid = self.pending.get(&req).and_then(|p| p.last_node);
        match self.next_storage(avoid) {
            Some(node) => {
                if let Some(p) = self.pending.get_mut(&req) {
                    p.last_node = Some(node);
                }
                ctx.send(node, Msg::Put { req, key, value, delete });
            }
            None => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
        }
    }

    fn forward_cas(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: u64,
        key: String,
        value: Body,
        expected: u64,
    ) {
        let avoid = self.pending.get(&req).and_then(|p| p.last_node);
        match self.next_storage(avoid) {
            Some(node) => {
                if let Some(p) = self.pending.get_mut(&req) {
                    p.last_node = Some(node);
                }
                ctx.send(node, Msg::Cas { req, key, value, expected });
            }
            None => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
        }
    }
}

impl Process<Msg> for Frontend {
    fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::RestReq(r) => self.on_rest(ctx, from, r),
            Msg::TokenReq { req, user } => {
                // Fig. 2: the TOKEN DB issues a per-request token — but only
                // for users the deployment knows (i.e. with a secret).
                ctx.consume(self.cfg.cost.frontend_base_us / 4);
                let token = match &self.cfg.auth {
                    Some(auth) if auth.secrets.contains_key(&user) => {
                        Some(self.tokens.issue(&user))
                    }
                    _ => None,
                };
                ctx.send(from, Msg::TokenResp { req, token });
            }
            Msg::CacheGetResp { req, value } => {
                // Response handling costs a fraction of the request cost
                // (unmarshal + forward).
                ctx.consume(self.cfg.cost.frontend_base_us / 4);
                let Some(p) = self.pending.get_mut(&req) else { return };
                if !matches!(p.phase, Phase::CacheLookup) {
                    return;
                }
                match value {
                    Some(body) => {
                        self.stats.cache_hits += 1;
                        self.metrics.cache_hits.inc();
                        self.respond(ctx, req, status::OK, body, true);
                    }
                    None => {
                        // Miss: "it will switch to database and the returned
                        // value will be inserted to cache" (§4).
                        p.phase = Phase::Store;
                        let key = p.key.clone();
                        self.forward_get(ctx, req, key);
                    }
                }
            }
            Msg::GetResp { req, result } => {
                ctx.consume(self.cfg.cost.frontend_base_us / 4);
                match result {
                    Ok(Some(body)) => {
                        if let Some(p) = self.pending.get(&req) {
                            let key = p.key.clone();
                            if let Some(cache) = self.cache_for(&key) {
                                ctx.send(cache, Msg::CachePut { key, value: body.clone() });
                            }
                        }
                        self.respond(ctx, req, status::OK, body, false);
                    }
                    Ok(None) => self.respond(ctx, req, status::NOT_FOUND, Body::default(), false),
                    Err(_) => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
                }
            }
            Msg::PutResp { req, result } => {
                ctx.consume(self.cfg.cost.frontend_base_us / 4);
                match result {
                    Ok(()) => {
                        let (st, key_body) = match self.pending.get(&req) {
                            Some(p) if p.method == Method::Post => {
                                // Successful write refreshes the cache (§4:
                                // items inserted/updated recently are cached).
                                let key = p.key.clone();
                                let body = p.body.clone();
                                if let Some(cache) = self.cache_for(&key) {
                                    ctx.send(
                                        cache,
                                        Msg::CachePut { key: key.clone(), value: body },
                                    );
                                }
                                (
                                    if p.assigned_key.is_some() {
                                        status::CREATED
                                    } else {
                                        status::OK
                                    },
                                    Body::default(),
                                )
                            }
                            _ => (status::OK, Body::default()),
                        };
                        self.respond(ctx, req, st, key_body, false);
                    }
                    Err(_) => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
                }
            }
            Msg::CasResp { req, result } => {
                ctx.consume(self.cfg.cost.frontend_base_us / 4);
                match result {
                    Ok(new_version) => {
                        // Same cache refresh as a plain write, and the new
                        // version goes back as the body — it is the caller's
                        // `If-Match` for the next conditional write.
                        if let Some(p) = self.pending.get(&req) {
                            let key = p.key.clone();
                            let body = p.body.clone();
                            if let Some(cache) = self.cache_for(&key) {
                                ctx.send(cache, Msg::CachePut { key, value: body });
                            }
                        }
                        let body: Body = new_version.to_string().into_bytes().into();
                        self.respond(ctx, req, status::OK, body, false);
                    }
                    Err(StoreError::CasConflict(actual)) => {
                        // `409`: the predicate lost; the body carries the
                        // version actually present so the caller can re-read
                        // or retry against it.
                        let body: Body = actual.to_string().into_bytes().into();
                        self.respond(ctx, req, status::CONFLICT, body, false);
                    }
                    Err(_) => self.respond(ctx, req, status::STORAGE_ERROR, Body::default(), false),
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        if token & 0b111 == TK_DEADLINE {
            let req = token >> 3;
            // The coordinator (or cache server) this request was routed to
            // may be crashed or partitioned while the static upstream list
            // still names it: re-dispatch to the next round-robin
            // coordinator before surfacing a timeout. A late duplicate
            // completion is ignored by the `done` guard, and duplicate
            // writes converge under last-write-wins.
            let redo = match self.pending.get_mut(&req) {
                None => return,
                Some(p) if p.redispatches < self.cfg.redispatch_max => {
                    p.redispatches += 1;
                    p.phase = Phase::Store;
                    Some((p.method, p.key.clone(), p.body.clone(), p.if_match))
                }
                Some(_) => None,
            };
            match redo {
                Some((method, key, body, if_match)) => {
                    self.stats.redispatches += 1;
                    self.metrics.redispatches.inc();
                    ctx.record("fe_redispatch", 1.0);
                    match (method, if_match) {
                        (Method::Get, _) => self.forward_get(ctx, req, key),
                        // A re-dispatched CAS keeps its predicate: if the
                        // silent coordinator's write actually landed, the
                        // retry surfaces a 409 instead of double-applying.
                        (Method::Post, Some(expected)) => {
                            self.forward_cas(ctx, req, key, body, expected)
                        }
                        (Method::Post, None) => self.forward_put(ctx, req, key, body, false),
                        (Method::Delete, _) => {
                            self.forward_put(ctx, req, key, Body::default(), true)
                        }
                    }
                    ctx.set_timer(self.cfg.request_deadline_us, tk_deadline(req));
                }
                None => {
                    self.stats.timeouts += 1;
                    self.metrics.timeouts.inc();
                    ctx.record("fe_timeout", 1.0);
                    self.respond(ctx, req, status::TIMEOUT, Body::default(), false);
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        // Every admitted request is in `pending` until its response is sent
        // (or its deadline fires); a graceful drain waits them out.
        self.pending.is_empty()
    }
}
