//! A cache server process (paper §4's "independent memory cache system
//! consisting of several cache servers").

use mystore_cache::{CacheStats, CacheTierMetrics, LruCache};
use mystore_net::{Context, NodeId, Process, TimerToken};
use mystore_obs::Registry;

use crate::config::CostModel;
use crate::message::Msg;

/// One cache server: an LRU over its partition of the key space (the front
/// end routes keys to servers by hash, so each server only ever sees its
/// own partition).
pub struct CacheNode {
    lru: LruCache,
    cost: CostModel,
    metrics: CacheTierMetrics,
}

impl CacheNode {
    /// Creates a cache server with `capacity_bytes` of memory (the paper
    /// gives each cache server 1 GB).
    pub fn new(capacity_bytes: usize, cost: CostModel) -> Self {
        CacheNode { lru: LruCache::new(capacity_bytes), cost, metrics: CacheTierMetrics::default() }
    }

    /// As [`CacheNode::new`], publishing `cache.*` metrics into `registry`.
    pub fn with_metrics(capacity_bytes: usize, cost: CostModel, registry: &Registry) -> Self {
        let mut node = CacheNode::new(capacity_bytes, cost);
        node.metrics = CacheTierMetrics::from_registry(registry);
        node
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

impl Process<Msg> for CacheNode {
    fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::CacheGet { req, key } => {
                // A hit shares the cached allocation with the response — the
                // payload is never copied on the cache path.
                let value = self.lru.get(&key);
                ctx.consume(self.cost.cache_us(value.as_ref().map(|v| v.len()).unwrap_or(0)));
                if value.is_some() {
                    self.metrics.hits.inc();
                } else {
                    self.metrics.misses.inc();
                }
                ctx.record(if value.is_some() { "cache_hit" } else { "cache_miss" }, 1.0);
                ctx.send(from, Msg::CacheGetResp { req, value });
            }
            Msg::CachePut { key, value } => {
                ctx.consume(self.cost.cache_us(value.len()));
                self.metrics.inserts.inc();
                self.lru.put(&key, value);
            }
            Msg::CacheDel { key } => {
                ctx.consume(self.cost.cache_us(0));
                self.metrics.invalidations.inc();
                self.lru.remove(&key);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _token: TimerToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_net::{NetConfig, NodeConfig, Sim, SimConfig, SimTime};

    #[test]
    fn cache_node_serves_hits_and_misses() {
        let mut sim: Sim<Msg> =
            Sim::new(SimConfig { net: NetConfig::instant(), faults: Default::default(), seed: 1 });
        let cache =
            sim.add_node(CacheNode::new(1 << 20, CostModel::default()), NodeConfig::default());
        sim.start();
        sim.inject(
            SimTime(1),
            cache,
            Msg::CachePut { key: "k".into(), value: std::sync::Arc::new(vec![7; 10]) },
        );
        sim.inject(SimTime(2), cache, Msg::CacheGet { req: 1, key: "k".into() });
        sim.inject(SimTime(3), cache, Msg::CacheGet { req: 2, key: "missing".into() });
        sim.inject(SimTime(4), cache, Msg::CacheDel { key: "k".into() });
        sim.inject(SimTime(5), cache, Msg::CacheGet { req: 3, key: "k".into() });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.trace().count("cache_hit"), 1);
        assert_eq!(sim.trace().count("cache_miss"), 2);
        let node = sim.process::<CacheNode>(cache).unwrap();
        assert!(node.is_empty());
    }
}
