//! Chunked storage of large values — the paper's future-work item on "the
//! segmentation, storage and schedule of large video files" (§7),
//! implemented as an extension.
//!
//! A value larger than the chunk size is split into fixed-size chunks,
//! each stored as an ordinary record under a derived key
//! (`<key>#chunk<i>`), plus a manifest record under the original key that
//! lists the chunk count, total length, and an MD5 checksum. Reassembly
//! validates the checksum. Because every chunk is an ordinary record, the
//! NWR/hashing machinery spreads a large video across the cluster and
//! replicates each piece independently — which is exactly the point of the
//! future-work proposal.

use mystore_ring::md5::{md5, to_hex};

/// Default chunk size (256 KB — comfortably under the multi-MB files of
/// §6.2 so large videos split into several records).
pub const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Manifest prefix distinguishing manifests from plain values.
const MANIFEST_MAGIC: &[u8] = b"MYSTORE-CHUNKS/1\n";

/// A value prepared for chunked storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// The manifest record body to store under the original key.
    pub manifest: Vec<u8>,
    /// `(derived key, chunk body)` pairs.
    pub chunks: Vec<(String, Vec<u8>)>,
}

/// Errors from chunk reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// The manifest was not produced by [`plan_chunks`].
    BadManifest,
    /// A chunk listed in the manifest was missing from the provided set.
    MissingChunk(usize),
    /// The reassembled bytes failed the checksum.
    ChecksumMismatch,
    /// Total length disagreed with the manifest.
    LengthMismatch {
        /// Length the manifest promised.
        expected: usize,
        /// Length actually reassembled.
        actual: usize,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::BadManifest => write!(f, "not a chunk manifest"),
            ChunkError::MissingChunk(i) => write!(f, "chunk {i} missing"),
            ChunkError::ChecksumMismatch => write!(f, "chunk checksum mismatch"),
            ChunkError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: manifest {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// True if a stored body is a chunk manifest.
pub fn is_manifest(body: &[u8]) -> bool {
    body.starts_with(MANIFEST_MAGIC)
}

/// The derived key of chunk `i` of `key`.
pub fn chunk_key(key: &str, i: usize) -> String {
    format!("{key}#chunk{i}")
}

/// Splits `value` into a manifest + chunk records. Values at or under
/// `chunk_bytes` need no chunking; the caller should store them directly
/// (this function will still happily make a 1-chunk plan).
pub fn plan_chunks(key: &str, value: &[u8], chunk_bytes: usize) -> ChunkPlan {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let chunks: Vec<(String, Vec<u8>)> = value
        .chunks(chunk_bytes)
        .enumerate()
        .map(|(i, c)| (chunk_key(key, i), c.to_vec()))
        .collect();
    let checksum = to_hex(&md5(value));
    let mut manifest = Vec::with_capacity(MANIFEST_MAGIC.len() + 64);
    manifest.extend_from_slice(MANIFEST_MAGIC);
    manifest.extend_from_slice(
        format!("count={}\nlen={}\nmd5={}\n", chunks.len(), value.len(), checksum).as_bytes(),
    );
    ChunkPlan { manifest, chunks }
}

/// Parses a manifest body into `(chunk count, total length, md5 hex)`.
pub fn parse_manifest(body: &[u8]) -> Result<(usize, usize, String), ChunkError> {
    if !is_manifest(body) {
        return Err(ChunkError::BadManifest);
    }
    let text =
        std::str::from_utf8(&body[MANIFEST_MAGIC.len()..]).map_err(|_| ChunkError::BadManifest)?;
    let mut count = None;
    let mut len = None;
    let mut sum = None;
    for line in text.lines() {
        match line.split_once('=') {
            Some(("count", v)) => count = v.parse().ok(),
            Some(("len", v)) => len = v.parse().ok(),
            Some(("md5", v)) => sum = Some(v.to_string()),
            _ => {}
        }
    }
    match (count, len, sum) {
        (Some(c), Some(l), Some(s)) => Ok((c, l, s)),
        _ => Err(ChunkError::BadManifest),
    }
}

/// Reassembles a value from its manifest and a fetcher for chunk bodies
/// (`fetch(i)` returns chunk `i`'s bytes if available).
pub fn reassemble(
    manifest: &[u8],
    mut fetch: impl FnMut(usize) -> Option<Vec<u8>>,
) -> Result<Vec<u8>, ChunkError> {
    let (count, len, sum) = parse_manifest(manifest)?;
    let mut out = Vec::with_capacity(len);
    for i in 0..count {
        let chunk = fetch(i).ok_or(ChunkError::MissingChunk(i))?;
        out.extend_from_slice(&chunk);
    }
    if out.len() != len {
        return Err(ChunkError::LengthMismatch { expected: len, actual: out.len() });
    }
    if to_hex(&md5(&out)) != sum {
        return Err(ChunkError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn plan_and_reassemble_roundtrip() {
        let value = video(1_000_000);
        let plan = plan_chunks("lecture.mp4", &value, DEFAULT_CHUNK_BYTES);
        assert_eq!(plan.chunks.len(), 4); // 1 MB / 256 KB
        assert!(is_manifest(&plan.manifest));
        let rebuilt =
            reassemble(&plan.manifest, |i| plan.chunks.get(i).map(|(_, c)| c.clone())).unwrap();
        assert_eq!(rebuilt, value);
    }

    #[test]
    fn chunk_keys_are_derived() {
        let plan = plan_chunks("k", &video(100), 30);
        let keys: Vec<&str> = plan.chunks.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k#chunk0", "k#chunk1", "k#chunk2", "k#chunk3"]);
    }

    #[test]
    fn empty_value_is_zero_chunks() {
        let plan = plan_chunks("k", &[], 100);
        assert!(plan.chunks.is_empty());
        let rebuilt = reassemble(&plan.manifest, |_| None).unwrap();
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn missing_chunk_detected() {
        let value = video(100);
        let plan = plan_chunks("k", &value, 30);
        let err = reassemble(&plan.manifest, |i| {
            if i == 2 {
                None
            } else {
                plan.chunks.get(i).map(|(_, c)| c.clone())
            }
        })
        .unwrap_err();
        assert_eq!(err, ChunkError::MissingChunk(2));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let value = video(100);
        let plan = plan_chunks("k", &value, 30);
        let err = reassemble(&plan.manifest, |i| {
            let mut c = plan.chunks[i].1.clone();
            if i == 1 {
                c[0] ^= 0xFF;
            }
            Some(c)
        })
        .unwrap_err();
        assert_eq!(err, ChunkError::ChecksumMismatch);
    }

    #[test]
    fn wrong_length_detected() {
        let value = video(100);
        let plan = plan_chunks("k", &value, 30);
        let err = reassemble(&plan.manifest, |i| {
            let mut c = plan.chunks[i].1.clone();
            if i == 0 {
                c.push(0);
            }
            Some(c)
        })
        .unwrap_err();
        assert!(matches!(err, ChunkError::LengthMismatch { .. }));
    }

    #[test]
    fn non_manifest_rejected() {
        assert_eq!(parse_manifest(b"just a value").unwrap_err(), ChunkError::BadManifest);
        assert!(!is_manifest(b"ordinary payload"));
        let mut bogus = MANIFEST_MAGIC.to_vec();
        bogus.extend_from_slice(b"count=zz\n");
        assert_eq!(parse_manifest(&bogus).unwrap_err(), ChunkError::BadManifest);
    }
}
