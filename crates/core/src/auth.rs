//! URI digital signatures (paper §4, Fig. 2).
//!
//! RESTful interfaces are stateless, so MyStore authenticates each request
//! with a URI-based signature: the client holds a per-user *secret key* and
//! fetches a per-request *token*; the signature is the MD5 digest of
//! `token + request URI + secret key`; the authorized URI carries the
//! token and the signature, and the server recomputes the digest with the
//! same inputs.

use std::collections::BTreeMap;

use mystore_ring::md5::{md5, to_hex};

/// A signed request: the pieces appended to the request URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// The per-request token.
    pub token: String,
    /// Lowercase-hex MD5 digest.
    pub digest: String,
}

/// Computes the signature digest for (`token`, `uri`, `secret`).
pub fn sign(token: &str, uri: &str, secret: &str) -> String {
    let mut buf = Vec::with_capacity(token.len() + uri.len() + secret.len());
    buf.extend_from_slice(token.as_bytes());
    buf.extend_from_slice(uri.as_bytes());
    buf.extend_from_slice(secret.as_bytes());
    to_hex(&md5(&buf))
}

/// Builds a full [`Signature`] for a request.
pub fn sign_request(token: &str, uri: &str, secret: &str) -> Signature {
    Signature { token: token.to_string(), digest: sign(token, uri, secret) }
}

/// Server-side verification config: user secrets plus the token database.
#[derive(Debug, Clone, Default)]
pub struct AuthConfig {
    /// `user → secret key` (the paper's web-interface-issued secrets).
    pub secrets: BTreeMap<String, String>,
}

impl AuthConfig {
    /// Registers a user secret.
    pub fn with_user(mut self, user: impl Into<String>, secret: impl Into<String>) -> Self {
        self.secrets.insert(user.into(), secret.into());
        self
    }
}

/// The TOKEN DB (Fig. 2): issues single-use tokens and validates them.
#[derive(Debug, Default)]
pub struct TokenStore {
    next: u64,
    /// token → user it was issued to.
    outstanding: BTreeMap<String, String>,
}

impl TokenStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TokenStore::default()
    }

    /// Issues a fresh token for `user`.
    pub fn issue(&mut self, user: &str) -> String {
        self.next += 1;
        let token = format!("tok-{}-{}", user, self.next);
        self.outstanding.insert(token.clone(), user.to_string());
        token
    }

    /// Number of unredeemed tokens.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Verifies a signed request for `user` against `uri`, consuming the
    /// token on success ("a string to identify a single request").
    pub fn verify(
        &mut self,
        config: &AuthConfig,
        user: &str,
        uri: &str,
        signature: &Signature,
    ) -> bool {
        let Some(secret) = config.secrets.get(user) else { return false };
        match self.outstanding.get(&signature.token) {
            Some(owner) if owner == user => {}
            _ => return false,
        }
        if sign(&signature.token, uri, secret) != signature.digest {
            return false;
        }
        self.outstanding.remove(&signature.token);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AuthConfig, TokenStore) {
        (AuthConfig::default().with_user("alice", "s3cret"), TokenStore::new())
    }

    #[test]
    fn valid_signature_verifies_once() {
        let (cfg, mut tokens) = setup();
        let token = tokens.issue("alice");
        let sig = sign_request(&token, "/data/Resistor5", "s3cret");
        assert!(tokens.verify(&cfg, "alice", "/data/Resistor5", &sig));
        // Token consumed: replaying the same request fails.
        assert!(!tokens.verify(&cfg, "alice", "/data/Resistor5", &sig));
        assert_eq!(tokens.outstanding(), 0);
    }

    #[test]
    fn wrong_secret_or_uri_fails() {
        let (cfg, mut tokens) = setup();
        let token = tokens.issue("alice");
        let bad_secret = sign_request(&token, "/data/x", "wrong");
        assert!(!tokens.verify(&cfg, "alice", "/data/x", &bad_secret));
        let token2 = tokens.issue("alice");
        let sig = sign_request(&token2, "/data/x", "s3cret");
        assert!(!tokens.verify(&cfg, "alice", "/data/OTHER", &sig));
    }

    #[test]
    fn unknown_user_or_foreign_token_fails() {
        let (cfg, mut tokens) = setup();
        let token = tokens.issue("alice");
        let sig = sign_request(&token, "/u", "s3cret");
        assert!(!tokens.verify(&cfg, "mallory", "/u", &sig));
        // A token issued to alice cannot be redeemed by bob even with bob's
        // own secret.
        let cfg2 = cfg.clone().with_user("bob", "bobsecret");
        let sig_bob = sign_request(&token, "/u", "bobsecret");
        assert!(!tokens.verify(&cfg2, "bob", "/u", &sig_bob));
    }

    #[test]
    fn fabricated_token_fails() {
        let (cfg, mut tokens) = setup();
        let sig = sign_request("tok-alice-999", "/u", "s3cret");
        assert!(!tokens.verify(&cfg, "alice", "/u", &sig));
    }

    #[test]
    fn signature_is_deterministic_md5() {
        // Pin the construction: md5(token || uri || secret).
        let digest = sign("t", "/u", "s");
        let manual = to_hex(&md5(b"t/us"));
        assert_eq!(digest, manual);
    }
}
