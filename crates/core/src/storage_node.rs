//! The MyStore storage node (paper §5).
//!
//! One process per database node, combining:
//!
//! * the **local store** — a [`Db`] holding the `data` collection (indexed
//!   by `self-key`) and the `hints` collection,
//! * the **gossiper** — §5.2.3 state transfer and failure detection,
//! * the **ring view** — rebuilt from gossiped membership (endpoints
//!   publish their virtual-node counts),
//! * the **coordinator** — every node can coordinate any key (the paper
//!   notes "clients can connect to any node in the system to get/put
//!   data"): quorum writes/reads per §5.2.2, hinted handoff per §5.2.4
//!   (Fig. 8), read repair ("replications are supplemented to achieve N"),
//! * **rebalance** — migration on node addition and replica rebuilding on
//!   long failure (Fig. 9).
//!
//! The node is a sans-io [`Process`]: all I/O and timing is delegated to
//! the runtime, so identical logic runs in the deterministic simulator and
//! in the threaded runtime.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mystore_bson::{doc, ObjectId};
use mystore_engine::{pack_version, Db, GroupCommitConfig, Record, WalMetrics};
use mystore_gossip::{keys as gossip_keys, GossipMetrics, Gossiper, MembershipEvent};
use mystore_net::{Context, NodeId, OpFault, Process, TimerToken};
use mystore_obs::{Counter, Gauge, Histogram, Registry};
use mystore_ring::HashRing;

use crate::config::StorageConfig;
use crate::message::{BatchPut, Msg, StoreError};

// Timer-token layout: low 4 bits select the kind, the rest carry a request id.
const TK_KIND_MASK: u64 = 0b1111;
const TK_GOSSIP: u64 = 1;
const TK_HINT_REPLAY: u64 = 2;
const TK_PUT_RETRY: u64 = 3;
const TK_PUT_HARD: u64 = 4;
const TK_GET_HARD: u64 = 5;
const TK_REAP: u64 = 6;
const TK_ANTI_ENTROPY: u64 = 7;
const TK_GET_RETRY: u64 = 8;
const TK_WAL_FLUSH: u64 = 9;
const TK_COALESCE: u64 = 10;

fn tk(kind: u64, req: u64) -> TimerToken {
    (req << 4) | kind
}

fn tk_split(token: TimerToken) -> (u64, u64) {
    (token & TK_KIND_MASK, token >> 4)
}

/// Collection holding hinted-handoff records.
const HINTS: &str = "hints";

/// Operation counters, exposed for tests and experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Writes this node coordinated successfully.
    pub puts_ok: u64,
    /// Writes this node coordinated that failed quorum.
    pub puts_failed: u64,
    /// Reads this node coordinated successfully.
    pub gets_ok: u64,
    /// Reads this node coordinated that failed quorum.
    pub gets_failed: u64,
    /// Hints this node issued as a coordinator (short-failure diversions).
    pub handoffs_sent: u64,
    /// Hints this node held and later wrote back to the intended replica.
    pub hints_replayed: u64,
    /// Records shipped away during rebalance.
    pub records_migrated_out: u64,
    /// Read repairs / replica supplements pushed.
    pub read_repairs: u64,
    /// Records pushed back to this node by anti-entropy exchanges.
    pub anti_entropy_received: u64,
    /// Replica-level store operations applied locally.
    pub replica_puts: u64,
    /// Replica-level fetches served locally.
    pub replica_gets: u64,
}

struct PendingPut {
    caller: NodeId,
    caller_req: u64,
    record: Arc<Record>,
    acks: usize,
    /// Replicas that have not acknowledged yet.
    outstanding: Vec<NodeId>,
    /// Remote nodes whose ack already counted — retries and chaotic links
    /// can deliver the same `StoreAck` more than once, and a duplicate must
    /// not double-count towards `W`.
    acked: Vec<NodeId>,
    /// Fallback nodes already hinted (never reused).
    fallbacks_used: Vec<NodeId>,
    /// Retry rounds already spent on stragglers.
    retry_round: u32,
    replied: bool,
    /// Coordinator clock when the request arrived (for latency histograms).
    started_us: u64,
}

struct PendingGet {
    caller: NodeId,
    caller_req: u64,
    key: String,
    prefs: Vec<NodeId>,
    /// (replica, its record if any) for successful replies.
    replies: Vec<(NodeId, Option<Record>)>,
    /// Retry rounds already spent on silent replicas.
    retry_round: u32,
    replied: bool,
    /// Coordinator clock when the request arrived (for latency histograms).
    started_us: u64,
}

/// A hint replay awaiting its `StoreAck`: which hint document it is for and
/// when it was sent, so stale entries can be swept instead of leaking.
struct HintInFlight {
    id: ObjectId,
    sent_at_us: u64,
}

/// Observability handles for the coordinator and hinted-handoff hot paths.
/// Resolved once per node from [`StorageConfig::metrics`]; all nodes sharing
/// a registry aggregate into the same cluster-wide series.
#[derive(Debug, Clone, Default)]
pub struct StorageMetrics {
    /// Quorum writes this node began coordinating.
    pub quorum_write_started: Counter,
    /// Quorum writes acknowledged to the caller (reached `W`).
    pub quorum_write_ok: Counter,
    /// Quorum writes that failed the hard deadline.
    pub quorum_write_failed: Counter,
    /// Coordinator-side write latency, arrival → `W`-ack reply (µs).
    pub quorum_write_latency_us: Histogram,
    /// Quorum reads this node began coordinating.
    pub quorum_read_started: Counter,
    /// Quorum reads answered to the caller (reached `R`).
    pub quorum_read_ok: Counter,
    /// Quorum reads that failed the hard deadline.
    pub quorum_read_failed: Counter,
    /// Coordinator-side read latency, arrival → `R`-reply (µs).
    pub quorum_read_latency_us: Histogram,
    /// Winner records pushed to stale or missing replicas after a read.
    pub read_repair_pushes: Counter,
    /// Hints accepted for safekeeping (either for a peer or self-held).
    pub hints_stored: Counter,
    /// Hints written back to their intended replica and discharged.
    pub hints_replayed: Counter,
    /// Writes diverted to a fallback node on replica soft-timeout.
    pub handoffs: Counter,
    /// Hints currently parked in this node's `hints` collection.
    pub hint_queue_depth: Gauge,
    /// `StoreReplica` re-sends to write stragglers.
    pub put_retries: Counter,
    /// `FetchReplica` re-sends to read stragglers.
    pub get_retries: Counter,
    /// Requests whose straggler retries all went unanswered (writes then
    /// divert to hinted handoff).
    pub retries_exhausted: Counter,
    /// Backoff delays armed between retry rounds (µs).
    pub retry_backoff_us: Histogram,
    /// Hint replays swept because no ack arrived within the request
    /// deadline (the hint stays parked and is offered again).
    pub hint_replay_expired: Counter,
    /// Storage-node process restarts (WAL replays).
    pub restarts: Counter,
    /// Batched replica messages sent by the coalescing coordinator.
    pub batch_msgs: Counter,
    /// Replica ops carried inside those batched messages.
    pub batch_ops: Counter,
    /// Replica acks held back until the covering WAL sync completed.
    pub acks_deferred: Counter,
    /// Restarts whose WAL replay failed; the node came back empty and
    /// relies on read repair / anti-entropy to re-fill.
    pub recover_failures: Counter,
}

impl StorageMetrics {
    /// Resolves the standard `quorum.*` / `read_repair.*` / `hint.*` names.
    pub fn from_registry(registry: &Registry) -> Self {
        StorageMetrics {
            quorum_write_started: registry.counter("quorum.write.started"),
            quorum_write_ok: registry.counter("quorum.write.ok"),
            quorum_write_failed: registry.counter("quorum.write.failed"),
            quorum_write_latency_us: registry.histogram("quorum.write.latency_us"),
            quorum_read_started: registry.counter("quorum.read.started"),
            quorum_read_ok: registry.counter("quorum.read.ok"),
            quorum_read_failed: registry.counter("quorum.read.failed"),
            quorum_read_latency_us: registry.histogram("quorum.read.latency_us"),
            read_repair_pushes: registry.counter("read_repair.pushes"),
            hints_stored: registry.counter("hint.stored"),
            hints_replayed: registry.counter("hint.replayed"),
            handoffs: registry.counter("hint.handoffs"),
            hint_queue_depth: registry.gauge("hint.queue_depth"),
            put_retries: registry.counter("retry.put.resends"),
            get_retries: registry.counter("retry.get.resends"),
            retries_exhausted: registry.counter("retry.exhausted"),
            retry_backoff_us: registry.histogram("retry.backoff_us"),
            hint_replay_expired: registry.counter("hint.replay_expired"),
            restarts: registry.counter("node.restarts"),
            batch_msgs: registry.counter("batch.replica_msgs"),
            batch_ops: registry.counter("batch.replica_ops"),
            acks_deferred: registry.counter("coord.acks_deferred"),
            recover_failures: registry.counter("node.recover_failures"),
        }
    }
}

/// The storage-node process.
pub struct StorageNode {
    cfg: StorageConfig,
    db: Db,
    gossiper: Gossiper,
    ring: HashRing<NodeId>,
    /// Membership signature the current ring was built from.
    ring_sig: Vec<(NodeId, u32)>,
    pending_puts: BTreeMap<u64, PendingPut>,
    pending_gets: BTreeMap<u64, PendingGet>,
    /// Hint-replay requests in flight: replica req → hint + send time.
    hint_acks: BTreeMap<u64, HintInFlight>,
    next_req: u64,
    stats: NodeStats,
    /// Bumped every restart; the gossip boot generation.
    generation: u64,
    /// Rotation cursor through the key space for anti-entropy batches.
    sync_cursor: Option<String>,
    /// Anti-entropy round counter (rotates the peer choice).
    sync_round: u64,
    /// Coalescing buffer: replica writes waiting to be flushed to each peer
    /// as one [`Msg::StoreReplicaBatch`] (empty when coalescing is off).
    outbox: BTreeMap<NodeId, Vec<BatchPut>>,
    /// Whether a `TK_COALESCE` flush timer is already armed.
    outbox_armed: bool,
    /// Acks for locally-applied replica writes whose WAL frames are still
    /// waiting on their covering group-commit sync: `(to, req, ok)`. An ack
    /// must mean "durable here", so these are released only after the sync.
    deferred_acks: Vec<(NodeId, u64, bool)>,
    metrics: StorageMetrics,
}

impl StorageNode {
    /// Creates a node with identity `me`. With
    /// [`StorageConfig::data_dir`] set, the node opens (and on restart,
    /// recovers) a durable WAL named `node<id>.wal` in that directory.
    pub fn new(me: NodeId, cfg: StorageConfig) -> Self {
        // Construction runs before the node joins the cluster; failing fast
        // on a bad config or an unopenable data dir is the intended
        // behaviour (nothing is serving yet), hence the allows below.
        // lint:allow(no-panic-hot-path): startup-time config validation, fail-fast by design
        cfg.nwr.validate().expect("invalid NWR configuration");
        let mut db = match &cfg.data_dir {
            Some(dir) => {
                // lint:allow(no-panic-hot-path): startup-time data-dir setup, fail-fast by design
                std::fs::create_dir_all(dir).expect("create data dir");
                // lint:allow(no-panic-hot-path): startup-time WAL open, fail-fast by design
                Db::open(dir.join(format!("node{}.wal", me.0))).expect("open node wal")
            }
            None => Db::memory(),
        };
        // Record ids must replay identically under the seeded simulator.
        db.set_oid_machine(u64::from(me.0));
        // Recovered databases already carry the index.
        let indexed = db
            .collection(&cfg.collection)
            .map(|c| c.index_fields().contains(&"self-key"))
            .unwrap_or(false);
        if !indexed {
            // lint:allow(no-panic-hot-path): startup-time index creation, fail-fast by design
            db.create_index(&cfg.collection, "self-key").expect("fresh db");
        }
        db.set_wal_metrics(WalMetrics::from_registry(&cfg.metrics));
        if cfg.group_commit_ops > 1 {
            db.set_group_commit(Some(GroupCommitConfig {
                ops: cfg.group_commit_ops,
                max_delay_us: cfg.group_commit_max_delay_us,
            }));
        }
        let mut gossiper = Gossiper::new(me, 1, cfg.gossip.clone());
        gossiper.set_metrics(GossipMetrics::from_registry(&cfg.metrics));
        let metrics = StorageMetrics::from_registry(&cfg.metrics);
        StorageNode {
            cfg,
            db,
            gossiper,
            ring: HashRing::new(),
            ring_sig: Vec::new(),
            pending_puts: BTreeMap::new(),
            pending_gets: BTreeMap::new(),
            hint_acks: BTreeMap::new(),
            next_req: 1,
            stats: NodeStats::default(),
            generation: 1,
            sync_cursor: None,
            sync_round: 0,
            outbox: BTreeMap::new(),
            outbox_armed: false,
            deferred_acks: Vec::new(),
            metrics,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.gossiper.id()
    }

    /// Operation counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Records stored locally in the data collection (replicas included,
    /// tombstones included) — the quantity Fig. 15 plots.
    pub fn record_count(&self) -> usize {
        self.db.collection(&self.cfg.collection).map(|c| c.len()).unwrap_or(0)
    }

    /// Outstanding hints held for other nodes.
    pub fn hint_count(&self) -> usize {
        self.db.collection(HINTS).map(|c| c.len()).unwrap_or(0)
    }

    /// Read access to the local database (tests, diagnostics).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Directly installs a replica, bypassing the network path. Experiment
    /// harnesses use this to preload large corpora without simulating hours
    /// of load traffic; placement must be computed by the caller (see
    /// `mystore-workload`'s preload helpers).
    pub fn preload_record(&mut self, record: &Record) {
        let _ = self.db.put_record(&self.cfg.collection, record);
    }

    /// The node's current ring view.
    pub fn ring(&self) -> &HashRing<NodeId> {
        &self.ring
    }

    /// Gossip-derived liveness belief.
    pub fn believes_alive(&self, node: NodeId) -> bool {
        self.gossiper.is_alive(node)
    }

    /// Hint replays currently awaiting an acknowledgement (tests: the
    /// hint-ack map must stay bounded when targets die mid-replay).
    pub fn inflight_hint_replays(&self) -> usize {
        self.hint_acks.len()
    }

    fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Backoff before retry round `round` (1-based): exponential in the
    /// round, capped, plus up to 25% jitter so stragglers are not re-hit in
    /// lockstep by every coordinator at once.
    fn backoff_delay(&self, ctx: &mut Context<'_, Msg>, round: u32) -> u64 {
        let base = self
            .cfg
            .retry_backoff_base_us
            .saturating_mul(1u64 << (round.saturating_sub(1)).min(32))
            .min(self.cfg.retry_backoff_cap_us);
        let jitter = ctx.rng().range_u64(0, base / 4 + 1);
        let delay = base + jitter;
        self.metrics.retry_backoff_us.record(delay);
        delay
    }

    // ---- membership -----------------------------------------------------

    /// Builds the membership signature from gossiped state: every known,
    /// not-removed endpoint advertising a positive virtual-node count.
    fn membership_signature(&self) -> Vec<(NodeId, u32)> {
        let mut sig: Vec<(NodeId, u32)> = self
            .gossiper
            .known_endpoints()
            .filter(|&ep| !self.gossiper.is_removed(ep))
            .filter_map(|ep| {
                let vn = if ep == self.id() {
                    self.cfg.vnodes
                } else {
                    self.gossiper.app_state(ep, gossip_keys::VNODES)?.parse().ok()?
                };
                (vn > 0).then_some((ep, vn))
            })
            .collect();
        sig.sort_unstable();
        sig
    }

    /// Rebuilds the ring if membership changed; sweeps data when it did.
    fn refresh_ring(&mut self, ctx: &mut Context<'_, Msg>) {
        let sig = self.membership_signature();
        if sig == self.ring_sig {
            return;
        }
        let mut ring = HashRing::new();
        for &(node, vnodes) in &sig {
            // The signature is deduped by construction; if a duplicate ever
            // slipped through, keeping the first entry beats crashing.
            let _ = ring.add_node(node, format!("node{}", node.0), vnodes);
        }
        self.ring = ring;
        self.ring_sig = sig;
        self.rebalance_sweep(ctx);
    }

    /// §5.2.4: after membership change, move records whose preference list
    /// no longer includes us, and supplement replicas on the nodes that
    /// should now hold them. LWW application makes re-sends idempotent.
    fn rebalance_sweep(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = self.id();
        let n = self.cfg.nwr.n;
        let Ok(coll) = self.db.collection(&self.cfg.collection) else { return };
        // Ordered map: the send order below feeds the sim schedule.
        let mut outgoing: BTreeMap<NodeId, Vec<Arc<Record>>> = BTreeMap::new();
        let mut to_drop: Vec<ObjectId> = Vec::new();
        for (id, docu) in coll.iter() {
            let Ok(record) = Record::from_document(docu) else { continue };
            let record = Arc::new(record);
            let prefs = self.ring.preference_list(record.self_key.as_bytes(), n);
            if prefs.is_empty() {
                continue;
            }
            let keep = prefs.contains(&me);
            for &target in prefs.iter().filter(|&&p| p != me) {
                outgoing.entry(target).or_default().push(Arc::clone(&record));
            }
            if !keep {
                to_drop.push(*id);
            }
        }
        for id in to_drop {
            let _ = self.db.remove(&self.cfg.collection, id);
            self.stats.records_migrated_out += 1;
        }
        // Batch transfers to bound message counts.
        const BATCH: usize = 64;
        for (target, records) in outgoing {
            for chunk in records.chunks(BATCH) {
                ctx.send(target, Msg::TransferRecords { records: chunk.to_vec() });
            }
        }
    }

    fn process_membership(&mut self, ctx: &mut Context<'_, Msg>) {
        let events = self.gossiper.drain_events();
        if events.is_empty() {
            return;
        }
        for ev in &events {
            match ev {
                MembershipEvent::Joined(n) => ctx.record("member_joined", n.0 as f64),
                MembershipEvent::Up(n) => ctx.record("member_up", n.0 as f64),
                MembershipEvent::Down(n) => ctx.record("member_down", n.0 as f64),
                MembershipEvent::Removed(n) => ctx.record("member_removed", n.0 as f64),
            }
        }
        self.refresh_ring(ctx);
    }

    // ---- coordinator: writes (§5.2.2) ------------------------------------

    fn start_put(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        key: String,
        value: Vec<u8>,
        delete: bool,
    ) {
        let n = self.cfg.nwr.n;
        let prefs = self.ring.preference_list(key.as_bytes(), n);
        if prefs.is_empty() {
            ctx.send(caller, Msg::PutResp { req: caller_req, result: Err(StoreError::NoRing) });
            return;
        }
        let version = pack_version(ctx.now().as_micros(), self.id().0 as u16);
        // Deterministic id: sim seconds + node machine id via the Db's
        // OidGen (a raw ObjectId::new here would leak wall clock into the
        // replicated data and break seeded replay).
        self.db.set_oid_secs((ctx.now().as_micros() / 1_000_000) as u32);
        let oid = self.db.fresh_oid(&self.cfg.collection);
        let record = Arc::new(if delete {
            Record::tombstone(oid, key, version)
        } else {
            Record::new(oid, key, value, version)
        });
        let my_req = self.fresh_req();
        self.metrics.quorum_write_started.inc();
        let mut pending = PendingPut {
            caller,
            caller_req,
            record: Arc::clone(&record),
            acks: 0,
            outstanding: prefs.clone(),
            acked: Vec::new(),
            fallbacks_used: Vec::new(),
            retry_round: 0,
            replied: false,
            started_us: ctx.now().as_micros(),
        };
        let me = self.id();
        for &replica in &prefs {
            if replica == me {
                // "The node firstly stores the data records locally" (§5.2.2).
                ctx.consume(self.cfg.cost.put_us(record.val.len()));
                self.stats.replica_puts += 1;
                if self.db.put_record(&self.cfg.collection, &record).is_ok() {
                    if self.db.wal_pending_ops() > 0 {
                        // Group commit: the frame is staged, not yet synced.
                        // The local write counts towards `W` only once its
                        // covering sync lands — the flush sends a self-ack.
                        self.deferred_acks.push((me, my_req, true));
                        self.metrics.acks_deferred.inc();
                    } else {
                        pending.acks += 1;
                        pending.outstanding.retain(|&r| r != me);
                    }
                }
            } else if self.cfg.coalesce_window_us > 0 {
                self.outbox
                    .entry(replica)
                    .or_default()
                    .push(BatchPut { req: my_req, record: Arc::clone(&record) });
                if !self.outbox_armed {
                    self.outbox_armed = true;
                    ctx.set_timer(self.cfg.coalesce_window_us, tk(TK_COALESCE, 0));
                }
            } else {
                ctx.send(replica, Msg::StoreReplica { req: my_req, record: Arc::clone(&record) });
            }
        }
        let done = self.check_put_quorum(ctx, my_req, &mut pending);
        if !done {
            self.pending_puts.insert(my_req, pending);
            ctx.set_timer(self.cfg.replica_timeout_us, tk(TK_PUT_RETRY, my_req));
            ctx.set_timer(self.cfg.request_deadline_us, tk(TK_PUT_HARD, my_req));
        }
    }

    /// Replies to the caller when `W` acknowledgements are in. Returns true
    /// when the request is fully complete (all replicas acked).
    fn check_put_quorum(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        _my_req: u64,
        pending: &mut PendingPut,
    ) -> bool {
        if !pending.replied && pending.acks >= self.cfg.nwr.w {
            pending.replied = true;
            self.stats.puts_ok += 1;
            self.metrics.quorum_write_ok.inc();
            self.metrics
                .quorum_write_latency_us
                .record(ctx.now().as_micros().saturating_sub(pending.started_us));
            ctx.record("put_ok", 1.0);
            ctx.send(pending.caller, Msg::PutResp { req: pending.caller_req, result: Ok(()) });
        }
        pending.replied && pending.outstanding.is_empty()
    }

    fn on_store_ack(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, req: u64, ok: bool) {
        // Hint-replay acknowledgements resolve separately. The hint is only
        // discharged if its document is still present — a duplicated ack (or
        // one racing the replay sweep) must not double-count a replay or
        // drive the depth gauge negative.
        if let Some(inflight) = self.hint_acks.remove(&req) {
            if ok && self.db.remove(HINTS, inflight.id).is_ok() {
                self.stats.hints_replayed += 1;
                self.metrics.hints_replayed.inc();
                self.metrics.hint_queue_depth.dec_clamped();
                ctx.record("hint_replayed", 1.0);
            }
            return;
        }
        let Some(mut pending) = self.pending_puts.remove(&req) else { return };
        // Retries and chaotic links can duplicate acks: count each node once.
        if ok && !pending.acked.contains(&from) {
            pending.acked.push(from);
            pending.acks += 1;
            pending.outstanding.retain(|&r| r != from);
        }
        // A failed ack leaves the replica in `outstanding`; the retry path
        // will re-send and eventually divert it to a fallback node.
        let done = self.check_put_quorum(ctx, req, &mut pending);
        if !done {
            self.pending_puts.insert(req, pending);
        }
    }

    /// Per-replica deadline: while retry budget remains, re-send the write
    /// to stragglers with exponential backoff; once exhausted, divert to
    /// hinted handoff (Fig. 8) — "if one node fails, the system writes to
    /// the next node on the ring" — instead of stalling the quorum.
    fn on_put_retry_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let me = self.id();
        let Some(pending) = self.pending_puts.get_mut(&req) else { return };
        if pending.retry_round < self.cfg.replica_retry_max {
            pending.retry_round += 1;
            let round = pending.retry_round;
            let record = pending.record.clone();
            let stragglers: Vec<NodeId> =
                pending.outstanding.iter().copied().filter(|&r| r != me).collect();
            for replica in &stragglers {
                ctx.send(*replica, Msg::StoreReplica { req, record: record.clone() });
                self.metrics.put_retries.inc();
                ctx.record("put_retry", 1.0);
            }
            let delay = self.backoff_delay(ctx, round);
            ctx.set_timer(delay, tk(TK_PUT_RETRY, req));
            return;
        }
        self.metrics.retries_exhausted.inc();
        if !self.cfg.hinted_handoff {
            return;
        }
        let Some(mut pending) = self.pending_puts.remove(&req) else { return };
        let stragglers: Vec<NodeId> = pending.outstanding.clone();
        for intended in stragglers {
            if intended == me {
                continue;
            }
            if let Some(fallback) = self.pick_fallback(&pending) {
                pending.fallbacks_used.push(fallback);
                self.stats.handoffs_sent += 1;
                self.metrics.handoffs.inc();
                ctx.record("handoff", 1.0);
                if fallback == me {
                    // The coordinator may be the only node left standing —
                    // it holds the hint itself, and its ack is immediate.
                    ctx.consume(self.cfg.cost.put_us(pending.record.val.len()));
                    let hint_doc = doc! {
                        "intended": intended.0 as i64,
                        "rec": pending.record.to_document(),
                    };
                    if self.db.insert_doc(HINTS, hint_doc).is_ok() {
                        self.metrics.hints_stored.inc();
                        self.metrics.hint_queue_depth.add(1);
                        if self.db.wal_pending_ops() > 0 {
                            // Staged like any local write: counts at sync.
                            self.deferred_acks.push((me, req, true));
                            self.metrics.acks_deferred.inc();
                        } else {
                            pending.acks += 1;
                        }
                    }
                } else {
                    ctx.send(
                        fallback,
                        Msg::StoreHint { req, intended, record: pending.record.clone() },
                    );
                }
            }
        }
        let done = self.check_put_quorum(ctx, req, &mut pending);
        if !done {
            self.pending_puts.insert(req, pending);
        }
    }

    /// First alive node clockwise after the preference list that has not
    /// been used as a fallback for this request. The coordinator itself is
    /// eligible (it is alive by definition).
    fn pick_fallback(&self, pending: &PendingPut) -> Option<NodeId> {
        let point = HashRing::<NodeId>::key_point(pending.record.self_key.as_bytes());
        let walk = self.ring.successors_of_point(point, self.ring.len());
        let prefs = self.ring.preference_list(pending.record.self_key.as_bytes(), self.cfg.nwr.n);
        walk.into_iter()
            .find(|n| {
                !prefs.contains(n)
                    && !pending.fallbacks_used.contains(n)
                    && self.gossiper.is_alive(*n)
            })
            .or_else(|| {
                // Cluster size == N: there is no node beyond the preference
                // list to divert to, so the coordinator parks the hint itself.
                let me = self.id();
                (!pending.fallbacks_used.contains(&me)).then_some(me)
            })
    }

    fn on_put_hard_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let Some(pending) = self.pending_puts.remove(&req) else { return };
        if !pending.replied {
            self.stats.puts_failed += 1;
            self.metrics.quorum_write_failed.inc();
            ctx.record("put_fail", 1.0);
            ctx.send(
                pending.caller,
                Msg::PutResp {
                    req: pending.caller_req,
                    result: Err(StoreError::QuorumWriteFailed),
                },
            );
        }
    }

    // ---- coordinator: reads (§5.2.2) --------------------------------------

    fn start_get(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        caller: NodeId,
        caller_req: u64,
        key: String,
    ) {
        let n = self.cfg.nwr.n;
        let prefs = self.ring.preference_list(key.as_bytes(), n);
        if prefs.is_empty() {
            ctx.send(caller, Msg::GetResp { req: caller_req, result: Err(StoreError::NoRing) });
            return;
        }
        let my_req = self.fresh_req();
        self.metrics.quorum_read_started.inc();
        let mut pending = PendingGet {
            caller,
            caller_req,
            key: key.clone(),
            prefs: prefs.clone(),
            replies: Vec::new(),
            retry_round: 0,
            replied: false,
            started_us: ctx.now().as_micros(),
        };
        let me = self.id();
        for &replica in &prefs {
            if replica == me {
                let found = self.local_fetch(ctx, &key);
                pending.replies.push((me, found));
            } else {
                ctx.send(replica, Msg::FetchReplica { req: my_req, key: key.clone() });
            }
        }
        let done = self.check_get_progress(ctx, &mut pending);
        if !done {
            self.pending_gets.insert(my_req, pending);
            ctx.set_timer(self.cfg.replica_timeout_us, tk(TK_GET_RETRY, my_req));
            ctx.set_timer(self.cfg.request_deadline_us, tk(TK_GET_HARD, my_req));
        }
    }

    fn local_fetch(&mut self, ctx: &mut Context<'_, Msg>, key: &str) -> Option<Record> {
        self.stats.replica_gets += 1;
        let found = self.db.get_record(&self.cfg.collection, key).ok().flatten();
        ctx.consume(self.cfg.cost.get_us(found.as_ref().map(|r| r.val.len()).unwrap_or(0)));
        found
    }

    /// Replies at `R` successes; finishes (with read repair) when every
    /// preference-list member has answered. Returns true when complete.
    fn check_get_progress(&mut self, ctx: &mut Context<'_, Msg>, pending: &mut PendingGet) -> bool {
        if !pending.replied && pending.replies.len() >= self.cfg.nwr.r {
            pending.replied = true;
            let newest = Self::newest(&pending.replies);
            let result = match newest {
                Some(rec) if !rec.is_del => Ok(Some(rec.val.clone())),
                _ => Ok(None),
            };
            self.stats.gets_ok += 1;
            self.metrics.quorum_read_ok.inc();
            self.metrics
                .quorum_read_latency_us
                .record(ctx.now().as_micros().saturating_sub(pending.started_us));
            ctx.record("get_ok", 1.0);
            ctx.send(pending.caller, Msg::GetResp { req: pending.caller_req, result });
        }
        if pending.replies.len() == pending.prefs.len() {
            self.read_repair(ctx, pending);
            return true;
        }
        false
    }

    /// "The Get operation gets all replications of the specified key, and
    /// checks the number of replication. If replications are less than N
    /// ... some more replications are supplemented" (§5.2.2) — plus classic
    /// read repair of stale copies.
    ///
    /// Only replicas that are actually behind get a push: a replica already
    /// holding the winner is left alone, and a replica missing the key is
    /// only supplemented when the winner is live data — pushing a tombstone
    /// at a node that holds nothing would *create* state for a deleted key,
    /// which the reaper then collects and the next read re-creates.
    fn read_repair(&mut self, ctx: &mut Context<'_, Msg>, pending: &PendingGet) {
        let Some(newest) = Self::newest(&pending.replies) else { return };
        // One shared copy feeds every push, however many replicas are stale.
        let newest = Arc::new(newest.clone());
        let me = self.id();
        for (node, found) in &pending.replies {
            let stale = match found {
                None => !newest.is_del,
                Some(r) => newest.wins_over(r),
            };
            if !stale {
                continue;
            }
            self.stats.read_repairs += 1;
            self.metrics.read_repair_pushes.inc();
            ctx.record("read_repair", 1.0);
            if *node == me {
                let _ = self.db.put_record(&self.cfg.collection, &newest);
            } else {
                // Fire-and-forget: acks for req 0 are ignored.
                ctx.send(*node, Msg::StoreReplica { req: 0, record: Arc::clone(&newest) });
            }
        }
    }

    /// The canonical LWW winner among the replies. Ties (identical packed
    /// `(timestamp, writer)` versions are the same write) keep the first
    /// reply, so every coordinator resolves the same winner regardless of
    /// reply order.
    fn newest(replies: &[(NodeId, Option<Record>)]) -> Option<&Record> {
        replies.iter().filter_map(|(_, r)| r.as_ref()).reduce(|best, r| {
            if r.wins_over(best) {
                r
            } else {
                best
            }
        })
    }

    fn on_fetch_ack(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        found: Option<Record>,
        ok: bool,
    ) {
        let Some(mut pending) = self.pending_gets.remove(&req) else { return };
        // Retries and chaotic links can duplicate replies: one per node.
        if ok && !pending.replies.iter().any(|(n, _)| *n == from) {
            pending.replies.push((from, found));
        }
        // A failed read is tolerated (§5.1): replication covers it.
        let done = self.check_get_progress(ctx, &mut pending);
        if !done {
            self.pending_gets.insert(req, pending);
        }
    }

    /// Per-replica read deadline: re-fetch from silent replicas with the
    /// same bounded backoff as writes. Reads have no handoff to divert to —
    /// after the budget, the hard deadline decides.
    fn on_get_retry_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let me = self.id();
        let Some(pending) = self.pending_gets.get_mut(&req) else { return };
        if pending.retry_round >= self.cfg.replica_retry_max {
            self.metrics.retries_exhausted.inc();
            return;
        }
        pending.retry_round += 1;
        let round = pending.retry_round;
        let key = pending.key.clone();
        let silent: Vec<NodeId> = pending
            .prefs
            .iter()
            .copied()
            .filter(|&p| p != me && !pending.replies.iter().any(|(n, _)| *n == p))
            .collect();
        for replica in &silent {
            ctx.send(*replica, Msg::FetchReplica { req, key: key.clone() });
            self.metrics.get_retries.inc();
            ctx.record("get_retry", 1.0);
        }
        let delay = self.backoff_delay(ctx, round);
        ctx.set_timer(delay, tk(TK_GET_RETRY, req));
    }

    fn on_get_hard_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: u64) {
        let Some(pending) = self.pending_gets.remove(&req) else { return };
        if !pending.replied {
            self.stats.gets_failed += 1;
            self.metrics.quorum_read_failed.inc();
            ctx.record("get_fail", 1.0);
            ctx.send(
                pending.caller,
                Msg::GetResp { req: pending.caller_req, result: Err(StoreError::QuorumReadFailed) },
            );
        } else {
            self.read_repair(ctx, &pending);
        }
        let _ = pending.key;
    }

    // ---- replica side ------------------------------------------------------

    /// Sends a replica ack, or parks it while the write's WAL frame is still
    /// waiting on its covering group-commit sync — an ack must mean the
    /// write is durable *here*, so it is released only once the sync lands
    /// (threshold reached or `TK_WAL_FLUSH` fires).
    fn queue_ack(&mut self, ctx: &mut Context<'_, Msg>, to: NodeId, req: u64, ok: bool) {
        if ok && self.db.wal_pending_ops() > 0 {
            self.deferred_acks.push((to, req, ok));
            self.metrics.acks_deferred.inc();
        } else {
            ctx.send(to, Msg::StoreAck { req, ok });
            // This write may itself have triggered the threshold sync that
            // made earlier staged frames durable — release their acks too.
            self.maybe_flush_deferred_acks(ctx);
        }
    }

    /// Releases parked acks once nothing is staged in the WAL any more.
    fn maybe_flush_deferred_acks(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.deferred_acks.is_empty() || self.db.wal_pending_ops() > 0 {
            return;
        }
        for (to, req, ok) in std::mem::take(&mut self.deferred_acks) {
            ctx.send(to, Msg::StoreAck { req, ok });
        }
    }

    fn on_store_replica(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        record: Arc<Record>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return, // message effectively lost
            Some(OpFault::DiskIoError) => {
                if req != 0 {
                    ctx.send(from, Msg::StoreAck { req, ok: false });
                }
                return;
            }
            _ => {}
        }
        ctx.consume(self.cfg.cost.put_us(record.val.len()));
        self.stats.replica_puts += 1;
        let ok = self.db.put_record(&self.cfg.collection, &record).is_ok();
        if req != 0 {
            self.queue_ack(ctx, from, req, ok);
        } else {
            self.maybe_flush_deferred_acks(ctx);
        }
    }

    /// A coalesced fan-out: apply every op, cover them all with one WAL
    /// sync, then ack each op individually so the coordinator's per-op
    /// retry/handoff machinery is none the wiser.
    fn on_store_replica_batch(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        ops: Vec<BatchPut>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return, // whole message lost
            Some(OpFault::DiskIoError) => {
                let acks = ops.iter().map(|op| (op.req, false)).collect();
                ctx.send(from, Msg::StoreAckBatch { acks });
                return;
            }
            _ => {}
        }
        let mut acks = Vec::with_capacity(ops.len());
        for op in &ops {
            ctx.consume(self.cfg.cost.put_us(op.record.val.len()));
            self.stats.replica_puts += 1;
            let ok = self.db.put_record(&self.cfg.collection, &op.record).is_ok();
            acks.push((op.req, ok));
        }
        // One sync covers the whole batch; only then are the acks true.
        if self.db.sync_wal().is_err() {
            for ack in &mut acks {
                ack.1 = false;
            }
        }
        ctx.send(from, Msg::StoreAckBatch { acks });
        self.maybe_flush_deferred_acks(ctx);
    }

    fn on_fetch_replica(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        key: String,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return,
            Some(OpFault::DiskIoError) => {
                ctx.send(from, Msg::FetchAck { req, found: None, ok: false });
                return;
            }
            _ => {}
        }
        let found = self.local_fetch(ctx, &key);
        ctx.send(from, Msg::FetchAck { req, found, ok: true });
    }

    // ---- hinted handoff (Fig. 8) --------------------------------------------

    fn on_store_hint(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: u64,
        intended: NodeId,
        record: Arc<Record>,
        fault: Option<OpFault>,
    ) {
        match fault {
            Some(OpFault::NetworkException) => return,
            Some(OpFault::DiskIoError) => {
                ctx.send(from, Msg::StoreAck { req, ok: false });
                return;
            }
            _ => {}
        }
        ctx.consume(self.cfg.cost.put_us(record.val.len()));
        // "When C receives the request, it creates an index for the
        // replication" — we persist the hint durably.
        let hint_doc = doc! {
            "intended": intended.0 as i64,
            "rec": record.to_document(),
        };
        let ok = self.db.insert_doc(HINTS, hint_doc).is_ok();
        if ok {
            self.metrics.hints_stored.inc();
            self.metrics.hint_queue_depth.add(1);
        }
        self.queue_ack(ctx, from, req, ok);
    }

    /// Periodic probe: for every held hint whose intended node is back
    /// (detected via gossip heartbeats), write the data back (Fig. 8:
    /// "when it finds that the B node is on-line again, the node C would
    /// write the data back to B").
    fn replay_hints(&mut self, ctx: &mut Context<'_, Msg>) {
        let now_us = ctx.now().as_micros();
        // Sweep replays whose ack never arrived within the request deadline
        // (the target died mid-replay, or the ack was lost). The hint
        // document itself is untouched and will be offered again below —
        // replays are idempotent under LWW — so nothing is lost and the map
        // stays bounded. Younger in-flight entries are kept (and their hints
        // skipped) so a slow ack is not raced by a duplicate replay.
        let deadline = self.cfg.request_deadline_us;
        let before = self.hint_acks.len();
        self.hint_acks.retain(|_, hint| now_us.saturating_sub(hint.sent_at_us) < deadline);
        let expired = before - self.hint_acks.len();
        if expired > 0 {
            self.metrics.hint_replay_expired.add(expired as u64);
            ctx.record("hint_replay_expired", expired as f64);
        }
        let in_flight: BTreeSet<ObjectId> = self.hint_acks.values().map(|h| h.id).collect();
        let Ok(coll) = self.db.collection(HINTS) else { return };
        let mut replays: Vec<(ObjectId, NodeId, Record)> = Vec::new();
        for (id, docu) in coll.iter() {
            if in_flight.contains(id) {
                continue;
            }
            let Some(intended) = docu.get_i64("intended").map(|v| NodeId(v as u32)) else {
                continue;
            };
            let Some(rec_doc) = docu.get_document("rec") else { continue };
            let Ok(record) = Record::from_document(rec_doc) else { continue };
            if self.gossiper.is_alive(intended) && !self.gossiper.is_removed(intended) {
                replays.push((*id, intended, record));
            } else if self.gossiper.is_removed(intended) {
                // Long failure: the intended node will never return. The
                // rebalance sweep re-replicates from live copies, so the
                // hint is dropped.
                replays.push((*id, intended, record.clone()));
            }
        }
        for (hint_id, intended, record) in replays {
            if self.gossiper.is_removed(intended) {
                if self.db.remove(HINTS, hint_id).is_ok() {
                    self.metrics.hint_queue_depth.dec_clamped();
                }
                continue;
            }
            let req = self.fresh_req();
            self.hint_acks.insert(req, HintInFlight { id: hint_id, sent_at_us: now_us });
            ctx.send(intended, Msg::StoreReplica { req, record: Arc::new(record) });
        }
    }

    // ---- anti-entropy (extension) -----------------------------------------

    /// One anti-entropy round: take the next batch of locally-held records
    /// (rotating through key space), pick one alive replica peer per record
    /// group, and send it our `(key, version)` digest. The peer answers with
    /// any strictly newer copies (§7 future work: "solving problems on
    /// data's consistency" — this bounds divergence even for keys that are
    /// never read).
    fn anti_entropy_round(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = self.id();
        let n = self.cfg.nwr.n;
        let Ok(coll) = self.db.collection(&self.cfg.collection) else { return };
        // Next batch after the cursor, wrapping at the end.
        let mut batch: Vec<Record> = Vec::with_capacity(self.cfg.anti_entropy_batch);
        let mut wrapped = false;
        let start = self.sync_cursor.clone();
        for (_, docu) in coll.iter() {
            let Ok(rec) = Record::from_document(docu) else { continue };
            if let Some(cursor) = &start {
                if !wrapped && rec.self_key <= *cursor {
                    continue;
                }
            }
            batch.push(rec);
            if batch.len() >= self.cfg.anti_entropy_batch {
                break;
            }
        }
        if batch.is_empty() && start.is_some() {
            // Wrapped: restart from the beginning of the key space.
            self.sync_cursor = None;
            wrapped = true;
            for (_, docu) in coll.iter() {
                let Ok(rec) = Record::from_document(docu) else { continue };
                batch.push(rec);
                if batch.len() >= self.cfg.anti_entropy_batch {
                    break;
                }
            }
        }
        let _ = wrapped;
        let Some(last) = batch.last() else { return };
        self.sync_cursor = Some(last.self_key.clone());
        // Group digests by one alive peer from each record's preference
        // list, rotating the choice every round so each replica pair
        // eventually exchanges.
        self.sync_round += 1;
        let round = self.sync_round as usize;
        // Ordered map: the digest send order below feeds the sim schedule.
        let mut per_peer: BTreeMap<NodeId, Vec<(String, u64)>> = BTreeMap::new();
        for rec in &batch {
            let prefs = self.ring.preference_list(rec.self_key.as_bytes(), n);
            let eligible: Vec<NodeId> =
                prefs.iter().copied().filter(|&p| p != me && self.gossiper.is_alive(p)).collect();
            if let Some(&peer) = eligible.get(round % eligible.len().max(1)) {
                per_peer.entry(peer).or_default().push((rec.self_key.clone(), rec.version));
            }
        }
        for (peer, entries) in per_peer {
            ctx.send(peer, Msg::SyncDigest { entries });
        }
    }

    /// Peer side of a sync round: reply with every record we hold strictly
    /// newer than the sender's digest, and counter-digest the keys where we
    /// are behind (missing or older) so the sender pushes those back. The
    /// counter-digest cannot loop: the sender is strictly newer for every
    /// key in it, so its handler only produces a `SyncRecords`.
    fn on_sync_digest(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        entries: Vec<(String, u64)>,
    ) {
        ctx.consume(self.cfg.cost.gossip_us + entries.len() as u64 / 4);
        let mut newer: Vec<Record> = Vec::new();
        let mut behind: Vec<(String, u64)> = Vec::new();
        // Digests carry bare versions, so this compares what `wins_over`
        // compares: the packed `(timestamp, writer)` version. Equal versions
        // are the same write and need no transfer in either direction.
        for (key, their_version) in entries {
            match self.db.get_record(&self.cfg.collection, &key) {
                Ok(Some(mine)) if mine.version > their_version => newer.push(mine),
                Ok(Some(mine)) if mine.version < their_version => behind.push((key, mine.version)),
                Ok(Some(_)) => {} // equal
                _ => behind.push((key, 0)),
            }
        }
        if !newer.is_empty() {
            ctx.send(from, Msg::SyncRecords { records: newer });
        }
        if !behind.is_empty() {
            ctx.send(from, Msg::SyncDigest { entries: behind });
        }
    }

    // ---- group commit & coalescing ----------------------------------------

    /// `TK_COALESCE`: drain the outbox, one batched message per peer. A
    /// lone op goes out as a plain `StoreReplica` (no batch framing to pay
    /// for); two or more ride one `StoreReplicaBatch`.
    fn flush_outbox(&mut self, ctx: &mut Context<'_, Msg>) {
        self.outbox_armed = false;
        for (peer, mut ops) in std::mem::take(&mut self.outbox) {
            if ops.is_empty() {
                continue;
            }
            self.metrics.batch_ops.add(ops.len() as u64);
            self.metrics.batch_msgs.inc();
            if ops.len() == 1 {
                if let Some(op) = ops.pop() {
                    ctx.send(peer, Msg::StoreReplica { req: op.req, record: op.record });
                }
            } else {
                ctx.send(peer, Msg::StoreReplicaBatch { ops });
            }
        }
    }

    /// `TK_WAL_FLUSH`: bound how long a staged frame (and its parked ack)
    /// can wait for the batch to fill — sync whatever is pending, release
    /// the acks it covered, and re-arm.
    fn wal_flush_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.db.wal_pending_ops() > 0 {
            let _ = self.db.sync_wal();
        }
        self.maybe_flush_deferred_acks(ctx);
        ctx.set_timer(self.cfg.group_commit_max_delay_us, tk(TK_WAL_FLUSH, 0));
    }

    // ---- gossip & timers -------------------------------------------------

    fn gossip_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        // Publish capacity and load.
        self.gossiper.set_app_state(gossip_keys::VNODES, self.cfg.vnodes.to_string());
        self.gossiper.set_app_state(gossip_keys::LOAD, self.record_count().to_string());
        let now = ctx.now();
        let out = {
            let rng = ctx.rng();
            self.gossiper.tick(now, rng)
        };
        for (to, g) in out {
            ctx.send(to, Msg::Gossip(g));
        }
        self.process_membership(ctx);
        ctx.set_timer(self.cfg.gossip.interval_us, tk(TK_GOSSIP, 0));
    }
}

impl Process<Msg> for StorageNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // Make sure the local ring at least contains this node, so a
        // single-node deployment serves requests before any gossip.
        self.refresh_ring(ctx);
        // Stagger the first gossip round a little to avoid lockstep.
        let jitter = ctx.rng().range_u64(0, self.cfg.gossip.interval_us / 4 + 1);
        ctx.set_timer(self.cfg.gossip.interval_us / 4 + jitter, tk(TK_GOSSIP, 0));
        ctx.set_timer(self.cfg.hint_replay_interval_us, tk(TK_HINT_REPLAY, 0));
        if self.cfg.compaction_interval_us > 0 {
            ctx.set_timer(self.cfg.compaction_interval_us, tk(TK_REAP, 0));
        }
        if self.cfg.anti_entropy_interval_us > 0 {
            // Stagger the first round so nodes don't sync in lockstep.
            let jitter = ctx.rng().range_u64(0, self.cfg.anti_entropy_interval_us / 2 + 1);
            ctx.set_timer(self.cfg.anti_entropy_interval_us / 2 + jitter, tk(TK_ANTI_ENTROPY, 0));
        }
        if self.cfg.group_commit_ops > 1 {
            ctx.set_timer(self.cfg.group_commit_max_delay_us, tk(TK_WAL_FLUSH, 0));
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        // Crash recovery: drop all volatile state and rebuild the store
        // from its WAL — anything that never reached the log is lost,
        // exactly as on a real process crash.
        let db = std::mem::replace(&mut self.db, Db::memory());
        self.db = match db.recover_from_wal() {
            Ok(recovered) => recovered,
            Err(_) => {
                // A corrupt log must not take the node (and in the sim, the
                // whole cluster process) down: come back empty — read repair
                // and anti-entropy re-fill us — and count the event.
                self.metrics.recover_failures.inc();
                let mut fresh = Db::memory();
                let _ = fresh.create_index(&self.cfg.collection, "self-key");
                fresh.set_wal_metrics(WalMetrics::from_registry(&self.cfg.metrics));
                fresh.set_oid_machine(u64::from(self.id().0));
                if self.cfg.group_commit_ops > 1 {
                    fresh.set_group_commit(Some(GroupCommitConfig {
                        ops: self.cfg.group_commit_ops,
                        max_delay_us: self.cfg.group_commit_max_delay_us,
                    }));
                }
                fresh
            }
        };
        // A restart is a new boot generation (paper's bootGeneration field):
        // peers see the bump and reset our state, clearing any long-failure
        // declaration. Build on the gossiper's generation too — it may have
        // reasserted a higher one after a lost-clock recovery.
        self.generation = self.generation.max(self.gossiper.generation()) + 1;
        self.gossiper = Gossiper::new(self.id(), self.generation, self.cfg.gossip.clone());
        self.gossiper.set_metrics(GossipMetrics::from_registry(&self.cfg.metrics));
        self.pending_puts.clear();
        self.pending_gets.clear();
        self.hint_acks.clear();
        self.outbox.clear();
        self.outbox_armed = false;
        self.deferred_acks.clear();
        self.metrics.restarts.inc();
        self.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        // The runtime samples at most one per-operation fault (Table 2);
        // replica-level storage ops interpret it below.
        let fault = ctx.take_op_fault();
        match msg {
            Msg::Put { req, key, value, delete } => {
                if fault == Some(OpFault::NetworkException) {
                    return; // request lost on the wire; caller times out
                }
                self.start_put(ctx, from, req, key, value, delete);
            }
            Msg::Get { req, key } => {
                if fault == Some(OpFault::NetworkException) {
                    return;
                }
                self.start_get(ctx, from, req, key);
            }
            Msg::StoreReplica { req, record } => {
                self.on_store_replica(ctx, from, req, record, fault)
            }
            Msg::StoreReplicaBatch { ops } => self.on_store_replica_batch(ctx, from, ops, fault),
            Msg::StoreAck { req, ok } => self.on_store_ack(ctx, from, req, ok),
            Msg::StoreAckBatch { acks } => {
                for (req, ok) in acks {
                    self.on_store_ack(ctx, from, req, ok);
                }
            }
            Msg::FetchReplica { req, key } => self.on_fetch_replica(ctx, from, req, key, fault),
            Msg::FetchAck { req, found, ok } => self.on_fetch_ack(ctx, from, req, found, ok),
            Msg::StoreHint { req, intended, record } => {
                self.on_store_hint(ctx, from, req, intended, record, fault)
            }
            Msg::SyncDigest { entries } => self.on_sync_digest(ctx, from, entries),
            Msg::SyncRecords { records } => {
                for record in records {
                    ctx.consume(self.cfg.cost.put_us(record.val.len()));
                    if self.db.put_record(&self.cfg.collection, &record).unwrap_or(false) {
                        self.stats.anti_entropy_received += 1;
                        ctx.record("anti_entropy_repair", 1.0);
                    }
                }
            }
            Msg::TransferRecords { records } => {
                for record in records {
                    ctx.consume(self.cfg.cost.put_us(record.val.len()));
                    let _ = self.db.put_record(&self.cfg.collection, &record);
                }
            }
            Msg::Gossip(g) => {
                ctx.consume(self.cfg.cost.gossip_us);
                let now = ctx.now();
                if let Some((to, reply)) = self.gossiper.handle(now, from, g) {
                    ctx.send(to, Msg::Gossip(reply));
                }
                self.process_membership(ctx);
            }
            // REST/cache traffic does not terminate here.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        let (kind, req) = tk_split(token);
        match kind {
            TK_GOSSIP => self.gossip_tick(ctx),
            TK_HINT_REPLAY => {
                self.replay_hints(ctx);
                ctx.set_timer(self.cfg.hint_replay_interval_us, tk(TK_HINT_REPLAY, 0));
            }
            TK_REAP => {
                // Deferred reclamation of logical deletes (§3.3): physically
                // drop tombstones old enough that no repair can resurrect
                // their keys.
                let now_us = ctx.now().as_micros();
                let cutoff = mystore_engine::pack_version(
                    now_us.saturating_sub(self.cfg.tombstone_grace_us),
                    0,
                );
                if let Ok(reaped) = self.db.reap_tombstones(&self.cfg.collection, cutoff) {
                    if reaped > 0 {
                        ctx.record("tombstones_reaped", reaped as f64);
                    }
                }
                ctx.set_timer(self.cfg.compaction_interval_us, tk(TK_REAP, 0));
            }
            TK_ANTI_ENTROPY => {
                self.anti_entropy_round(ctx);
                ctx.set_timer(self.cfg.anti_entropy_interval_us, tk(TK_ANTI_ENTROPY, 0));
            }
            TK_PUT_RETRY => self.on_put_retry_timeout(ctx, req),
            TK_PUT_HARD => self.on_put_hard_timeout(ctx, req),
            TK_GET_HARD => self.on_get_hard_timeout(ctx, req),
            TK_GET_RETRY => self.on_get_retry_timeout(ctx, req),
            TK_WAL_FLUSH => self.wal_flush_tick(ctx),
            TK_COALESCE => self.flush_outbox(ctx),
            _ => {}
        }
    }
}
