//! Cluster assembly: builds complete MyStore deployments on a runtime.
//!
//! [`ClusterSpec`] describes a deployment (how many storage nodes, cache
//! servers and front ends, NWR, gossip cadence, node concurrency);
//! [`ClusterSpec::build_sim`] instantiates it on the deterministic
//! simulator. [`ClusterSpec::paper_topology`] reproduces Fig. 10: one
//! application (front-end) node, one seed DB node plus four normal DB
//! nodes, and four cache servers.

use mystore_gossip::GossipConfig;
use mystore_net::{NodeConfig, NodeId, Sim, SimConfig};
use mystore_obs::Registry;

use crate::cache_node::CacheNode;
use crate::config::{CostModel, FrontendConfig, Nwr, StorageConfig};
use crate::frontend::Frontend;
use crate::message::Msg;
use crate::storage_node::StorageNode;

/// Description of a MyStore deployment.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of storage (DB) nodes.
    pub storage_nodes: usize,
    /// How many of the first storage nodes are gossip seeds.
    pub seed_count: usize,
    /// Virtual nodes per storage node (capacity-proportional; uniform here,
    /// heterogeneous clusters can be built manually).
    pub vnodes: u32,
    /// Per-node capacity weights, indexed like [`ClusterSpec::storage_ids`];
    /// nodes beyond the vector's length get weight 1. A weight-`w` node
    /// contributes `w × vnodes` virtual nodes. Empty = homogeneous.
    pub weights: Vec<u32>,
    /// Migration-engine record budget per tick (`0` with a zero byte budget
    /// keeps the legacy one-shot rebalance sweep). See
    /// [`StorageConfig::migrate_max_records_per_tick`].
    pub migrate_max_records_per_tick: u32,
    /// Migration-engine byte budget per tick.
    pub migrate_max_bytes_per_tick: u64,
    /// Migration tick period (µs).
    pub migrate_tick_us: u64,
    /// Quorum parameters.
    pub nwr: Nwr,
    /// Number of cache servers (0 disables the cache tier).
    pub cache_nodes: usize,
    /// Bytes of memory per cache server.
    pub cache_bytes: usize,
    /// Number of front-end nodes.
    pub frontends: usize,
    /// Concurrent workers per front end (the logical-process pool).
    pub frontend_concurrency: usize,
    /// Maximum in-flight requests per front end before load shedding.
    pub frontend_max_inflight: usize,
    /// Concurrent workers per storage node (cores serving requests).
    pub storage_concurrency: usize,
    /// Gossip round interval (µs).
    pub gossip_interval_us: u64,
    /// Heartbeat silence before a node is considered down (µs).
    pub fail_after_us: u64,
    /// Heartbeat silence before a seed declares long failure (µs).
    pub remove_after_us: u64,
    /// Service-time cost model shared by all nodes.
    pub cost: CostModel,
    /// Coordinator replica-ack soft timeout (µs).
    pub replica_timeout_us: u64,
    /// Coordinator request deadline (µs).
    pub request_deadline_us: u64,
    /// Straggler retries before hinted handoff (see
    /// [`StorageConfig::replica_retry_max`]).
    pub replica_retry_max: u32,
    /// Exponential-backoff base between retries (µs).
    pub retry_backoff_base_us: u64,
    /// Exponential-backoff cap between retries (µs).
    pub retry_backoff_cap_us: u64,
    /// Hint replay interval (µs).
    pub hint_replay_interval_us: u64,
    /// Hinted handoff on/off (ablation A4).
    pub hinted_handoff: bool,
    /// WAL group commit batch size (see [`StorageConfig::group_commit_ops`]);
    /// `1` keeps per-op syncs.
    pub group_commit_ops: usize,
    /// Flush-timer bound on staged frames (µs); see
    /// [`StorageConfig::group_commit_max_delay_us`].
    pub group_commit_max_delay_us: u64,
    /// Coordinator fan-out coalescing window (µs); `0` disables batching
    /// (see [`StorageConfig::coalesce_window_us`]).
    pub coalesce_window_us: u64,
    /// Gossip idle backoff cap (see `GossipConfig::idle_backoff_max`);
    /// `1` keeps the fixed cadence.
    pub gossip_idle_backoff_max: u64,
    /// Anti-entropy idle backoff cap (see
    /// [`StorageConfig::anti_entropy_idle_backoff_max`]); `1` keeps the
    /// fixed cadence.
    pub anti_entropy_idle_backoff_max: u64,
    /// Merkle-tree anti-entropy (see
    /// [`StorageConfig::anti_entropy_merkle`]); default off.
    pub anti_entropy_merkle: bool,
    /// Tombstone-reaper period (µs); `0` disables reaping (see
    /// [`StorageConfig::compaction_interval_us`]).
    pub compaction_interval_us: u64,
    /// Anti-entropy period (µs); `0` disables (see
    /// [`StorageConfig::anti_entropy_interval_us`]).
    pub anti_entropy_interval_us: u64,
}

impl ClusterSpec {
    /// The paper's test topology (Fig. 10): 5 DB nodes (first one the
    /// seed), 4 cache servers (1 GB each, §6.1), 1 application node, and
    /// the deployed `(N, W, R) = (3, 2, 1)` (§6.2).
    pub fn paper_topology() -> Self {
        ClusterSpec {
            storage_nodes: 5,
            seed_count: 1,
            vnodes: 128,
            weights: Vec::new(),
            migrate_max_records_per_tick: 0,
            migrate_max_bytes_per_tick: 0,
            migrate_tick_us: 50_000,
            nwr: Nwr::PAPER,
            cache_nodes: 4,
            cache_bytes: 1 << 30,
            frontends: 1,
            frontend_concurrency: 64,
            frontend_max_inflight: 1024,
            storage_concurrency: 8, // two quad-core Xeons per node (§6.1)
            gossip_interval_us: 500_000,
            fail_after_us: 2_500_000,
            remove_after_us: 20_000_000,
            cost: CostModel::default(),
            replica_timeout_us: 60_000,
            request_deadline_us: 1_000_000,
            replica_retry_max: 2,
            retry_backoff_base_us: 20_000,
            retry_backoff_cap_us: 500_000,
            hint_replay_interval_us: 2_000_000,
            hinted_handoff: true,
            group_commit_ops: 1,
            group_commit_max_delay_us: 2_000,
            coalesce_window_us: 0,
            gossip_idle_backoff_max: 1,
            anti_entropy_idle_backoff_max: 1,
            anti_entropy_merkle: false,
            compaction_interval_us: 60_000_000,
            anti_entropy_interval_us: 30_000_000,
        }
    }

    /// A small fast-converging cluster for tests.
    pub fn small(storage_nodes: usize) -> Self {
        ClusterSpec {
            storage_nodes,
            seed_count: 1,
            vnodes: 32,
            cache_nodes: 0,
            frontends: 0,
            ..Self::paper_topology()
        }
    }

    /// Storage-node ids under the standard layout (`0..S`).
    pub fn storage_ids(&self) -> Vec<NodeId> {
        (0..self.storage_nodes as u32).map(NodeId).collect()
    }

    /// Cache-node ids (`S..S+C`).
    pub fn cache_ids(&self) -> Vec<NodeId> {
        let s = self.storage_nodes as u32;
        (s..s + self.cache_nodes as u32).map(NodeId).collect()
    }

    /// Front-end ids (`S+C..S+C+F`).
    pub fn frontend_ids(&self) -> Vec<NodeId> {
        let base = (self.storage_nodes + self.cache_nodes) as u32;
        (base..base + self.frontends as u32).map(NodeId).collect()
    }

    /// Ids of client slots added *after* the cluster nodes; callers adding
    /// client processes get ids from here upward.
    pub fn first_client_id(&self) -> u32 {
        (self.storage_nodes + self.cache_nodes + self.frontends) as u32
    }

    /// The gossip configuration every node runs.
    pub fn gossip_config(&self) -> GossipConfig {
        GossipConfig {
            interval_us: self.gossip_interval_us,
            fail_after_us: self.fail_after_us,
            remove_after_us: self.remove_after_us,
            seeds: (0..self.seed_count.min(self.storage_nodes) as u32).map(NodeId).collect(),
            extra_fanout: 1,
            idle_backoff_max: self.gossip_idle_backoff_max,
        }
    }

    /// The storage configuration for node construction.
    pub fn storage_config(&self) -> StorageConfig {
        StorageConfig {
            nwr: self.nwr,
            vnodes: self.vnodes,
            weight: 1,
            migrate_max_records_per_tick: self.migrate_max_records_per_tick,
            migrate_max_bytes_per_tick: self.migrate_max_bytes_per_tick,
            migrate_tick_us: self.migrate_tick_us,
            gossip: self.gossip_config(),
            cost: self.cost.clone(),
            replica_timeout_us: self.replica_timeout_us,
            request_deadline_us: self.request_deadline_us,
            replica_retry_max: self.replica_retry_max,
            retry_backoff_base_us: self.retry_backoff_base_us,
            retry_backoff_cap_us: self.retry_backoff_cap_us,
            hint_replay_interval_us: self.hint_replay_interval_us,
            collection: "data".into(),
            hinted_handoff: self.hinted_handoff,
            data_dir: None,
            group_commit_ops: self.group_commit_ops,
            group_commit_max_delay_us: self.group_commit_max_delay_us,
            coalesce_window_us: self.coalesce_window_us,
            compaction_interval_us: self.compaction_interval_us,
            tombstone_grace_us: 300_000_000,
            anti_entropy_interval_us: self.anti_entropy_interval_us,
            anti_entropy_batch: 256,
            anti_entropy_idle_backoff_max: self.anti_entropy_idle_backoff_max,
            anti_entropy_merkle: self.anti_entropy_merkle,
            merkle_leaf_splits: 16,
            metrics: Registry::new(),
        }
    }

    /// The front-end configuration.
    pub fn frontend_config(&self) -> FrontendConfig {
        FrontendConfig {
            storage_nodes: self.storage_ids(),
            cache_nodes: self.cache_ids(),
            max_inflight: self.frontend_max_inflight,
            cost: self.cost.clone(),
            request_deadline_us: self.request_deadline_us * 5,
            redispatch_max: 1,
            max_key_bytes: 1024,
            auth: None,
            metrics: Registry::new(),
        }
    }

    /// Instantiates the deployment on a fresh simulator. Node ids follow
    /// the standard layout (storage, then cache, then front ends); client
    /// processes can be added afterwards, before `sim.start()`.
    pub fn build_sim(&self, sim_config: SimConfig) -> Sim<Msg> {
        self.build_sim_with_metrics(sim_config).0
    }

    /// As [`ClusterSpec::build_sim`], also returning the cluster-wide
    /// metrics [`Registry`]: every node publishes into the same registry,
    /// so one snapshot (or one `GET /_stats` through a front end) covers
    /// the whole deployment.
    pub fn build_sim_with_metrics(&self, sim_config: SimConfig) -> (Sim<Msg>, Registry) {
        let registry = Registry::new();
        let mut sim = Sim::new(sim_config);
        sim.set_fault_metrics(mystore_net::FaultMetrics::from_registry(&registry));
        for i in 0..self.storage_nodes {
            let id = NodeId(sim.node_count() as u32);
            let mut cfg = self.storage_config();
            cfg.weight = self.weights.get(i).copied().unwrap_or(1).max(1);
            cfg.metrics = registry.clone();
            let node = StorageNode::new(id, cfg);
            sim.add_node(node, NodeConfig { concurrency: self.storage_concurrency });
        }
        for _ in 0..self.cache_nodes {
            sim.add_node(
                CacheNode::with_metrics(self.cache_bytes, self.cost.clone(), &registry),
                NodeConfig { concurrency: 4 },
            );
        }
        for _ in 0..self.frontends {
            let mut cfg = self.frontend_config();
            cfg.metrics = registry.clone();
            sim.add_node(Frontend::new(cfg), NodeConfig { concurrency: self.frontend_concurrency });
        }
        (sim, registry)
    }

    /// How long to run the fresh cluster before offering load, so gossip
    /// discovers every member and the rings agree.
    pub fn warmup_us(&self) -> u64 {
        // A few gossip rounds; convergence is O(log n) rounds.
        self.gossip_interval_us * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mystore_net::{FaultPlan, NetConfig};

    fn sim_config(seed: u64) -> SimConfig {
        SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed }
    }

    #[test]
    fn id_layout_is_contiguous() {
        let spec = ClusterSpec::paper_topology();
        assert_eq!(spec.storage_ids(), (0..5).map(NodeId).collect::<Vec<_>>());
        assert_eq!(spec.cache_ids(), (5..9).map(NodeId).collect::<Vec<_>>());
        assert_eq!(spec.frontend_ids(), vec![NodeId(9)]);
        assert_eq!(spec.first_client_id(), 10);
    }

    #[test]
    fn rings_converge_after_warmup() {
        let spec = ClusterSpec::small(5);
        let mut sim = spec.build_sim(sim_config(42));
        sim.start();
        sim.run_for(spec.warmup_us());
        // Every storage node should see all five members on its ring.
        for id in spec.storage_ids() {
            let node = sim.process::<crate::storage_node::StorageNode>(id).unwrap();
            assert_eq!(node.ring().len(), 5, "node {id} ring incomplete");
        }
        // And the rings must agree on placement.
        let key = b"agreement-check";
        let mut prefs = Vec::new();
        for id in spec.storage_ids() {
            let node = sim.process::<crate::storage_node::StorageNode>(id).unwrap();
            prefs.push(node.ring().preference_list(key, 3));
        }
        for w in prefs.windows(2) {
            assert_eq!(w[0], w[1], "nodes disagree on placement");
        }
    }
}
