//! The tombstone reaper: logical deletes (§3.3) are physically reclaimed
//! only after the grace period, cluster-wide.

use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_core::StorageNode as Node;
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig};

fn build(grace_us: u64, interval_us: u64) -> (Sim<Msg>, ClusterSpec, NodeId) {
    let spec = ClusterSpec::small(5);
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed: 8 });
    for i in 0..spec.storage_nodes as u32 {
        let mut cfg = spec.storage_config();
        cfg.compaction_interval_us = interval_us;
        cfg.tombstone_grace_us = grace_us;
        sim.add_node(Node::new(NodeId(i), cfg), NodeConfig { concurrency: 4 });
    }
    let warm = spec.warmup_us();
    let probe = sim.add_node(
        Probe::new(vec![
            (
                warm,
                NodeId(0),
                Msg::Put {
                    req: 1,
                    key: "victim".into(),
                    value: b"x".to_vec().into(),
                    delete: false,
                },
            ),
            (
                warm + 500_000,
                NodeId(1),
                Msg::Put { req: 2, key: "victim".into(), value: vec![].into(), delete: true },
            ),
            (
                warm + 500_000,
                NodeId(2),
                Msg::Put {
                    req: 3,
                    key: "keeper".into(),
                    value: b"y".to_vec().into(),
                    delete: false,
                },
            ),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    (sim, spec, probe)
}

fn tombstones(sim: &Sim<Msg>, spec: &ClusterSpec, key: &str) -> usize {
    spec.storage_ids()
        .iter()
        .filter(|&&id| {
            sim.process::<Node>(id).unwrap().db().get_record("data", key).ok().flatten().is_some()
        })
        .count()
}

#[test]
fn tombstones_survive_the_grace_period_then_vanish() {
    // Grace 10 s, reap every 3 s.
    let (mut sim, spec, probe) = build(10_000_000, 3_000_000);
    sim.run_for(spec.warmup_us() + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 3);
    // Freshly deleted: the tombstone is still physically present.
    assert!(tombstones(&sim, &spec, "victim") >= 2, "tombstone must exist during grace");

    // Well past the grace period: physically gone everywhere.
    sim.run_for(20_000_000);
    assert_eq!(tombstones(&sim, &spec, "victim"), 0, "tombstone must be reaped");
    assert!(sim.trace().count("tombstones_reaped") >= 1);
    // Live records are untouched.
    assert!(tombstones(&sim, &spec, "keeper") >= 3);
}

#[test]
fn reaper_disabled_keeps_tombstones_forever() {
    let (mut sim, spec, _) = build(10_000_000, 0);
    sim.run_for(spec.warmup_us() + 40_000_000);
    assert!(tombstones(&sim, &spec, "victim") >= 2, "no reaping when disabled");
    assert_eq!(sim.trace().count("tombstones_reaped"), 0);
}

#[test]
fn reaped_key_still_reads_as_absent() {
    let (mut sim, spec, _) = build(5_000_000, 2_000_000);
    sim.run_for(spec.warmup_us() + 20_000_000);
    assert_eq!(tombstones(&sim, &spec, "victim"), 0);
    // Inject a read directly and watch the coordinator's counters: the
    // quorum read must complete (reporting not-found) rather than fail.
    let before = sim.process::<Node>(NodeId(3)).unwrap().stats().gets_ok;
    sim.inject(sim.now() + 1, NodeId(3), Msg::Get { req: 42, key: "victim".into() });
    sim.run_for(2_000_000);
    let node = sim.process::<Node>(NodeId(3)).unwrap();
    assert_eq!(node.stats().gets_ok, before + 1, "read must complete (as not-found)");
}
