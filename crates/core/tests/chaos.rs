//! Seeded chaos runs on the deterministic simulator: a scripted fault
//! schedule kills one of N=3 replicas mid-workload, and the cluster must
//! sustain W=2 writes and R=1 reads with zero client-visible errors, park
//! hints for the dead replica, and replay them once it rejoins — all
//! observable through the shared metrics registry (`/_stats`).

use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_net::{
    FaultPlan, FaultSchedule, LinkFaultRule, NetConfig, NodeConfig, NodeId, Sim, SimConfig, SimTime,
};
use mystore_obs::Registry;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed }
}

fn put(req: u64, key: &str, value: &[u8]) -> Msg {
    Msg::Put { req, key: key.into(), value: value.to_vec().into(), delete: false }
}

fn get(req: u64, key: &str) -> Msg {
    Msg::Get { req, key: key.into() }
}

/// Builds a 3-node storage cluster plus a probe, sharing one registry.
fn chaos_cluster(
    seed: u64,
    script: Vec<(u64, NodeId, Msg)>,
) -> (Sim<Msg>, Registry, ClusterSpec, NodeId) {
    let spec = ClusterSpec::small(3);
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(seed));
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    (sim, registry, spec, probe)
}

fn total_hints(sim: &Sim<Msg>, spec: &ClusterSpec) -> usize {
    spec.storage_ids().iter().map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count()).sum()
}

fn total_inflight_replays(sim: &Sim<Msg>, spec: &ClusterSpec) -> usize {
    spec.storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().inflight_hint_replays())
        .sum()
}

/// The PR's acceptance scenario: a parsed fault schedule kills replica 2
/// for six seconds in the middle of a write workload. Every PUT (W=2) and
/// every GET (R=1) must succeed, hints must be parked and then replayed to
/// the rejoined node, and the `fault.*` / `hint.*` counters must record it.
#[test]
fn seeded_chaos_kill_sustains_quorum_with_zero_client_errors() {
    let warm = 5_000_000u64;
    // 30 writes through the two surviving coordinators spanning the crash
    // window, then reads once the victim is back and hints have replayed.
    let mut script: Vec<(u64, NodeId, Msg)> = (0..30u64)
        .map(|i| {
            (warm + 500_000 + i * 100_000, NodeId((i % 2) as u32), put(i, &format!("c{i}"), b"v"))
        })
        .collect();
    for i in 0..30u64 {
        script.push((
            16_000_000 + i * 20_000,
            NodeId(((i + 1) % 2) as u32),
            get(100 + i, &format!("c{i}")),
        ));
    }
    let (mut sim, registry, spec, probe) = chaos_cluster(777, script);

    // Scripted fault: node 2 dies at t=6s and restarts at t=12s.
    let schedule = FaultSchedule::parse("6000000 crash 2 6000000").expect("valid schedule");
    sim.apply_schedule(&schedule);
    sim.start();
    sim.run_for(20_000_000);

    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(
        p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })),
        30,
        "every W=2 write must succeed despite the dead replica"
    );
    assert_eq!(
        p.count_where(|m| matches!(m, Msg::GetResp { result: Ok(Some(_)), .. })),
        30,
        "every R=1 read must return the value"
    );
    assert_eq!(
        p.count_where(|m| matches!(
            m,
            Msg::PutResp { result: Err(_), .. } | Msg::GetResp { result: Err(_), .. }
        )),
        0,
        "zero client-visible errors"
    );

    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("fault.crashes").copied(), Some(1));
    assert_eq!(snap.counters.get("fault.restarts").copied(), Some(1));
    assert!(snap.counters.get("node.restarts").copied().unwrap_or(0) >= 1);
    assert!(
        snap.counters.get("hint.stored").copied().unwrap_or(0) >= 1,
        "writes during the outage must park hints: {:?}",
        snap.counters
    );
    assert!(
        snap.counters.get("hint.replayed").copied().unwrap_or(0) >= 1,
        "hints must replay after the node rejoins: {:?}",
        snap.counters
    );
    assert_eq!(
        snap.gauges.get("hint.queue_depth").copied(),
        Some(0),
        "hint queue must drain after replay"
    );
    assert_eq!(total_hints(&sim, &spec), 0);

    // With 3 nodes every key has all three as replicas: WAL replay plus
    // hint replay must leave the rejoined victim fully caught up.
    assert_eq!(
        sim.process::<StorageNode>(NodeId(2)).unwrap().record_count(),
        30,
        "victim must hold every record after WAL replay + hint replay"
    );
}

/// Conditional puts under the PR-2 acceptance chaos: the same seeded
/// kill-1-of-3 schedule, but the workload is a chain of CAS operations —
/// each conditions on the version the previous one produced. With the
/// client as the only writer, every predicate must hold: zero conflicts,
/// zero errors, across the crash window (W=2 still reachable) and the
/// rejoin. Afterwards hint replay must leave the rejoined victim holding
/// the final version.
#[test]
fn seeded_chaos_kill_sustains_cas_chain_with_zero_client_errors() {
    use mystore_core::testing::CasProbe;

    let warm = 5_000_000u64;
    let spec = ClusterSpec::small(3);
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(777));
    // 60 chained CAS ops at 150 ms intervals: starts before the crash,
    // spans the 6s–12s outage, finishes after the victim rejoins.
    let probe = sim.add_node(
        CasProbe::new(vec![NodeId(0), NodeId(1)], "cas-chain", warm + 500_000, 60),
        NodeConfig::default(),
    );
    let schedule = FaultSchedule::parse("6000000 crash 2 6000000").expect("valid schedule");
    sim.apply_schedule(&schedule);
    sim.start();
    sim.run_for(20_000_000);

    let p = sim.process::<CasProbe>(probe).unwrap();
    assert_eq!(
        p.oks, 60,
        "every conditional put must succeed: ok={} conflicts={} errors={}",
        p.oks, p.conflicts, p.errors
    );
    assert_eq!(p.conflicts, 0, "a single sequential writer must never see a conflict");
    assert_eq!(p.errors, 0, "zero client-visible errors through the crash window");

    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("cas.ok").copied(), Some(60));
    assert_eq!(snap.counters.get("cas.conflicts").copied().unwrap_or(0), 0);
    assert_eq!(snap.counters.get("fault.crashes").copied(), Some(1));
    assert!(
        snap.counters.get("hint.stored").copied().unwrap_or(0) >= 1,
        "CAS writes during the outage must park hints: {:?}",
        snap.counters
    );

    // The rejoined victim must converge on the chain's final version.
    let rec = sim
        .process::<StorageNode>(NodeId(2))
        .unwrap()
        .db()
        .get_record("data", "cas-chain")
        .unwrap()
        .expect("victim must hold the record after hint replay");
    assert_eq!(rec.version, p.expected, "victim must hold the final CAS version");
}

/// Group commit + fan-out coalescing under a mid-workload crash: bursts of
/// writes ride batched replica messages and shared WAL syncs, replica 2
/// dies inside the commit window (its staged, unsynced frames are discarded
/// by the crash model), and every *acked* write must still be readable
/// afterwards — only unacked writes may land on either side of the crash.
#[test]
fn group_commit_crash_loses_only_unacked_writes() {
    let warm = 5_000_000u64;
    // Six bursts of five writes each: a burst shares one coalescing window,
    // so the two remote replicas each see one batched message per burst.
    let mut script: Vec<(u64, NodeId, Msg)> = Vec::new();
    for burst in 0..6u64 {
        for j in 0..5u64 {
            let i = burst * 5 + j;
            script.push((
                warm + 500_000 + burst * 200_000,
                NodeId((burst % 2) as u32),
                put(i, &format!("gc{i}"), b"batched"),
            ));
        }
    }
    for i in 0..30u64 {
        script.push((
            16_000_000 + i * 20_000,
            NodeId(((i + 1) % 2) as u32),
            get(100 + i, &format!("gc{i}")),
        ));
    }
    let spec = ClusterSpec {
        group_commit_ops: 8,
        group_commit_max_delay_us: 2_000,
        coalesce_window_us: 500,
        ..ClusterSpec::small(3)
    };
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(4311));
    let probe = sim.add_node(Probe::new(script), mystore_net::NodeConfig::default());
    // Node 2 dies mid-workload — inside the group-commit window of the
    // burst in flight — and rejoins at t = 12s.
    let schedule = FaultSchedule::parse("6000000 crash 2 6000000").expect("valid schedule");
    sim.apply_schedule(&schedule);
    sim.start();
    sim.run_for(20_000_000);

    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(
        p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })),
        30,
        "every W=2 write must succeed despite the crash"
    );
    assert_eq!(
        p.count_where(|m| matches!(m, Msg::GetResp { result: Ok(Some(_)), .. })),
        30,
        "every acked write must survive the crash inside the commit window"
    );
    assert_eq!(
        p.count_where(|m| matches!(
            m,
            Msg::PutResp { result: Err(_), .. } | Msg::GetResp { result: Err(_), .. }
        )),
        0,
        "zero client-visible errors"
    );

    let snap = registry.snapshot();
    let appends = snap.counters.get("wal.appends").copied().unwrap_or(0);
    let fsyncs = snap.counters.get("wal.fsyncs").copied().unwrap_or(0);
    assert!(fsyncs < appends, "group commit must batch syncs: {fsyncs}/{appends}");
    let batch_msgs = snap.counters.get("batch.replica_msgs").copied().unwrap_or(0);
    let batch_ops = snap.counters.get("batch.replica_ops").copied().unwrap_or(0);
    assert!(batch_msgs >= 1, "coalescing must send batched messages: {:?}", snap.counters);
    assert!(batch_ops > batch_msgs, "batches must carry more ops than messages");
    assert!(
        snap.counters.get("coord.acks_deferred").copied().unwrap_or(0) >= 1,
        "staged local writes must defer their acks until the covering sync"
    );

    // Read repair + hint replay must leave the rejoined victim caught up.
    assert_eq!(
        sim.process::<StorageNode>(NodeId(2)).unwrap().record_count(),
        30,
        "victim must hold every record after recovery"
    );
}

/// Regression for the hint-ack leak: the replay target dies again while a
/// replayed hint is in flight. The in-flight entry must be swept after the
/// request deadline (not leak forever), the hint must stay parked, and a
/// later replay must re-deliver it once the target is back for good.
#[test]
fn hint_replay_to_node_killed_mid_replay_is_swept_and_redelivered() {
    let warm = 5_000_000u64;
    let (mut sim, registry, spec, probe) = chaos_cluster(
        778,
        vec![(warm + 500_000, NodeId(0), put(1, "leaky-hint", b"redeliver-me"))],
    );
    // Victim 2 is down for the write (hint parked on coordinator 0), comes
    // back at 7.2s — but the hint holder's 6s replay tick fires while the
    // holder still believes it alive (gossip has not yet declared it down),
    // so that replayed hint is lost against the crashed node.
    sim.schedule_crash(SimTime(warm + 200_000), NodeId(2), Some(2_000_000));
    sim.start();
    sim.run_for(6_500_000);

    assert!(total_hints(&sim, &spec) >= 1, "hint must be parked while the victim is down");
    assert_eq!(
        total_inflight_replays(&sim, &spec),
        1,
        "the 6s replay tick must have a hint in flight against the crashed node"
    );

    // Later ticks sweep the expired in-flight entry and re-deliver once the
    // restarted victim is seen alive again.
    sim.run_for(8_500_000);
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("hint.replay_expired").copied().unwrap_or(0) >= 1,
        "expired in-flight replay must be swept, not leaked: {:?}",
        snap.counters
    );
    assert!(snap.counters.get("hint.replayed").copied().unwrap_or(0) >= 1);
    assert_eq!(total_inflight_replays(&sim, &spec), 0, "no in-flight entries may leak");
    assert_eq!(total_hints(&sim, &spec), 0, "hint must be discharged after re-delivery");
    assert_eq!(snap.gauges.get("hint.queue_depth").copied(), Some(0));
    let rec = sim.process::<StorageNode>(NodeId(2)).unwrap().db().get_record("data", "leaky-hint");
    assert!(rec.unwrap().is_some(), "the hint must reach the restarted victim");
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
}

/// Regression for the `hint.queue_depth` underflow: with every message
/// between storage nodes duplicated, hint replays and their acks arrive
/// twice. The double discharge must be ignored (the hint is only removed
/// once) and the gauge must never go negative.
#[test]
fn duplicated_acks_never_drive_hint_queue_depth_negative() {
    let warm = 5_000_000u64;
    let (mut sim, registry, spec, _probe) =
        chaos_cluster(779, vec![(warm + 500_000, NodeId(0), put(1, "dup-hint", b"once-only"))]);
    let dup = LinkFaultRule { p_dup: 1.0, ..LinkFaultRule::none() };
    for a in 0..3u32 {
        for b in (a + 1)..3u32 {
            sim.schedule_chaos(SimTime(0), NodeId(a), NodeId(b), dup);
        }
    }
    sim.schedule_crash(SimTime(warm + 200_000), NodeId(2), Some(3_000_000));
    sim.start();

    for _ in 0..32 {
        sim.run_for(500_000);
        let depth = registry.snapshot().gauges.get("hint.queue_depth").copied().unwrap_or(0);
        assert!(depth >= 0, "hint.queue_depth went negative: {depth}");
    }

    let snap = registry.snapshot();
    assert!(snap.counters.get("fault.msg.duplicated").copied().unwrap_or(0) >= 1);
    assert!(snap.counters.get("hint.replayed").copied().unwrap_or(0) >= 1);
    assert_eq!(snap.gauges.get("hint.queue_depth").copied(), Some(0));
    assert_eq!(total_hints(&sim, &spec), 0);
    let rec = sim.process::<StorageNode>(NodeId(2)).unwrap().db().get_record("data", "dup-hint");
    assert!(rec.unwrap().is_some());
}

/// A crashed node loses its in-memory state; on restart it must rebuild the
/// database by replaying its WAL and rejoin gossip with a bumped boot
/// generation (peers must not treat it as the dead incarnation).
#[test]
fn crash_restart_replays_wal_and_rejoins_with_bumped_generation() {
    let warm = 5_000_000u64;
    let script: Vec<(u64, NodeId, Msg)> = (0..20u64)
        .map(|i| (warm + i * 50_000, NodeId((i % 2) as u32), put(i, &format!("w{i}"), b"durable")))
        .collect();
    let (mut sim, registry, _spec, probe) = chaos_cluster(780, script);
    sim.start();
    // All writes fully replicate while everyone is up.
    sim.run_for(warm + 3_000_000);
    assert_eq!(sim.process::<StorageNode>(NodeId(2)).unwrap().record_count(), 20);

    // Crash + restart; no writes happen while it is down, so everything it
    // has afterwards came from its own log replay.
    sim.schedule_crash(sim.now() + 1, NodeId(2), Some(3_000_000));
    sim.run_for(20_000_000);

    assert_eq!(
        sim.process::<StorageNode>(NodeId(2)).unwrap().record_count(),
        20,
        "restart must replay the WAL, not come back empty"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("node.restarts").copied(), Some(1));
    // The restarted node rejoined (peers see it up again) rather than being
    // stuck as a stale incarnation.
    for id in [NodeId(0), NodeId(1)] {
        assert!(
            sim.process::<StorageNode>(id).unwrap().believes_alive(NodeId(2)),
            "{id} must see the restarted node alive"
        );
    }
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 20);
}

/// The same seed and fault schedule must produce the identical run — the
/// whole point of seeded chaos: any failure is replayable.
#[test]
fn chaos_run_is_deterministic_for_a_seed() {
    let run = || {
        let warm = 5_000_000u64;
        let script: Vec<(u64, NodeId, Msg)> = (0..20u64)
            .map(|i| (warm + i * 100_000, NodeId(0), put(i, &format!("det{i}"), b"v")))
            .collect();
        let (mut sim, registry, spec, _probe) = chaos_cluster(4242, script);
        // A lossy coordinator↔replica link plus a mid-workload crash.
        let lossy = LinkFaultRule { p_drop: 0.4, ..LinkFaultRule::none() };
        sim.schedule_chaos(SimTime(0), NodeId(0), NodeId(1), lossy);
        sim.schedule_crash(SimTime(warm + 900_000), NodeId(2), Some(4_000_000));
        sim.start();
        sim.run_for(20_000_000);
        let counts: Vec<usize> = spec
            .storage_ids()
            .iter()
            .map(|&id| sim.process::<StorageNode>(id).unwrap().record_count())
            .collect();
        let snap = registry.snapshot();
        (
            counts,
            snap.counters.get("fault.msg.dropped").copied().unwrap_or(0),
            snap.counters.get("retry.put.resends").copied().unwrap_or(0),
            snap.counters.get("hint.replayed").copied().unwrap_or(0),
        )
    };
    let first = run();
    assert!(first.1 >= 1, "the lossy link must drop something: {first:?}");
    assert!(first.2 >= 1, "dropped replica ops must trigger retries: {first:?}");
    assert_eq!(first, run(), "same seed + same schedule must replay identically");
}

/// Strong determinism regression: the *entire* observable output of a
/// chaos run — every trace event in order, every counter, every gauge,
/// and every histogram count — must be byte-identical across two runs
/// with the same seed and schedule. This is what catches nondeterminism
/// that aggregate checks miss: a `HashMap` iteration feeding fan-out
/// order, a wall-clock read leaking into an id, a racy tick.
///
/// Histogram sums/percentiles are deliberately excluded: duration
/// metrics (`wal.append_us`, `wal.sync_us`) are measured with a real
/// stopwatch, so their *values* vary run-to-run while their *counts*
/// must not.
#[test]
fn full_trace_and_metrics_replay_identically_for_a_seed() {
    let run = || {
        let warm = 5_000_000u64;
        let mut script: Vec<(u64, NodeId, Msg)> = (0..25u64)
            .map(|i| {
                (warm + i * 80_000, NodeId((i % 2) as u32), put(i, &format!("tr{i}"), b"trace"))
            })
            .collect();
        for i in 0..25u64 {
            script.push((
                15_000_000 + i * 30_000,
                NodeId(((i + 1) % 2) as u32),
                get(100 + i, &format!("tr{i}")),
            ));
        }
        let (mut sim, registry, spec, _probe) = chaos_cluster(9182, script);
        // Loss, duplication, and a crash/restart all in one schedule so the
        // run exercises retries, hint parking, replay, and WAL recovery.
        let lossy = LinkFaultRule { p_drop: 0.3, p_dup: 0.2, ..LinkFaultRule::none() };
        sim.schedule_chaos(SimTime(0), NodeId(0), NodeId(1), lossy);
        sim.schedule_crash(SimTime(warm + 700_000), NodeId(2), Some(4_000_000));
        sim.start();
        sim.run_for(20_000_000);

        let mut out = String::new();
        for e in sim.trace().events() {
            // `to_bits` so two runs must agree on the exact f64, not a
            // formatted approximation.
            out.push_str(&format!(
                "ev {} {} {} {:#x}\n",
                e.time.0,
                e.node.0,
                e.name,
                e.value.to_bits()
            ));
        }
        let snap = registry.snapshot();
        for (name, v) in &snap.counters {
            out.push_str(&format!("ctr {name} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for (name, h) in &snap.histograms {
            out.push_str(&format!("hist {name} count={}\n", h.count));
        }
        for &id in &spec.storage_ids() {
            let n = sim.process::<StorageNode>(id).unwrap();
            out.push_str(&format!("records {} {}\n", id.0, n.record_count()));
        }
        out
    };
    let first = run();
    assert!(first.contains("ctr fault.msg.dropped"), "chaos must actually bite:\n{first}");
    let second = run();
    if first != second {
        // Point at the first divergent line rather than dumping both runs.
        let diverged = first
            .lines()
            .zip(second.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("run1: {a}\nrun2: {b}"))
            .unwrap_or_else(|| "traces differ in length".to_string());
        panic!("same seed produced a different run:\n{diverged}");
    }
}
