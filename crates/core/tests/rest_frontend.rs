//! End-to-end REST flows through the full Fig. 10 topology: front end +
//! cache tier + storage module, plus auth and load shedding.

use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_core::{sign_request, AuthConfig, Frontend};
use mystore_net::{FaultPlan, NetConfig, NodeConfig, SimConfig};

fn sim_config(seed: u64) -> SimConfig {
    SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed }
}

fn rest(req: u64, method: Method, key: Option<&str>, body: &[u8]) -> Msg {
    Msg::RestReq(RestRequest {
        req,
        method,
        key: key.map(str::to_string),
        body: body.to_vec().into(),
        if_match: None,
        auth: None,
    })
}

fn resp_status(msg: &Msg) -> Option<u16> {
    match msg {
        Msg::RestResp(r) => Some(r.status),
        _ => None,
    }
}

#[test]
fn full_topology_get_post_delete() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(sim_config(21));
    let probe = sim.add_node(
        Probe::new(vec![
            // POST with key, then GET twice (second should hit cache),
            // DELETE, then GET again (404).
            (warm, fe, rest(1, Method::Post, Some("scene-1"), b"<xml>circuit</xml>")),
            (warm + 400_000, fe, rest(2, Method::Get, Some("scene-1"), b"")),
            (warm + 800_000, fe, rest(3, Method::Get, Some("scene-1"), b"")),
            (warm + 1_200_000, fe, rest(4, Method::Delete, Some("scene-1"), b"")),
            (warm + 1_600_000, fe, rest(5, Method::Get, Some("scene-1"), b"")),
            // Key-less POST: creation with assigned key.
            (warm + 2_000_000, fe, rest(6, Method::Post, None, b"fresh")),
            // DELETE without key: bad request.
            (warm + 2_400_000, fe, rest(7, Method::Delete, None, b"")),
            // GET of a never-written key: 404.
            (warm + 2_800_000, fe, rest(8, Method::Get, Some("ghost"), b"")),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 5_000_000);
    let p = sim.process::<Probe>(probe).unwrap();

    assert_eq!(p.response_for(1).and_then(resp_status), Some(status::OK));
    match p.response_for(2) {
        Some(Msg::RestResp(r)) => {
            assert_eq!(r.status, status::OK);
            assert_eq!(*r.body, b"<xml>circuit</xml>");
        }
        other => panic!("{other:?}"),
    }
    match p.response_for(3) {
        Some(Msg::RestResp(r)) => {
            assert_eq!(r.status, status::OK);
            assert!(r.from_cache, "second GET must be served from cache");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(p.response_for(4).and_then(resp_status), Some(status::OK));
    assert_eq!(p.response_for(5).and_then(resp_status), Some(status::NOT_FOUND));
    match p.response_for(6) {
        Some(Msg::RestResp(r)) => {
            assert_eq!(r.status, status::CREATED);
            assert!(r.assigned_key.is_some(), "creation must return the generated key");
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(p.response_for(7).and_then(resp_status), Some(status::BAD_REQUEST));
    assert_eq!(p.response_for(8).and_then(resp_status), Some(status::NOT_FOUND));
    // Cache accounting: exactly one hit.
    assert!(sim.trace().count("cache_hit") >= 1);
}

#[test]
fn post_populates_cache_for_subsequent_get() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(sim_config(22));
    let probe = sim.add_node(
        Probe::new(vec![
            (warm, fe, rest(1, Method::Post, Some("warmed"), b"cached-by-write")),
            (warm + 500_000, fe, rest(2, Method::Get, Some("warmed"), b"")),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    match p.response_for(2) {
        Some(Msg::RestResp(r)) => {
            assert_eq!(r.status, status::OK);
            assert!(r.from_cache, "write path must have populated the cache (§4 POST)");
            assert_eq!(*r.body, b"cached-by-write");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn auth_rejects_unsigned_and_wrong_signatures() {
    let mut spec = ClusterSpec::paper_topology();
    spec.frontends = 0; // we add a custom-auth front end manually
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(sim_config(23));
    let mut fe_cfg = spec.frontend_config();
    fe_cfg.auth = Some(AuthConfig::default().with_user("alice", "s3cret"));
    let mut fe_proc = Frontend::new(fe_cfg);
    let token_good = fe_proc.issue_token("alice");
    let token_for_get = fe_proc.issue_token("alice");
    let fe = sim.add_node(fe_proc, NodeConfig { concurrency: 8 });

    let good_sig = sign_request(&token_good, "/data/secured", "s3cret");
    let bad_sig = sign_request(&token_for_get, "/data/secured", "wrong-secret");
    let good_get = sign_request(&token_for_get, "/data/secured", "s3cret");
    let probe = sim.add_node(
        Probe::new(vec![
            // Unsigned: 401.
            (warm, fe, rest(1, Method::Get, Some("secured"), b"")),
            // Properly signed POST: accepted.
            (
                warm + 300_000,
                fe,
                Msg::RestReq(RestRequest {
                    req: 2,
                    method: Method::Post,
                    key: Some("secured".into()),
                    body: b"top secret".to_vec().into(),
                    if_match: None,
                    auth: Some(("alice".into(), good_sig)),
                }),
            ),
            // Bad digest: 401.
            (
                warm + 600_000,
                fe,
                Msg::RestReq(RestRequest {
                    req: 3,
                    method: Method::Get,
                    key: Some("secured".into()),
                    body: Default::default(),
                    if_match: None,
                    auth: Some(("alice".into(), bad_sig)),
                }),
            ),
            // Correctly signed GET: 200.
            (
                warm + 900_000,
                fe,
                Msg::RestReq(RestRequest {
                    req: 4,
                    method: Method::Get,
                    key: Some("secured".into()),
                    body: Default::default(),
                    if_match: None,
                    auth: Some(("alice".into(), good_get)),
                }),
            ),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 3_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    let st = |req| match p.response_for(req) {
        Some(Msg::RestResp(r)) => r.status,
        other => panic!("req {req}: {other:?}"),
    };
    assert_eq!(st(1), status::UNAUTHORIZED);
    assert_eq!(st(2), status::OK);
    assert_eq!(st(3), status::UNAUTHORIZED);
    assert_eq!(st(4), status::OK);
    let fe_stats = sim.process::<Frontend>(fe).unwrap().stats();
    assert_eq!(fe_stats.auth_failures, 2);
}

#[test]
fn overload_sheds_with_busy() {
    let mut spec = ClusterSpec::paper_topology();
    spec.frontend_max_inflight = 4;
    spec.frontends = 1;
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(sim_config(24));
    // 50 large POSTs at the same instant; with only 4 in-flight slots most
    // must be shed.
    let script: Vec<_> = (0..50u64)
        .map(|i| (warm, fe, rest(i, Method::Post, Some(&format!("burst{i}")), &vec![0u8; 100_000])))
        .collect();
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.start();
    sim.run_for(warm + 10_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    let busy = p.count_where(|m| matches!(m, Msg::RestResp(r) if r.status == status::BUSY));
    let ok = p.count_where(|m| matches!(m, Msg::RestResp(r) if r.status == status::OK));
    assert!(busy > 0, "load shedding expected");
    assert!(ok >= 4, "admitted requests should finish");
    assert_eq!(busy + ok, 50);
    assert_eq!(sim.process::<Frontend>(fe).unwrap().stats().shed as usize, busy);
}

#[test]
fn storage_failure_maps_to_500() {
    // Front end with no storage nodes configured: every request fails fast.
    let mut spec = ClusterSpec::paper_topology();
    spec.frontends = 0;
    spec.cache_nodes = 0;
    spec.storage_nodes = 1;
    let mut sim = spec.build_sim(sim_config(25));
    let mut cfg = spec.frontend_config();
    cfg.storage_nodes = vec![];
    cfg.cache_nodes = vec![];
    let fe = sim.add_node(Frontend::new(cfg), NodeConfig::default());
    let probe = sim.add_node(
        Probe::new(vec![(100_000, fe, rest(1, Method::Post, Some("x"), b"y"))]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(
        p.response_for(1).and_then(|m| match m {
            Msg::RestResp(r) => Some(r.status),
            _ => None,
        }),
        Some(status::STORAGE_ERROR)
    );
}

#[test]
fn runtime_token_flow_completes_the_fig2_loop() {
    use mystore_core::{sign_request, AuthConfig, Frontend};
    let mut spec = ClusterSpec::paper_topology();
    spec.frontends = 0;
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(sim_config(26));
    let mut cfg = spec.frontend_config();
    cfg.auth = Some(AuthConfig::default().with_user("alice", "s3cret"));
    let fe = sim.add_node(Frontend::new(cfg), NodeConfig { concurrency: 8 });

    // Phase 1: ask the TOKEN DB for tokens (one valid user, one unknown).
    let probe = sim.add_node(
        Probe::new(vec![
            (warm, fe, Msg::TokenReq { req: 1, user: "alice".into() }),
            (warm, fe, Msg::TokenReq { req: 2, user: "mallory".into() }),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 1_000_000);
    let token = match sim.process::<Probe>(probe).unwrap().response_for(1) {
        Some(Msg::TokenResp { token: Some(t), .. }) => t.clone(),
        other => panic!("token issue failed: {other:?}"),
    };
    assert!(
        matches!(
            sim.process::<Probe>(probe).unwrap().response_for(2),
            Some(Msg::TokenResp { token: None, .. })
        ),
        "unknown users must not get tokens"
    );

    // Phase 2: use the token to sign a request (computed outside the sim,
    // as a real client library would) and inject it; success is observable
    // in the front-end counters and the stored record.
    let sig = sign_request(&token, "/data/fig2", "s3cret");
    sim.inject(
        sim.now() + 1,
        fe,
        Msg::RestReq(RestRequest {
            req: 3,
            method: Method::Post,
            key: Some("fig2".into()),
            body: b"signed with a runtime token".to_vec().into(),
            if_match: None,
            auth: Some(("alice".into(), sig)),
        }),
    );
    sim.run_for(3_000_000);
    let stats = sim.process::<Frontend>(fe).unwrap().stats();
    assert_eq!(stats.auth_failures, 0, "the runtime token must verify");
    assert_eq!(stats.admitted, 1);
    let copies = spec
        .storage_ids()
        .iter()
        .filter(|&&id| {
            sim.process::<StorageNode>(id)
                .unwrap()
                .db()
                .get_record("data", "fig2")
                .ok()
                .flatten()
                .is_some()
        })
        .count();
    assert!(copies >= 2, "the signed write must have replicated ({copies} copies)");
}

#[test]
fn stats_endpoint_reports_quorum_counters_after_traffic() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(31));
    let probe = sim.add_node(
        Probe::new(vec![
            // A cold `/_stats` works before any traffic...
            (warm, fe, rest(1, Method::Get, Some("_stats"), b"")),
            // ...then drive one quorum write, and one quorum read via a
            // key the cache tier has never seen (a cached key would be
            // answered by a cache server without touching storage).
            (warm + 400_000, fe, rest(2, Method::Post, Some("observed"), b"payload")),
            (warm + 800_000, fe, rest(3, Method::Get, Some("uncached"), b"")),
            (warm + 1_600_000, fe, rest(4, Method::Get, Some("_stats"), b"")),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 4_000_000);
    let p = sim.process::<Probe>(probe).unwrap();

    // The cold snapshot is valid JSON with empty-but-present sections.
    let cold = match p.response_for(1) {
        Some(Msg::RestResp(r)) if r.status == status::OK => {
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap()
        }
        other => panic!("cold /_stats: {other:?}"),
    };
    assert!(cold["counters"].as_object().is_some());

    let warm_stats = match p.response_for(4) {
        Some(Msg::RestResp(r)) if r.status == status::OK => {
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap()
        }
        other => panic!("warm /_stats: {other:?}"),
    };
    // Quorum counters advanced and the latency histograms carry samples
    // with percentile summaries.
    assert!(warm_stats["counters"]["quorum.write.ok"].as_f64().unwrap() >= 1.0);
    assert!(warm_stats["counters"]["quorum.read.ok"].as_f64().unwrap() >= 1.0);
    assert!(warm_stats["counters"]["frontend.admitted"].as_f64().unwrap() >= 2.0);
    let wlat = &warm_stats["histograms"]["quorum.write.latency_us"];
    assert!(wlat["count"].as_f64().unwrap() >= 1.0);
    assert!(wlat["p50"].as_f64().unwrap() > 0.0);
    assert!(wlat["p99"].as_f64().unwrap() >= wlat["p50"].as_f64().unwrap());
    // The REST body agrees with a direct registry snapshot.
    let direct = registry.snapshot();
    assert!(direct.counters["quorum.write.ok"] >= 1);
    assert!(direct.counters["wal.appends"] >= 1, "WAL metrics flow into the same registry");
}

fn rest_if_match(req: u64, method: Method, key: Option<&str>, body: &[u8], pred: &str) -> Msg {
    Msg::RestReq(RestRequest {
        req,
        method,
        key: key.map(str::to_string),
        body: body.to_vec().into(),
        if_match: Some(pred.into()),
        auth: None,
    })
}

/// Malformed requests must be rejected at the front door: `400` to the
/// client AND nothing forwarded to storage — the quorum `started` counters
/// must not move. (A rejection that still costs a quorum round-trip is a
/// denial-of-service amplifier.)
#[test]
fn malformed_requests_get_400_without_touching_storage() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(51));
    let oversized_key = "k".repeat(2048); // frontend_config caps at 1024
    let probe = sim.add_node(
        Probe::new(vec![
            // DELETE without a key: nothing to delete.
            (warm, fe, rest(1, Method::Delete, None, b"")),
            // Unparseable If-Match predicate on a keyed POST.
            (warm + 200_000, fe, rest_if_match(2, Method::Post, Some("k"), b"v", "garbage")),
            // If-Match on a GET: the predicate only applies to keyed POSTs.
            (warm + 400_000, fe, rest_if_match(3, Method::Get, Some("k"), b"", "1")),
            // If-Match on a key-less POST (key assignment can't be conditional).
            (warm + 600_000, fe, rest_if_match(4, Method::Post, None, b"v", "1")),
            // Key longer than `max_key_bytes`.
            (warm + 800_000, fe, rest(5, Method::Post, Some(&oversized_key), b"v")),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 3_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    for req in 1..=5u64 {
        assert_eq!(
            p.response_for(req).and_then(resp_status),
            Some(status::BAD_REQUEST),
            "malformed request {req} must get 400"
        );
    }
    // None of them may have reached a coordinator — or even been admitted.
    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("quorum.write.started").copied().unwrap_or(0), 0);
    assert_eq!(snap.counters.get("quorum.read.started").copied().unwrap_or(0), 0);
    assert_eq!(snap.counters.get("cas.started").copied().unwrap_or(0), 0);
    assert_eq!(snap.counters.get("frontend.admitted").copied().unwrap_or(0), 0);
}

/// Conditional put through the REST surface: `If-Match: 0` creates, the
/// returned version conditions the next write, a stale predicate gets `409`
/// with the actual version in the body, and the matching retry succeeds.
#[test]
fn if_match_conditional_put_end_to_end() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(52));
    let probe = sim.add_node(
        Probe::new(vec![
            // Create iff absent.
            (warm, fe, rest_if_match(1, Method::Post, Some("ledger"), b"v1", "0")),
            // A second create-if-absent must now conflict.
            (warm + 600_000, fe, rest_if_match(2, Method::Post, Some("ledger"), b"v2", "0")),
            // Unconditional read still sees v1.
            (warm + 1_200_000, fe, rest(3, Method::Get, Some("ledger"), b"")),
        ]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm + 3_000_000);

    // The create returns the new version as a decimal body.
    let v1: u64 = {
        let p = sim.process::<Probe>(probe).unwrap();
        match p.response_for(1) {
            Some(Msg::RestResp(r)) if r.status == status::OK => {
                std::str::from_utf8(&r.body).unwrap().parse().expect("version body")
            }
            other => panic!("create-if-absent: {other:?}"),
        }
    };
    assert!(v1 > 0, "a created record must carry a non-zero version");
    // The conflicting create reports the version actually present.
    {
        let p = sim.process::<Probe>(probe).unwrap();
        match p.response_for(2) {
            Some(Msg::RestResp(r)) if r.status == status::CONFLICT => {
                let actual: u64 = std::str::from_utf8(&r.body).unwrap().parse().unwrap();
                assert_eq!(actual, v1, "409 body must carry the winning version");
            }
            other => panic!("stale predicate: {other:?}"),
        }
        match p.response_for(3) {
            Some(Msg::RestResp(r)) if r.status == status::OK => assert_eq!(*r.body, b"v1"),
            other => panic!("read after conflict: {other:?}"),
        }
    }

    // Retry conditioned on the observed version (injected, so the reply has
    // no client to land on — the outcome is asserted storage-side).
    sim.inject(
        sim.now() + 1,
        fe,
        rest_if_match(4, Method::Post, Some("ledger"), b"v3", &v1.to_string()),
    );
    sim.run_for(2_000_000);
    let stored = spec
        .storage_ids()
        .iter()
        .find_map(|&id| {
            sim.process::<StorageNode>(id).unwrap().db().get_record("data", "ledger").ok().flatten()
        })
        .expect("record must exist after the matching CAS");
    assert_eq!(stored.val, b"v3", "the matching retry must have applied");
    assert!(stored.version > v1, "a successful CAS must advance the version");

    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("cas.ok").copied(), Some(2));
    assert_eq!(snap.counters.get("cas.conflicts").copied(), Some(1));
    assert!(snap.histograms.get("cas.latency_us").map(|h| h.count).unwrap_or(0) >= 3);
}

/// A coordinator the round-robin upstream list still names crashes; REST
/// requests routed to it must be re-dispatched to a live coordinator at the
/// deadline instead of surfacing `504` — the client sees every write and
/// read succeed.
#[test]
fn dead_coordinator_is_redispatched_not_timed_out() {
    let spec = ClusterSpec::paper_topology();
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(41));

    // 15 POSTs round-robin across all 5 coordinators, so ~3 land on the
    // victim while it is down; reads of never-cached keys afterwards.
    let mut script = vec![];
    for i in 0..15u64 {
        script.push((
            warm + 500_000 + i * 200_000,
            fe,
            rest(i, Method::Post, Some(&format!("rr-{i}")), b"survives"),
        ));
    }
    // GET a never-written key late, so it rides the storage path too.
    script.push((warm + 16_000_000, fe, rest(900, Method::Get, Some("rr-ghost"), b"")));
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());

    // Storage node 2 is down for the whole write burst.
    sim.schedule_crash(
        mystore_net::SimTime(warm + 400_000),
        mystore_net::NodeId(2),
        Some(10_000_000),
    );
    sim.start();
    sim.run_for(warm + 20_000_000);

    let p = sim.process::<Probe>(probe).unwrap();
    for i in 0..15u64 {
        assert_eq!(
            p.response_for(i).and_then(resp_status),
            Some(status::OK),
            "POST rr-{i} must succeed via re-dispatch while a coordinator is down"
        );
    }
    assert_eq!(p.response_for(900).and_then(resp_status), Some(status::NOT_FOUND));
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("frontend.redispatches").copied().unwrap_or(0) >= 1,
        "requests routed at the dead coordinator must be re-dispatched: {:?}",
        snap.counters
    );
    assert_eq!(snap.counters.get("frontend.timeouts").copied().unwrap_or(0), 0);
}
