//! Anti-entropy: replica divergence is repaired by the periodic digest
//! exchange alone — no reads, no writes, no failures needed.

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::StorageNode as Node;
use mystore_engine::{pack_version, Record};
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig};

fn build(interval_us: u64) -> (Sim<Msg>, ClusterSpec) {
    let spec = ClusterSpec::small(5);
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed: 77 });
    for i in 0..spec.storage_nodes as u32 {
        let mut cfg = spec.storage_config();
        cfg.anti_entropy_interval_us = interval_us;
        cfg.anti_entropy_batch = 64;
        sim.add_node(Node::new(NodeId(i), cfg), NodeConfig { concurrency: 4 });
    }
    sim.start();
    (sim, spec)
}

/// Plants `count` records where one replica is stale and one is missing.
fn plant_divergence(sim: &mut Sim<Msg>, count: usize) -> Vec<String> {
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let mut keys = Vec::new();
    for i in 0..count {
        let key = format!("ae-{i}");
        let prefs = ring.preference_list(key.as_bytes(), 3);
        let fresh = Record::new(
            ObjectId::from_parts(1, 7, i as u32),
            key.clone(),
            format!("v2-{i}").into_bytes(),
            pack_version(2_000 + i as u64, 0),
        );
        let stale = Record::new(
            ObjectId::from_parts(1, 8, i as u32),
            key.clone(),
            format!("v1-{i}").into_bytes(),
            pack_version(1_000 + i as u64, 0),
        );
        // prefs[0] fresh, prefs[1] stale, prefs[2] missing entirely.
        sim.process_mut::<Node>(prefs[0]).unwrap().preload_record(&fresh);
        sim.process_mut::<Node>(prefs[1]).unwrap().preload_record(&stale);
        keys.push(key);
    }
    keys
}

fn divergent_keys(sim: &Sim<Msg>, spec: &ClusterSpec, keys: &[String]) -> usize {
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let _ = spec;
    keys.iter()
        .filter(|key| {
            let prefs = ring.preference_list(key.as_bytes(), 3);
            let versions: Vec<Option<u64>> = prefs
                .iter()
                .map(|&n| {
                    sim.process::<Node>(n)
                        .unwrap()
                        .db()
                        .get_record("data", key)
                        .ok()
                        .flatten()
                        .map(|r| r.version)
                })
                .collect();
            let newest = versions.iter().flatten().max().copied();
            versions.iter().any(|v| *v != newest)
        })
        .count()
}

#[test]
fn divergent_replicas_converge_without_reads() {
    let (mut sim, spec) = build(2_000_000);
    sim.run_for(spec.warmup_us());
    let keys = plant_divergence(&mut sim, 50);
    assert_eq!(divergent_keys(&sim, &spec, &keys), 50, "divergence planted");

    // Several anti-entropy rounds later everything agrees on the newest
    // version — no client traffic at all.
    sim.run_for(30_000_000);
    assert_eq!(divergent_keys(&sim, &spec, &keys), 0, "anti-entropy must converge");
    assert!(sim.trace().count("anti_entropy_repair") >= 50);
    // The winner is the *newest* version everywhere.
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    for key in &keys {
        for n in ring.preference_list(key.as_bytes(), 3) {
            let rec = sim
                .process::<Node>(n)
                .unwrap()
                .db()
                .get_record("data", key)
                .unwrap()
                .expect("copy present");
            assert!(rec.val.starts_with(b"v2-"), "stale value survived on {n}");
        }
    }
}

/// Regression (resurrection-after-reap): a key deleted everywhere, whose
/// tombstones were physically reaped on some replicas while one replica
/// still held a stale *live* copy, must stay deleted. The pre-fix
/// missing-key arm of `on_sync_digest` pulled any key it had no copy of —
/// including keys it had deliberately reaped — so the stale live copy
/// resurrected the delete on every sync round.
#[test]
fn reaped_deletes_are_not_resurrected_by_sync() {
    let spec = ClusterSpec::small(5);
    let registry = mystore_obs::Registry::new();
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed: 31 });
    for i in 0..spec.storage_nodes as u32 {
        let mut cfg = spec.storage_config();
        // Reap quickly, sync late: the tombstones must be gone before the
        // first anti-entropy round ever sees the key.
        cfg.compaction_interval_us = 5_000_000;
        cfg.tombstone_grace_us = 10_000_000;
        cfg.anti_entropy_interval_us = 100_000_000;
        cfg.metrics = registry.clone();
        sim.add_node(Node::new(NodeId(i), cfg), NodeConfig { concurrency: 4 });
    }
    sim.start();
    sim.run_for(spec.warmup_us());

    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let prefs = ring.preference_list(b"ghost", 3);
    // prefs[2] missed the delete and still holds the original live write;
    // prefs[0] and prefs[1] hold the (newer) tombstone.
    let live = Record::new(
        ObjectId::from_parts(1, 11, 0),
        "ghost".to_string(),
        b"undead".to_vec(),
        pack_version(1_000_000, 0),
    );
    let mut tomb = Record::new(
        ObjectId::from_parts(1, 12, 0),
        "ghost".to_string(),
        Vec::new(),
        pack_version(2_000_000, 0),
    );
    tomb.is_del = true;
    sim.process_mut::<Node>(prefs[2]).unwrap().preload_record(&live);
    sim.process_mut::<Node>(prefs[0]).unwrap().preload_record(&tomb);
    sim.process_mut::<Node>(prefs[1]).unwrap().preload_record(&tomb);

    // Past the grace period: the tombstones are physically reclaimed.
    sim.run_for(20_000_000);
    for &n in &prefs[..2] {
        let node = sim.process::<Node>(n).unwrap();
        assert!(node.db().get_record("data", "ghost").unwrap().is_none(), "tombstone not reaped");
        assert!(node.reap_floor() > 0, "reap must raise the floor on {n}");
    }

    // Several sync rounds with the stale live holder. The reaped replicas
    // must refuse to pull the pre-reap version back.
    sim.run_for(300_000_000);
    for &n in &prefs[..2] {
        let rec = sim.process::<Node>(n).unwrap().db().get_record("data", "ghost").unwrap();
        assert!(rec.is_none(), "reaped delete resurrected on {n}: {rec:?}");
    }
    assert!(
        registry.counter("sync.resurrections_blocked").get() >= 1,
        "the guard must have rejected the stale offer"
    );
}

#[test]
fn disabled_anti_entropy_leaves_divergence() {
    let (mut sim, spec) = build(0);
    sim.run_for(spec.warmup_us());
    let keys = plant_divergence(&mut sim, 20);
    sim.run_for(30_000_000);
    assert_eq!(
        divergent_keys(&sim, &spec, &keys),
        20,
        "without anti-entropy (and without reads) divergence persists"
    );
}
