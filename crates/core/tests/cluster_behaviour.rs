//! End-to-end behaviour of the storage module on the deterministic
//! simulator: quorum reads/writes, hinted handoff (Fig. 8), long-failure
//! re-replication (Fig. 9), node addition, and balance.

use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig, SimTime};

fn sim_config(seed: u64) -> SimConfig {
    SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed }
}

/// Builds a 5-node storage-only cluster plus a probe client with `script`.
fn cluster_with_probe(
    seed: u64,
    script: Vec<(u64, NodeId, Msg)>,
) -> (Sim<Msg>, ClusterSpec, NodeId) {
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(sim_config(seed));
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.start();
    (sim, spec, probe)
}

fn put(req: u64, key: &str, value: &[u8]) -> Msg {
    Msg::Put { req, key: key.into(), value: value.to_vec().into(), delete: false }
}

fn get(req: u64, key: &str) -> Msg {
    Msg::Get { req, key: key.into() }
}

#[test]
fn put_then_get_round_trips_through_any_coordinator() {
    let warm = 5_000_000u64;
    // Write via node 0, read via node 3 — any node can coordinate.
    let script = vec![
        (warm, NodeId(0), put(1, "Resistor5", b"scene-xml")),
        (warm + 500_000, NodeId(3), get(2, "Resistor5")),
        (warm + 500_000, NodeId(4), get(3, "unknown-key")),
    ];
    let (mut sim, _, probe) = cluster_with_probe(11, script);
    sim.run_for(warm + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
    match p.response_for(2) {
        Some(Msg::GetResp { result: Ok(Some(v)), .. }) => assert_eq!(**v, *b"scene-xml"),
        other => panic!("get reply: {other:?}"),
    }
    assert!(matches!(p.response_for(3), Some(Msg::GetResp { result: Ok(None), .. })));
}

#[test]
fn records_replicate_to_n_nodes() {
    let warm = 5_000_000u64;
    let script: Vec<(u64, NodeId, Msg)> = (0..50u64)
        .map(|i| (warm + i * 10_000, NodeId((i % 5) as u32), put(i, &format!("key{i}"), b"v")))
        .collect();
    let (mut sim, spec, probe) = cluster_with_probe(12, script);
    sim.run_for(warm + 5_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 50);
    let total: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().record_count())
        .sum();
    assert_eq!(total, 50 * 3, "every record must have N=3 replicas");
}

#[test]
fn delete_is_logical_and_reads_as_absent() {
    let warm = 5_000_000u64;
    let script = vec![
        (warm, NodeId(0), put(1, "victim", b"data")),
        (
            warm + 300_000,
            NodeId(1),
            Msg::Put { req: 2, key: "victim".into(), value: vec![].into(), delete: true },
        ),
        (warm + 600_000, NodeId(2), get(3, "victim")),
    ];
    let (mut sim, spec, probe) = cluster_with_probe(13, script);
    sim.run_for(warm + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(matches!(p.response_for(2), Some(Msg::PutResp { result: Ok(()), .. })));
    assert!(matches!(p.response_for(3), Some(Msg::GetResp { result: Ok(None), .. })));
    // The tombstone still physically exists on the replicas (§3.3: "not
    // physically remove the record from disk").
    let tombstones: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| {
            let node = sim.process::<StorageNode>(id).unwrap();
            node.db()
                .get_record("data", "victim")
                .ok()
                .flatten()
                .map(|r| r.is_del as usize)
                .unwrap_or(0)
        })
        .sum();
    assert!(tombstones >= 2, "tombstone must be replicated, found {tombstones}");
}

#[test]
fn later_write_wins_on_read() {
    let warm = 5_000_000u64;
    let script = vec![
        (warm, NodeId(0), put(1, "k", b"old")),
        (warm + 200_000, NodeId(2), put(2, "k", b"new")),
        (warm + 900_000, NodeId(4), get(3, "k")),
    ];
    let (mut sim, _, probe) = cluster_with_probe(14, script);
    sim.run_for(warm + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    match p.response_for(3) {
        Some(Msg::GetResp { result: Ok(Some(v)), .. }) => assert_eq!(**v, *b"new"),
        other => panic!("get reply: {other:?}"),
    }
}

#[test]
fn short_failure_diverts_write_via_hinted_handoff_and_replays() {
    let warm = 5_000_000u64;
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(sim_config(15));
    // Find where "hinted-key" lives so we can crash one of its replicas.
    // (We can compute it after warmup from any node's ring.)
    let probe = sim.add_node(
        Probe::new(vec![(warm + 1_000_000, NodeId(0), put(1, "hinted-key", b"divert-me"))]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm);
    let prefs =
        sim.process::<StorageNode>(NodeId(0)).unwrap().ring().preference_list(b"hinted-key", 3);
    // Crash a replica that is NOT the coordinator (node 0) just before the
    // write; it recovers after 8 s (short failure).
    let victim = *prefs.iter().find(|&&n| n != NodeId(0)).expect("replica other than 0");
    sim.schedule_crash(SimTime(warm + 500_000), victim, Some(8_000_000));
    sim.run_for(4_000_000);

    // The write must have succeeded (W=2 reachable) and a hint must exist.
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
    assert!(sim.trace().count("handoff") >= 1, "handoff expected");
    let hints: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count())
        .sum();
    assert!(hints >= 1, "a hint should be parked somewhere");

    // After the victim recovers and hints replay, it holds the record.
    sim.run_for(20_000_000);
    let victim_node = sim.process::<StorageNode>(victim).unwrap();
    let rec = victim_node.db().get_record("data", "hinted-key").unwrap();
    assert!(rec.is_some(), "hint must be written back to the intended node");
    let hints_after: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count())
        .sum();
    assert_eq!(hints_after, 0, "hints must clear after replay");
    assert!(sim.trace().count("hint_replayed") >= 1);
}

#[test]
fn long_failure_triggers_removal_and_rereplication() {
    let warm = 5_000_000u64;
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(sim_config(16));
    let script: Vec<(u64, NodeId, Msg)> = (0..30u64)
        .map(|i| (warm + i * 20_000, NodeId(0), put(i, &format!("lf-{i}"), b"payload")))
        .collect();
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.start();
    sim.run_for(warm + 2_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 30);

    // Node 4 breaks down for good.
    sim.schedule_crash(sim.now() + 1, NodeId(4), None);
    // Run long enough for seed detection (remove_after) + sweeps.
    sim.run_for(spec.remove_after_us + 20_000_000);

    // The survivors' rings must have dropped node 4.
    for id in 0..4u32 {
        let node = sim.process::<StorageNode>(NodeId(id)).unwrap();
        assert_eq!(node.ring().len(), 4, "node {id} still sees the dead node");
    }
    assert!(sim.trace().count("member_removed") >= 1);

    // Every record must again have N=3 live replicas among survivors.
    for i in 0..30 {
        let key = format!("lf-{i}");
        let copies: usize = (0..4u32)
            .filter(|&id| {
                sim.process::<StorageNode>(NodeId(id))
                    .unwrap()
                    .db()
                    .get_record("data", &key)
                    .ok()
                    .flatten()
                    .is_some()
            })
            .count();
        assert!(copies >= 3, "key {key} has only {copies} copies after re-replication");
    }
}

#[test]
fn adding_a_node_migrates_ranges_to_it() {
    // Node 5 exists but is down from t=0; it "joins" when restarted.
    let spec = ClusterSpec::small(6);
    let mut sim = spec.build_sim(sim_config(17));
    let warm = 5_000_000u64;
    let script: Vec<(u64, NodeId, Msg)> = (0..40u64)
        .map(|i| (warm + i * 20_000, NodeId(i as u32 % 3), put(i, &format!("mig-{i}"), b"v")))
        .collect();
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.schedule_crash(SimTime(0), NodeId(5), None);
    sim.start();
    sim.run_for(warm + 3_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 40);
    assert_eq!(sim.process::<StorageNode>(NodeId(5)).unwrap().record_count(), 0);

    // The newcomer boots.
    sim.schedule_restart(sim.now() + 1, NodeId(5));
    sim.run_for(20_000_000);

    let newcomer = sim.process::<StorageNode>(NodeId(5)).unwrap();
    assert!(newcomer.ring().len() >= 6, "newcomer must learn the full ring");
    assert!(
        newcomer.record_count() > 0,
        "records whose ranges now map to the newcomer must migrate"
    );
    // Placement agreement: keys the newcomer owns are fetchable cluster-wide.
    let migrated_out: u64 = (0..5u32)
        .map(|id| sim.process::<StorageNode>(NodeId(id)).unwrap().stats().records_migrated_out)
        .sum();
    assert!(migrated_out > 0, "old owners must have shipped some records away");
}

#[test]
fn balance_spreads_load_across_nodes() {
    let warm = 5_000_000u64;
    let script: Vec<(u64, NodeId, Msg)> = (0..300u64)
        .map(|i| (warm + i * 5_000, NodeId((i % 5) as u32), put(i, &format!("bal{i}"), b"x")))
        .collect();
    let (mut sim, spec, _) = cluster_with_probe(18, script);
    sim.run_for(warm + 5_000_000);
    let counts: Vec<usize> = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().record_count())
        .collect();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 900);
    let mean = total as f64 / 5.0;
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) > mean * 0.5 && (c as f64) < mean * 1.6,
            "node {i} holds {c} of {total} (mean {mean})"
        );
    }
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = |seed: u64| {
        let warm = 5_000_000u64;
        let script: Vec<(u64, NodeId, Msg)> = (0..20u64)
            .map(|i| (warm + i * 10_000, NodeId(0), put(i, &format!("d{i}"), b"v")))
            .collect();
        let (mut sim, spec, _) = cluster_with_probe(seed, script);
        sim.run_for(warm + 3_000_000);
        spec.storage_ids()
            .iter()
            .map(|&id| sim.process::<StorageNode>(id).unwrap().record_count())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn hints_for_a_removed_node_are_dropped_and_rereplication_covers() {
    let warm = 5_000_000u64;
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(sim_config(41));
    let probe = sim.add_node(
        Probe::new(vec![(warm + 1_000_000, NodeId(0), put(1, "orphan-hint", b"payload"))]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm);
    let prefs =
        sim.process::<StorageNode>(NodeId(0)).unwrap().ring().preference_list(b"orphan-hint", 3);
    let victim = *prefs.iter().find(|&&n| n != NodeId(0)).expect("non-coordinator replica");
    // The victim never comes back: short failure escalates to long failure.
    sim.schedule_crash(SimTime(warm + 500_000), victim, None);
    sim.run_for(3_000_000);

    // Write succeeded via handoff; a hint is parked somewhere.
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })));
    let hints: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count())
        .sum();
    assert!(hints >= 1, "hint must be parked while the victim is down");

    // Long-failure declaration + sweeps: hint dropped, record fully covered.
    sim.run_for(spec.remove_after_us + 30_000_000);
    let hints_after: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count())
        .sum();
    assert_eq!(hints_after, 0, "hints for a removed node must be discarded");
    let copies = spec
        .storage_ids()
        .iter()
        .filter(|&&id| {
            id != victim
                && sim
                    .process::<StorageNode>(id)
                    .unwrap()
                    .db()
                    .get_record("data", "orphan-hint")
                    .ok()
                    .flatten()
                    .is_some()
        })
        .count();
    assert!(copies >= 3, "re-replication must restore N copies, found {copies}");
}

#[test]
fn conflicting_writes_across_a_partition_converge_to_lww_after_heal() {
    let warm = 5_000_000u64;
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(sim_config(42));
    // Write the same key from both sides of a partition: node 0's side
    // first (older), node 4's side second (newer) — LWW must pick node 4's.
    let probe = sim.add_node(
        Probe::new(vec![
            (warm + 1_000_000, NodeId(0), put(1, "split-key", b"older-write")),
            (warm + 1_500_000, NodeId(4), put(2, "split-key", b"newer-write")),
        ]),
        NodeConfig::default(),
    );
    // Partition {0,1} from {2,3,4} just before the writes. The probe (last
    // node id) can still reach everyone.
    let cut = SimTime(warm + 500_000);
    for a in [0u32, 1] {
        for b in [2u32, 3, 4] {
            sim.schedule_link(cut, NodeId(a), NodeId(b), false);
        }
    }
    sim.start();
    // Let both writes land on their own sides (sloppy quorum via hints makes
    // both succeed).
    sim.run_for(warm + 6_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(
        matches!(p.response_for(1), Some(Msg::PutResp { result: Ok(()), .. })),
        "minority-side write should still reach W via fallbacks on its side"
    );
    assert!(matches!(p.response_for(2), Some(Msg::PutResp { result: Ok(()), .. })));

    // Heal and let hints, read repair and anti-entropy converge the replicas.
    let heal = sim.now() + 1;
    for a in [0u32, 1] {
        for b in [2u32, 3, 4] {
            sim.schedule_link(heal, NodeId(a), NodeId(b), true);
        }
    }
    sim.run_for(60_000_000);

    // Every replica holds the newer value; a read from either side agrees.
    let ring = sim.process::<StorageNode>(NodeId(0)).unwrap().ring().clone();
    for node in ring.preference_list(b"split-key", 3) {
        let rec = sim
            .process::<StorageNode>(node)
            .unwrap()
            .db()
            .get_record("data", "split-key")
            .unwrap()
            .expect("replica present after heal");
        assert_eq!(rec.val, b"newer-write", "replica on {node} did not converge");
    }
}
