//! Additional cluster behaviours: the threaded runtime serving quorum
//! operations, read repair of stale replicas, capacity-proportional
//! placement, and coordinator-loss handling.

use std::time::Duration;

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_engine::{pack_version, Record};
use mystore_gossip::GossipConfig;
use mystore_net::{
    FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig, ThreadedClusterBuilder,
    ThreadedConfig,
};

#[test]
fn threaded_runtime_serves_quorum_operations() {
    let gossip = GossipConfig {
        interval_us: 40_000,
        fail_after_us: 400_000,
        remove_after_us: 5_000_000,
        seeds: vec![NodeId(0)],
        extra_fanout: 1,
        idle_backoff_max: 1,
    };
    let mut builder = ThreadedClusterBuilder::new(ThreadedConfig::default());
    for i in 0..4u32 {
        let cfg = StorageConfig {
            gossip: gossip.clone(),
            vnodes: 32,
            replica_timeout_us: 100_000,
            request_deadline_us: 3_000_000,
            ..StorageConfig::default()
        };
        builder = builder.add_node(StorageNode::new(NodeId(i), cfg));
    }
    let cluster = builder.build();
    std::thread::sleep(Duration::from_millis(400));

    for i in 0..10u64 {
        cluster.send(
            NodeId((i % 4) as u32),
            Msg::Put { req: i, key: format!("t{i}"), value: vec![i as u8].into(), delete: false },
        );
    }
    let mut acks = 0;
    while acks < 10 {
        match cluster.recv_timeout(Duration::from_secs(5)) {
            Ok((_, Msg::PutResp { result: Ok(()), .. })) => acks += 1,
            Ok((_, Msg::PutResp { result: Err(e), .. })) => panic!("write failed: {e}"),
            Ok(_) => {}
            Err(e) => panic!("no reply at {acks}/10 put acks: {e}"),
        }
    }
    cluster.send(NodeId(3), Msg::Get { req: 100, key: "t1".into() });
    loop {
        match cluster.recv_timeout(Duration::from_secs(5)) {
            Ok((_, Msg::GetResp { req: 100, result })) => {
                assert_eq!(*result.unwrap().unwrap(), vec![1u8]);
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("no reply waiting for read: {e}"),
        }
    }
    cluster.shutdown();
}

#[test]
fn stale_replica_is_read_repaired() {
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed: 31,
    });
    let warm = spec.warmup_us();
    let probe = sim.add_node(
        Probe::new(vec![(warm + 500_000, NodeId(1), Msg::Get { req: 1, key: "stale-key".into() })]),
        NodeConfig::default(),
    );
    sim.start();
    sim.run_for(warm);

    // Hand-plant divergent replicas: two fresh copies and one stale copy.
    let prefs =
        sim.process::<StorageNode>(NodeId(0)).unwrap().ring().preference_list(b"stale-key", 3);
    let fresh = Record::new(
        ObjectId::from_parts(1, 1, 2),
        "stale-key",
        b"new".to_vec(),
        pack_version(2_000, 0),
    );
    let stale = Record::new(
        ObjectId::from_parts(1, 1, 1),
        "stale-key",
        b"old".to_vec(),
        pack_version(1_000, 0),
    );
    for (i, &node) in prefs.iter().enumerate() {
        let rec = if i == 2 { &stale } else { &fresh };
        sim.process_mut::<StorageNode>(node).unwrap().preload_record(rec);
    }
    let laggard = prefs[2];

    // The read returns the newest value...
    sim.run_for(3_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    match p.response_for(1) {
        Some(Msg::GetResp { result: Ok(Some(v)), .. }) => assert_eq!(**v, *b"new"),
        other => panic!("read: {other:?}"),
    }
    // ...and the stale replica was repaired in the background.
    let repaired = sim
        .process::<StorageNode>(laggard)
        .unwrap()
        .db()
        .get_record("data", "stale-key")
        .unwrap()
        .unwrap();
    assert_eq!(repaired.val, b"new");
    assert!(sim.trace().count("read_repair") >= 1);
}

#[test]
fn capacity_proportional_vnodes_skew_placement() {
    // Node 0 advertises 4× the virtual nodes of the others ("more powerful
    // means more virtual nodes", §5.2.1).
    let spec = ClusterSpec::small(4);
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed: 33 });
    for i in 0..4u32 {
        let mut cfg = spec.storage_config();
        cfg.vnodes = if i == 0 { 256 } else { 64 };
        sim.add_node(StorageNode::new(NodeId(i), cfg), NodeConfig { concurrency: 4 });
    }
    let warm = spec.warmup_us();
    let script: Vec<(u64, NodeId, Msg)> = (0..400u64)
        .map(|i| {
            (
                warm + i * 5_000,
                NodeId((i % 4) as u32),
                Msg::Put { req: i, key: format!("cap{i}"), value: vec![1].into(), delete: false },
            )
        })
        .collect();
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.start();
    sim.run_for(warm + 10_000_000);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })), 400);
    // With N=3 over 4 nodes every record lands on 3 of the 4 nodes, so the
    // replica-count ratio is bounded by 1.5; check it approaches that bound
    // and that *primary* ownership shows the full capacity skew.
    let counts: Vec<usize> =
        (0..4u32).map(|i| sim.process::<StorageNode>(NodeId(i)).unwrap().record_count()).collect();
    let small_avg = counts[1..].iter().sum::<usize>() as f64 / 3.0;
    let replica_ratio = counts[0] as f64 / small_avg;
    assert!(
        replica_ratio > 1.25,
        "big node should be in nearly every preference list: {counts:?} ({replica_ratio:.2})"
    );
    let ring = sim.process::<StorageNode>(NodeId(0)).unwrap().ring().clone();
    let mut primaries = [0usize; 4];
    for i in 0..400u64 {
        let p = ring.preference_list(format!("cap{i}").as_bytes(), 1)[0];
        primaries[p.0 as usize] += 1;
    }
    let small_primary_avg = primaries[1..].iter().sum::<usize>() as f64 / 3.0;
    let primary_ratio = primaries[0] as f64 / small_primary_avg;
    assert!(
        (2.0..7.0).contains(&primary_ratio),
        "4x vnodes should win ~4x the primary ranges: {primaries:?} ({primary_ratio:.2})"
    );
}

#[test]
fn requests_to_a_dead_coordinator_time_out_cleanly() {
    let spec = ClusterSpec::small(5);
    let mut sim = spec.build_sim(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed: 34,
    });
    let warm = spec.warmup_us();
    let probe = sim.add_node(
        Probe::new(vec![(
            warm + 1_000_000,
            NodeId(2),
            Msg::Put { req: 1, key: "k".into(), value: vec![1].into(), delete: false },
        )]),
        NodeConfig::default(),
    );
    sim.schedule_crash(mystore_net::SimTime(warm + 500_000), NodeId(2), None);
    sim.start();
    sim.run_for(warm + 10_000_000);
    // No reply at all — the caller's own timeout/retry policy handles this
    // (as PutClient does); the probe records nothing.
    let p = sim.process::<Probe>(probe).unwrap();
    assert!(p.responses.is_empty(), "a dead coordinator cannot answer");
}
