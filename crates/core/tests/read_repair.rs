//! Read repair pushes the LWW winner to exactly the replicas that are
//! behind — never to up-to-date copies, and never a tombstone to a replica
//! that holds nothing (that would re-create state for a deleted key).
//!
//! The push counts are asserted through the cluster metrics registry
//! (`read_repair.pushes`), which the simulator shares across all nodes.

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::StorageNode as Node;
use mystore_engine::{pack_version, Record};
use mystore_net::{FaultPlan, NetConfig, NodeId, Sim, SimConfig, SimTime};
use mystore_obs::Registry;

fn build(seed: u64) -> (Sim<Msg>, ClusterSpec, Registry) {
    let spec = ClusterSpec::small(5);
    let (mut sim, registry) = spec.build_sim_with_metrics(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed,
    });
    sim.start();
    // Keep every run well inside the first anti-entropy round (≥ 15 s),
    // so any repair observed below came from the read path alone.
    sim.run_for(spec.warmup_us());
    (sim, spec, registry)
}

fn replica_version(sim: &Sim<Msg>, node: NodeId, key: &str) -> Option<u64> {
    sim.process::<Node>(node)
        .unwrap()
        .db()
        .get_record("data", key)
        .ok()
        .flatten()
        .map(|r| r.version)
}

#[test]
fn healthy_read_pushes_no_repairs() {
    let (mut sim, _, registry) = build(21);
    sim.inject(
        SimTime(sim.now().as_micros() + 1),
        NodeId(0),
        Msg::Put { req: 1, key: "steady".into(), value: b"v".to_vec().into(), delete: false },
    );
    sim.run_for(1_000_000);
    sim.inject(
        SimTime(sim.now().as_micros() + 1),
        NodeId(2),
        Msg::Get { req: 2, key: "steady".into() },
    );
    sim.run_for(1_000_000);
    assert!(registry.snapshot().counters["quorum.read.ok"] >= 1);
    assert_eq!(
        registry.snapshot().counters["read_repair.pushes"],
        0,
        "a fully replicated key must not trigger any repair push"
    );
    assert_eq!(sim.trace().count("read_repair"), 0);
}

#[test]
fn repair_targets_exactly_the_behind_replicas() {
    let (mut sim, _, registry) = build(22);
    let key = "diverged";
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let prefs = ring.preference_list(key.as_bytes(), 3);
    let fresh =
        Record::new(ObjectId::from_parts(1, 7, 1), key, b"v2".to_vec(), pack_version(2_000, 0));
    let stale =
        Record::new(ObjectId::from_parts(1, 8, 1), key, b"v1".to_vec(), pack_version(1_000, 0));
    // prefs[0] fresh, prefs[1] stale, prefs[2] missing entirely.
    sim.process_mut::<Node>(prefs[0]).unwrap().preload_record(&fresh);
    sim.process_mut::<Node>(prefs[1]).unwrap().preload_record(&stale);

    sim.inject(SimTime(sim.now().as_micros() + 1), prefs[0], Msg::Get { req: 9, key: key.into() });
    sim.run_for(2_000_000);

    assert_eq!(
        registry.snapshot().counters["read_repair.pushes"],
        2,
        "exactly the stale and the missing replica get a push"
    );
    assert_eq!(sim.trace().count("read_repair"), 2);
    for &n in &prefs {
        assert_eq!(replica_version(&sim, n, key), Some(fresh.version), "node {n} not repaired");
    }
}

#[test]
fn tombstone_is_not_pushed_to_missing_replicas() {
    let (mut sim, _, registry) = build(23);
    let key = "reaped";
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let prefs = ring.preference_list(key.as_bytes(), 3);
    let dead = Record::tombstone(ObjectId::from_parts(1, 7, 2), key, pack_version(2_000, 0));
    let stale =
        Record::new(ObjectId::from_parts(1, 8, 2), key, b"old".to_vec(), pack_version(1_000, 0));
    // prefs[0] holds the tombstone, prefs[1] a stale live copy, prefs[2]
    // nothing — exactly the post-reap shape where the old code re-created
    // tombstones on empty replicas forever.
    sim.process_mut::<Node>(prefs[0]).unwrap().preload_record(&dead);
    sim.process_mut::<Node>(prefs[1]).unwrap().preload_record(&stale);

    sim.inject(SimTime(sim.now().as_micros() + 1), prefs[0], Msg::Get { req: 9, key: key.into() });
    sim.run_for(2_000_000);

    assert_eq!(
        registry.snapshot().counters["read_repair.pushes"],
        1,
        "only the stale live copy needs the tombstone"
    );
    assert_eq!(
        replica_version(&sim, prefs[2], key),
        None,
        "a missing replica must not be supplemented with a tombstone"
    );
    assert_eq!(replica_version(&sim, prefs[1], key), Some(dead.version));
}
