//! Durable nodes: a threaded cluster with `data_dir` set recovers its
//! records across a full process-model restart.

use std::time::Duration;

use mystore_core::prelude::*;
use mystore_gossip::GossipConfig;
use mystore_net::{NodeId, ThreadedClusterBuilder, ThreadedConfig};

fn gossip() -> GossipConfig {
    GossipConfig {
        interval_us: 40_000,
        fail_after_us: 400_000,
        remove_after_us: 5_000_000,
        seeds: vec![NodeId(0)],
        extra_fanout: 1,
    }
}

fn build(dir: &std::path::Path) -> mystore_net::ThreadedCluster<Msg> {
    let mut builder = ThreadedClusterBuilder::new(ThreadedConfig::default());
    for i in 0..3u32 {
        let cfg = StorageConfig {
            gossip: gossip(),
            vnodes: 32,
            replica_timeout_us: 100_000,
            request_deadline_us: 3_000_000,
            data_dir: Some(dir.to_path_buf()),
            ..StorageConfig::default()
        };
        builder = builder.add_node(StorageNode::new(NodeId(i), cfg));
    }
    builder.build()
}

#[test]
fn durable_cluster_recovers_after_restart() {
    let dir = std::env::temp_dir().join(format!("mystore-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- first life: write a handful of records -------------------------
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..8u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: i,
                    key: format!("durable-{i}"),
                    value: vec![i as u8; 32],
                    delete: false,
                },
            );
        }
        let mut acks = 0;
        while acks < 8 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Some((_, Msg::PutResp { result: Ok(()), .. })) => acks += 1,
                Some((_, Msg::PutResp { result: Err(e), .. })) => panic!("write failed: {e}"),
                Some(_) => {}
                None => panic!("timed out at {acks}/8"),
            }
        }
        cluster.shutdown();
    }
    // WAL files exist.
    for i in 0..3 {
        let p = dir.join(format!("node{i}.wal"));
        assert!(p.exists(), "missing {p:?}");
        assert!(std::fs::metadata(&p).unwrap().len() > 0);
    }

    // --- second life: everything is readable again ----------------------
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..8u64 {
            cluster.send(
                NodeId(((i + 1) % 3) as u32),
                Msg::Get { req: 100 + i, key: format!("durable-{i}") },
            );
        }
        let mut got = 0;
        while got < 8 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Some((_, Msg::GetResp { req, result: Ok(Some(v)) })) => {
                    assert_eq!(v, vec![(req - 100) as u8; 32]);
                    got += 1;
                }
                Some((_, Msg::GetResp { result, .. })) => panic!("read lost data: {result:?}"),
                Some(_) => {}
                None => panic!("timed out at {got}/8 reads"),
            }
        }
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
