//! Durable nodes: a threaded cluster with `data_dir` set recovers its
//! records across a full process-model restart.

use std::time::Duration;

use mystore_core::prelude::*;
use mystore_gossip::GossipConfig;
use mystore_net::{NodeId, ThreadedClusterBuilder, ThreadedConfig};
use mystore_obs::Registry;

fn gossip() -> GossipConfig {
    GossipConfig {
        interval_us: 40_000,
        fail_after_us: 400_000,
        remove_after_us: 5_000_000,
        seeds: vec![NodeId(0)],
        extra_fanout: 1,
        idle_backoff_max: 1,
    }
}

fn build(dir: &std::path::Path) -> mystore_net::ThreadedCluster<Msg> {
    let mut builder = ThreadedClusterBuilder::new(ThreadedConfig::default());
    for i in 0..3u32 {
        let cfg = StorageConfig {
            gossip: gossip(),
            vnodes: 32,
            replica_timeout_us: 100_000,
            request_deadline_us: 3_000_000,
            data_dir: Some(dir.to_path_buf()),
            ..StorageConfig::default()
        };
        builder = builder.add_node(StorageNode::new(NodeId(i), cfg));
    }
    builder.build()
}

/// Crash-before-ack: the cluster dies abruptly with a burst of writes still
/// unacknowledged. After restart, WAL replay must restore *at least* every
/// write that was acknowledged at W=2 (no loss) and must not invent records
/// that were never written (no phantom). Unacked writes may land on either
/// side of the crash — both outcomes are legal.
#[test]
fn crash_before_ack_loses_nothing_acked_and_invents_nothing() {
    let dir = std::env::temp_dir().join(format!("mystore-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- first life: 6 acked writes, then a burst cut off by the crash ----
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..6u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: i,
                    key: format!("acked-{i}"),
                    value: vec![i as u8; 16].into(),
                    delete: false,
                },
            );
        }
        let mut acks = 0;
        while acks < 6 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::PutResp { result: Ok(()), .. })) => acks += 1,
                Ok((_, Msg::PutResp { result: Err(e), .. })) => panic!("write failed: {e}"),
                Ok(_) => {}
                Err(e) => panic!("no reply at {acks}/6: {e}"),
            }
        }
        // Fire-and-forget burst; shut down without draining the acks — the
        // coordinator dies somewhere between WAL append and client reply.
        for i in 0..4u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: 50 + i,
                    key: format!("unacked-{i}"),
                    value: vec![0xAB; 16].into(),
                    delete: false,
                },
            );
        }
        cluster.shutdown();
    }

    // --- second life: exactly-the-acked-writes guarantees -----------------
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..6u64 {
            cluster.send(
                NodeId(((i + 1) % 3) as u32),
                Msg::Get { req: 100 + i, key: format!("acked-{i}") },
            );
        }
        // A key nobody ever wrote must stay absent (no phantom).
        cluster.send(NodeId(0), Msg::Get { req: 200, key: "never-written".into() });
        let (mut got, mut phantom_checked) = (0, false);
        while got < 6 || !phantom_checked {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::GetResp { req: 200, result })) => {
                    assert!(
                        matches!(result, Ok(None)),
                        "phantom record after recovery: {result:?}"
                    );
                    phantom_checked = true;
                }
                Ok((_, Msg::GetResp { req, result: Ok(Some(v)) })) => {
                    assert_eq!(*v, vec![(req - 100) as u8; 16], "acked value corrupted");
                    got += 1;
                }
                Ok((_, Msg::GetResp { result, .. })) => {
                    panic!("acked write lost across the crash: {result:?}")
                }
                Ok(_) => {}
                Err(e) => panic!("no reply at {got}/6 reads: {e}"),
            }
        }
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds a 3-node cluster with group commit + fan-out coalescing enabled,
/// publishing into a shared registry so `wal.*` counters can be asserted.
fn build_group_commit(
    dir: &std::path::Path,
    registry: &Registry,
    nwr: Nwr,
) -> mystore_net::ThreadedCluster<Msg> {
    let mut builder = ThreadedClusterBuilder::new(ThreadedConfig::default());
    for i in 0..3u32 {
        let cfg = StorageConfig {
            gossip: gossip(),
            vnodes: 32,
            nwr,
            replica_timeout_us: 100_000,
            request_deadline_us: 3_000_000,
            data_dir: Some(dir.to_path_buf()),
            group_commit_ops: 8,
            group_commit_max_delay_us: 2_000,
            coalesce_window_us: 300,
            metrics: registry.clone(),
            ..StorageConfig::default()
        };
        builder = builder.add_node(StorageNode::new(NodeId(i), cfg));
    }
    builder.build()
}

/// Group commit must not weaken the ack contract: a `PutResp Ok` means the
/// write's WAL frames were fsynced on at least `W` replicas, so it survives
/// an abrupt cluster death even when the process dies with later frames
/// still staged in the commit window. Reading the second life at `R = 2`
/// (`R + W > N`) touches at least one of the two durable copies regardless
/// of which single replica lost its unsynced tail.
#[test]
fn acked_writes_survive_crash_inside_group_commit_window() {
    let dir = std::env::temp_dir().join(format!("mystore-gc-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- first life: 12 acked writes, then an unacked burst, then death ---
    let registry = Registry::new();
    {
        let cluster = build_group_commit(&dir, &registry, Nwr::PAPER);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..12u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: i,
                    key: format!("gc-acked-{i}"),
                    value: vec![i as u8; 24].into(),
                    delete: false,
                },
            );
        }
        let mut acks = 0;
        while acks < 12 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::PutResp { result: Ok(()), .. })) => acks += 1,
                Ok((_, Msg::PutResp { result: Err(e), .. })) => panic!("write failed: {e}"),
                Ok(_) => {}
                Err(e) => panic!("no reply at {acks}/12: {e}"),
            }
        }
        // A burst the crash cuts off mid-batch: frames may be staged,
        // synced, or never appended — all are legal for unacked writes.
        for i in 0..6u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: 50 + i,
                    key: format!("gc-unacked-{i}"),
                    value: vec![0xCD; 24].into(),
                    delete: false,
                },
            );
        }
        cluster.shutdown();
    }

    // Group commit must actually have batched: fewer real fsyncs than
    // appended frames across the cluster.
    let snap = registry.snapshot();
    let appends = snap.counters.get("wal.appends").copied().unwrap_or(0);
    let fsyncs = snap.counters.get("wal.fsyncs").copied().unwrap_or(0);
    assert!(appends > 0, "writes must append WAL frames");
    assert!(fsyncs < appends, "group commit must sync less than once per op: {fsyncs}/{appends}");

    // --- second life: every acked write is readable at R = 2 --------------
    {
        let registry2 = Registry::new();
        let cluster = build_group_commit(&dir, &registry2, Nwr { n: 3, w: 2, r: 2 });
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..12u64 {
            cluster.send(
                NodeId(((i + 1) % 3) as u32),
                Msg::Get { req: 100 + i, key: format!("gc-acked-{i}") },
            );
        }
        let mut got = 0;
        while got < 12 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::GetResp { req, result: Ok(Some(v)) })) => {
                    assert_eq!(*v, vec![(req - 100) as u8; 24], "acked value corrupted");
                    got += 1;
                }
                Ok((_, Msg::GetResp { result, .. })) => {
                    panic!("acked write lost across the crash: {result:?}")
                }
                Ok(_) => {}
                Err(e) => panic!("no reply at {got}/12 reads: {e}"),
            }
        }
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_cluster_recovers_after_restart() {
    let dir = std::env::temp_dir().join(format!("mystore-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- first life: write a handful of records -------------------------
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..8u64 {
            cluster.send(
                NodeId((i % 3) as u32),
                Msg::Put {
                    req: i,
                    key: format!("durable-{i}"),
                    value: vec![i as u8; 32].into(),
                    delete: false,
                },
            );
        }
        let mut acks = 0;
        while acks < 8 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::PutResp { result: Ok(()), .. })) => acks += 1,
                Ok((_, Msg::PutResp { result: Err(e), .. })) => panic!("write failed: {e}"),
                Ok(_) => {}
                Err(e) => panic!("no reply at {acks}/8: {e}"),
            }
        }
        cluster.shutdown();
    }
    // WAL files exist.
    for i in 0..3 {
        let p = dir.join(format!("node{i}.wal"));
        assert!(p.exists(), "missing {p:?}");
        assert!(std::fs::metadata(&p).unwrap().len() > 0);
    }

    // --- second life: everything is readable again ----------------------
    {
        let cluster = build(&dir);
        std::thread::sleep(Duration::from_millis(400));
        for i in 0..8u64 {
            cluster.send(
                NodeId(((i + 1) % 3) as u32),
                Msg::Get { req: 100 + i, key: format!("durable-{i}") },
            );
        }
        let mut got = 0;
        while got < 8 {
            match cluster.recv_timeout(Duration::from_secs(5)) {
                Ok((_, Msg::GetResp { req, result: Ok(Some(v)) })) => {
                    assert_eq!(*v, vec![(req - 100) as u8; 32]);
                    got += 1;
                }
                Ok((_, Msg::GetResp { result, .. })) => panic!("read lost data: {result:?}"),
                Ok(_) => {}
                Err(e) => panic!("no reply at {got}/8 reads: {e}"),
            }
        }
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
