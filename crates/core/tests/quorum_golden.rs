//! Golden-trace lock on the quorum driver's schedule.
//!
//! The PR-5 refactor moved the PUT/GET coordinator state machines out of
//! `storage_node.rs` into the generic `coordinator::driver` engine. The
//! contract is that the unified driver issues *bit-identical* retry and
//! backoff schedules and replica fan-out as the pre-refactor code: same
//! messages in the same order, same RNG draws (backoff jitter), same timer
//! arms, same metric increments.
//!
//! This test locks that schedule in a golden file generated from the
//! pre-refactor code (same technique as the PR-4
//! `full_trace_and_metrics_replay_identically_for_a_seed` test, but diffed
//! against a committed fixture instead of a second run). The scenario is
//! chosen to exercise every driver path: replica soft-timeouts and bounded
//! retries with jittered backoff (lossy link), retry exhaustion and
//! divert-to-handoff (crashed replica), read-repair supplementation, and
//! hint replay.
//!
//! Histogram *sums* are included only for series whose recorded values are
//! derived from sim time or the seeded RNG (`retry.backoff_us`,
//! `quorum.*.latency_us`); wall-clock-measured durations (`wal.*_us`)
//! contribute only their counts.
//!
//! To regenerate after an *intentional* schedule change:
//! `UPDATE_QUORUM_GOLDEN=1 cargo test -p mystore-core --test quorum_golden`

use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_net::{FaultPlan, LinkFaultRule, NetConfig, NodeConfig, NodeId, SimConfig, SimTime};

const DETERMINISTIC_HISTS: &[&str] =
    &["retry.backoff_us", "quorum.write.latency_us", "quorum.read.latency_us"];

fn schedule_trace(seed: u64) -> String {
    let warm = 5_000_000u64;
    let mut script: Vec<(u64, NodeId, Msg)> = (0..20u64)
        .map(|i| {
            let value = std::sync::Arc::new(b"golden".to_vec());
            (
                warm + i * 90_000,
                NodeId((i % 2) as u32),
                Msg::Put { req: i, key: format!("g{i}"), value, delete: false },
            )
        })
        .collect();
    for i in 0..20u64 {
        script.push((
            15_000_000 + i * 40_000,
            NodeId(((i + 1) % 2) as u32),
            Msg::Get { req: 100 + i, key: format!("g{i}") },
        ));
    }
    let spec = ClusterSpec::small(3);
    let (mut sim, registry) = spec.build_sim_with_metrics(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed,
    });
    let _probe = sim.add_node(Probe::new(script), NodeConfig::default());
    // A lossy coordinator↔replica link forces straggler retries (backoff RNG
    // draws); the crashed replica exhausts its budget and diverts to hinted
    // handoff; reads over the same window exercise get-retries and repair.
    let lossy = LinkFaultRule { p_drop: 0.35, ..LinkFaultRule::none() };
    sim.schedule_chaos(SimTime(0), NodeId(0), NodeId(1), lossy);
    sim.schedule_crash(SimTime(warm + 650_000), NodeId(2), Some(4_000_000));
    sim.start();
    sim.run_for(20_000_000);

    let mut out = String::new();
    for e in sim.trace().events() {
        out.push_str(&format!(
            "ev {} {} {} {:#x}\n",
            e.time.0,
            e.node.0,
            e.name,
            e.value.to_bits()
        ));
    }
    let snap = registry.snapshot();
    for (name, v) in &snap.counters {
        out.push_str(&format!("ctr {name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("gauge {name} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        if DETERMINISTIC_HISTS.contains(&name.as_str()) {
            out.push_str(&format!("hist {name} count={} sum={}\n", h.count, h.sum));
        } else {
            out.push_str(&format!("hist {name} count={}\n", h.count));
        }
    }
    for &id in &spec.storage_ids() {
        let n = sim.process::<StorageNode>(id).unwrap();
        out.push_str(&format!("records {} {}\n", id.0, n.record_count()));
    }
    out
}

#[test]
fn quorum_driver_put_get_schedule_matches_pre_refactor_golden_trace() {
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/quorum_schedule.golden");
    let got = schedule_trace(6151);
    // The scenario must actually exercise the driver paths it claims to lock.
    assert!(got.contains("ctr retry.put.resends"), "no put retries in scenario:\n{got}");
    assert!(got.contains("ctr retry.get.resends"), "no get retries in scenario:\n{got}");
    assert!(got.contains("ctr hint.handoffs"), "no handoff diversion in scenario:\n{got}");
    assert!(got.contains("ctr read_repair.pushes"), "no read repair in scenario:\n{got}");

    if std::env::var("UPDATE_QUORUM_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &got).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect(
        "missing tests/golden/quorum_schedule.golden — run with UPDATE_QUORUM_GOLDEN=1 to seed it",
    );
    if got != want {
        let diverged = want
            .lines()
            .zip(got.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}:\ngolden: {a}\n   got: {b}", i + 1))
            .unwrap_or_else(|| {
                format!("traces differ in length (golden {}, got {})", want.len(), got.len())
            });
        panic!(
            "quorum driver schedule drifted from the pre-refactor golden trace:\n{diverged}\n\
             If the change is intentional, regenerate with UPDATE_QUORUM_GOLDEN=1."
        );
    }
}

#[test]
fn quorum_golden_scenario_is_self_deterministic() {
    assert_eq!(schedule_trace(6151), schedule_trace(6151));
}
