//! Merkle-tree anti-entropy (DESIGN.md §14): divergence is found by the
//! tree walk and repaired with per-key digests over only the divergent
//! leaves, so digest traffic scales with the divergence, not the corpus.

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::StorageNode as Node;
use mystore_engine::{pack_version, Record};
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig};
use mystore_obs::Registry;

const NODES: usize = 5;

fn build(seed: u64, interval_us: u64) -> (Sim<Msg>, ClusterSpec, Registry) {
    let spec = ClusterSpec::small(NODES);
    let registry = Registry::new();
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed });
    for i in 0..spec.storage_nodes as u32 {
        let mut cfg = spec.storage_config();
        cfg.anti_entropy_interval_us = interval_us;
        cfg.anti_entropy_merkle = true;
        cfg.metrics = registry.clone();
        sim.add_node(Node::new(NodeId(i), cfg), NodeConfig { concurrency: 4 });
    }
    sim.start();
    (sim, spec, registry)
}

/// Preloads `corpus` identical records on every replica, then freshens
/// `divergent` of them on their first preference only — so the other two
/// replicas are stale and the tree walk has exactly `divergent` keys to
/// find. Returns the divergent keys.
fn preload(sim: &mut Sim<Msg>, corpus: usize, divergent: usize) -> Vec<String> {
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    let mut fresh_keys = Vec::new();
    for i in 0..corpus {
        let key = format!("mk-{i:05}");
        let rec = Record::new(
            ObjectId::from_parts(1, 9, i as u32),
            key.clone(),
            format!("base-{i}").into_bytes(),
            pack_version(1_000, 0),
        );
        let prefs = ring.preference_list(key.as_bytes(), 3);
        for &n in &prefs {
            sim.process_mut::<Node>(n).unwrap().preload_record(&rec);
        }
        if i % (corpus / divergent) == 0 && fresh_keys.len() < divergent {
            let fresh = Record::new(
                ObjectId::from_parts(1, 10, i as u32),
                key.clone(),
                format!("fresh-{i}").into_bytes(),
                pack_version(2_000, 0),
            );
            sim.process_mut::<Node>(prefs[0]).unwrap().preload_record(&fresh);
            fresh_keys.push(key);
        }
    }
    fresh_keys
}

/// Keys whose replicas do not all hold the newest version.
fn divergent_keys(sim: &Sim<Msg>, keys: &[String]) -> usize {
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    keys.iter()
        .filter(|key| {
            let prefs = ring.preference_list(key.as_bytes(), 3);
            let versions: Vec<Option<u64>> = prefs
                .iter()
                .map(|&n| {
                    sim.process::<Node>(n)
                        .unwrap()
                        .db()
                        .get_record("data", key)
                        .ok()
                        .flatten()
                        .map(|r| r.version)
                })
                .collect();
            let newest = versions.iter().flatten().max().copied();
            versions.iter().any(|v| *v != newest)
        })
        .count()
}

#[test]
fn merkle_sync_converges_with_digests_proportional_to_divergence() {
    let (mut sim, spec, registry) = build(101, 2_000_000);
    sim.run_for(spec.warmup_us());
    let corpus = 4_000;
    let keys = preload(&mut sim, corpus, 16);
    assert_eq!(keys.len(), 16);
    assert_eq!(divergent_keys(&sim, &keys), 16, "divergence planted");

    sim.run_for(60_000_000);
    assert_eq!(divergent_keys(&sim, &keys), 0, "merkle sync must converge");
    // The fresh value won everywhere.
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    for key in &keys {
        for n in ring.preference_list(key.as_bytes(), 3) {
            let rec =
                sim.process::<Node>(n).unwrap().db().get_record("data", key).unwrap().unwrap();
            assert!(rec.val.starts_with(b"fresh-"), "stale value survived on {n}");
        }
    }

    // The point of the tree: per-key digests cover only divergent leaves.
    // A single legacy sweep would digest all `corpus` keys; the walk must
    // stay far below even one sweep's worth despite running ~30 rounds.
    let digest_entries = registry.counter("sync.digest_entries").get();
    assert!(digest_entries > 0, "leaf digests must flow");
    assert!(
        digest_entries < (corpus / 8) as u64,
        "digest entries ({digest_entries}) should be a small fraction of the corpus ({corpus})"
    );
    assert!(registry.counter("sync.rounds").get() > 0);
    assert!(registry.counter("sync.tree_levels").get() > 0, "walk must descend levels");
    assert!(registry.counter("sync.leaf_digests").get() > 0);
    // Once converged, later rounds settle at the root and count savings.
    assert!(registry.counter("sync.root_match").get() > 0, "post-convergence roots must match");
    assert!(registry.counter("sync.bytes_saved").get() > 0);
}

#[test]
fn merkle_rounds_on_identical_replicas_settle_at_the_root() {
    let (mut sim, spec, registry) = build(102, 2_000_000);
    sim.run_for(spec.warmup_us());
    preload(&mut sim, 500, 1);
    // Repair the single divergent key quickly, then idle: every subsequent
    // exchange is a two-message root match, never a digest flood.
    sim.run_for(40_000_000);
    let digests_at_convergence = registry.counter("sync.digest_entries").get();
    sim.run_for(40_000_000);
    assert!(registry.counter("sync.root_match").get() > 0);
    assert_eq!(
        registry.counter("sync.digest_entries").get(),
        digests_at_convergence,
        "converged replicas must exchange no per-key digests"
    );
}

#[test]
fn merkle_sync_replays_deterministically() {
    let run = |seed: u64| {
        let (mut sim, spec, registry) = build(seed, 2_000_000);
        sim.run_for(spec.warmup_us());
        let keys = preload(&mut sim, 800, 8);
        sim.run_for(30_000_000);
        let counts: Vec<usize> = (0..NODES as u32)
            .map(|i| sim.process::<Node>(NodeId(i)).unwrap().record_count())
            .collect();
        (
            divergent_keys(&sim, &keys),
            counts,
            registry.counter("sync.rounds").get(),
            registry.counter("sync.tree_levels").get(),
            registry.counter("sync.digest_entries").get(),
            sim.trace().count("anti_entropy_repair"),
        )
    };
    let a = run(424_242);
    let b = run(424_242);
    assert_eq!(a, b, "same seed must replay the merkle exchange identically");
    assert_eq!(a.0, 0, "and it must converge");
}
