//! Online elasticity (DESIGN.md §16): the incremental migration engine
//! must drain a ring change under its per-tick budget, survive a source
//! crash by resuming from the persisted cursor, keep reads correct in the
//! dual-ownership window, and propagate runtime weight changes via gossip.

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::testing::Probe;
use mystore_engine::{pack_version, Record};
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, SimConfig, SimTime};

fn sim_config(seed: u64) -> SimConfig {
    SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed }
}

/// A 3-node spec with the migration engine enabled: `recs` records per
/// 100 ms tick, anti-entropy off so every transferred record is the
/// engine's doing.
fn elastic_spec(recs: u32) -> ClusterSpec {
    let mut spec = ClusterSpec::small(3);
    spec.migrate_max_records_per_tick = recs;
    spec.migrate_tick_us = 100_000;
    spec.anti_entropy_interval_us = 0;
    spec
}

fn rec(i: usize, key: &str) -> Record {
    Record::new(
        ObjectId::from_parts(1, 16, i as u32),
        key.to_string(),
        b"elastic-payload".to_vec(),
        pack_version(1_000_000 + i as u64, 0),
    )
}

fn sent(registry: &mystore_obs::Registry) -> u64 {
    registry.snapshot().counters.get("migrate.records_sent").copied().unwrap_or(0)
}

/// The tentpole acceptance bound: with a budget of B records per tick, no
/// sampling window shorter than the tick period may ever see more than B
/// dispatches — and a corpus of `k × B` records therefore needs at least
/// `k` ticks to drain (the legacy sweep shipped everything in one event).
#[test]
fn migration_is_rate_limited_per_tick_and_completes() {
    let budget = 4u32;
    let total = 36usize;
    let spec = elastic_spec(budget);
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(71));
    // Node 2 exists but is down from t=0; it "joins" when restarted.
    sim.schedule_crash(SimTime(0), NodeId(2), None);
    sim.start();
    sim.run_for(spec.warmup_us() + 3_000_000);
    assert_eq!(sim.process::<StorageNode>(NodeId(0)).unwrap().ring().len(), 2);

    // Single-source corpus: only node 0 holds data, so the cluster-wide
    // dispatch counter is exactly node 0's engine and each record ships
    // exactly one copy (the sole entrant).
    for i in 0..total {
        let r = rec(i, &format!("el-{i:02}"));
        sim.process_mut::<StorageNode>(NodeId(0)).unwrap().preload_record(&r);
    }
    sim.schedule_restart(sim.now() + 1, NodeId(2));

    // Sample in 50 ms windows — half the tick period, so a window can
    // contain at most one engine tick and its delta is bounded by the
    // per-tick record budget.
    let mut prev = 0u64;
    let mut busy_windows = 0usize;
    for _ in 0..160 {
        sim.run_for(50_000);
        let now = sent(&registry);
        let delta = now - prev;
        assert!(
            delta <= budget as u64,
            "{delta} records dispatched in one 50 ms window (budget {budget})"
        );
        if delta > 0 {
            busy_windows += 1;
        }
        prev = now;
    }
    // Pacing: 36 records at 4/tick need at least 9 distinct ticks.
    assert!(busy_windows >= 9, "migration drained in {busy_windows} windows — not rate limited");
    assert_eq!(sent(&registry), total as u64, "each record ships exactly once");

    // Completion: the joiner holds the whole corpus, every window closed.
    let node2 = sim.process::<StorageNode>(NodeId(2)).unwrap();
    for i in 0..total {
        let key = format!("el-{i:02}");
        assert!(
            node2.db().get_record("data", &key).unwrap().is_some(),
            "{key} missing on the joiner after migration"
        );
    }
    assert_eq!(node2.inbound_arcs(), 0, "dual-ownership windows must all be cut over");
    let snap = registry.snapshot();
    assert_eq!(snap.gauges.get("migrate.in_flight").copied().unwrap_or(0), 0);
    assert!(snap.counters.get("migrate.arcs_cutover").copied().unwrap_or(0) >= 1);
}

/// Crash the (sole) migration source mid-transfer, briefly enough that
/// gossip never declares it down. On restart it must resume from the
/// persisted cursor: the corpus still arrives in full, but the restarted
/// engine re-sends at most the unpersisted in-flight window instead of
/// starting over from item zero.
#[test]
fn migration_resumes_from_persisted_cursor_after_source_crash() {
    let total = 40usize;
    let spec = elastic_spec(4);
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(72));
    sim.schedule_crash(SimTime(0), NodeId(2), None);
    sim.start();
    sim.run_for(spec.warmup_us() + 3_000_000);
    for i in 0..total {
        let r = rec(i, &format!("cr-{i:02}"));
        sim.process_mut::<StorageNode>(NodeId(0)).unwrap().preload_record(&r);
    }
    sim.schedule_restart(sim.now() + 1, NodeId(2));

    // Let the transfer get well past its first persisted cursor…
    let mut before_crash = 0u64;
    for _ in 0..200 {
        sim.run_for(50_000);
        before_crash = sent(&registry);
        if before_crash >= 16 {
            break;
        }
    }
    assert!(
        (16..total as u64).contains(&before_crash),
        "need a mid-flight crash point, got {before_crash}/{total} records sent"
    );
    // …then kill the source for 1.2 s. Well under fail_after (2.5 s) even
    // after two gossip hops of heartbeat propagation delay, so no peer
    // ever declares the source down and starts a counter-migration of its
    // own — this is purely a crash-resume test.
    sim.schedule_crash(sim.now() + 1, NodeId(0), Some(1_200_000));
    sim.run_for(10_000_000);

    let node2 = sim.process::<StorageNode>(NodeId(2)).unwrap();
    for i in 0..total {
        let key = format!("cr-{i:02}");
        assert!(
            node2.db().get_record("data", &key).unwrap().is_some(),
            "{key} missing on the joiner after crash-resume"
        );
    }
    // Resume, not restart: the persisted low-water mark lags the dispatch
    // cursor by at most two ticks' budget (one in flight, one not yet
    // persisted), so the total re-send overhead is bounded by 8 records.
    // A from-scratch restart would re-send everything: ≥ 16 + 40 = 56.
    let total_sent = sent(&registry);
    assert!(
        total_sent <= total as u64 + 8,
        "{total_sent} records sent for a {total}-record corpus — resume re-sent too much"
    );
    // The finished plan dropped its persisted cursor and its windows.
    let node0 = sim.process::<StorageNode>(NodeId(0)).unwrap();
    let cursor_docs = node0.db().collection("migrate_state").map(|c| c.iter().count()).unwrap_or(0);
    assert_eq!(cursor_docs, 0, "migrate_state must be cleared once the plan completes");
    assert_eq!(node2.inbound_arcs(), 0);
    assert_eq!(registry.snapshot().gauges.get("migrate.in_flight").copied().unwrap_or(0), 0);
}

/// Dual-ownership reads: while an arc is still migrating, an `R = 1` read
/// coordinated by the *entrant* must not take the entrant's own
/// not-yet-authoritative miss at face value — the old owner announced the
/// transfer (`MigrateBegin`), so the miss proxies back to it.
#[test]
fn reads_during_migration_window_see_every_record() {
    let total = 40usize;
    let spec = elastic_spec(1); // 1 record / 100 ms: a multi-second window
    let (mut sim, _registry) = spec.build_sim_with_metrics(sim_config(73));
    let warm = spec.warmup_us() + 3_000_000;
    let restart_at = warm + 1_000_000;
    // Reads hit the *joiner* as coordinator, 2 s after it comes back:
    // gossip has re-converged and the transfer is still in its first few
    // ticks, so most keys exist only on the old owners.
    let script: Vec<(u64, NodeId, Msg)> = (0..8u64)
        .map(|i| {
            let key = format!("dw-{:02}", i * 5);
            (restart_at + 2_000_000 + i * 50_000, NodeId(2), Msg::Get { req: i + 1, key })
        })
        .collect();
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.schedule_crash(SimTime(0), NodeId(2), None);
    sim.start();
    sim.run_for(warm);
    // The full old replica set holds the corpus (both survivors), so every
    // arc's old primary has work and announces its transfer to the joiner.
    for i in 0..total {
        let r = rec(i, &format!("dw-{i:02}"));
        for node in [NodeId(0), NodeId(1)] {
            sim.process_mut::<StorageNode>(node).unwrap().preload_record(&r);
        }
    }
    sim.schedule_restart(SimTime(restart_at), NodeId(2));
    sim.run_for(4_000_000);

    let p = sim.process::<Probe>(probe).unwrap();
    for i in 0..8u64 {
        match p.response_for(i + 1) {
            Some(Msg::GetResp { result: Ok(Some(v)), .. }) => {
                assert_eq!(**v, *b"elastic-payload")
            }
            other => {
                panic!("mid-migration read {} answered {other:?} — dual-ownership hole", i + 1)
            }
        }
    }
}

/// Regression: a record budget smaller than a single item's copy count
/// must not stall the head of the work list. A 4th node joining a 3-node
/// `N = 3` cluster evicts an old member from some arcs' replica sets, and
/// the evicted member ships each of those records to the *whole* new
/// replica set — 3 copies per item. With `migrate_max_records_per_tick =
/// 1` the budget guard used to reject such an item even as the first of
/// its tick, so the cursor never advanced and the migration (and its
/// dual-ownership windows) hung forever.
#[test]
fn budget_smaller_than_copy_count_still_makes_progress() {
    let total = 24usize;
    let mut spec = ClusterSpec::small(4);
    spec.migrate_max_records_per_tick = 1;
    spec.migrate_tick_us = 100_000;
    spec.anti_entropy_interval_us = 0;
    let (mut sim, registry) = spec.build_sim_with_metrics(sim_config(76));
    sim.schedule_crash(SimTime(0), NodeId(3), None);
    sim.start();
    sim.run_for(spec.warmup_us() + 3_000_000);
    // Every old member holds the corpus, so each runs a plan of its own —
    // including arcs it is evicted from (the multi-copy items).
    for i in 0..total {
        let r = rec(i, &format!("bg-{i:02}"));
        for node in [NodeId(0), NodeId(1), NodeId(2)] {
            sim.process_mut::<StorageNode>(node).unwrap().preload_record(&r);
        }
    }
    sim.schedule_restart(sim.now() + 1, NodeId(3));
    sim.run_for(30_000_000);
    for id in spec.storage_ids() {
        let node = sim.process::<StorageNode>(id).unwrap();
        assert!(
            node.migration_progress().is_none(),
            "node {id}: migration still in flight after 30 s — head-of-line livelock"
        );
        assert_eq!(node.inbound_arcs(), 0, "node {id}: dual-ownership window never closed");
        let cursors = node.db().collection("migrate_state").map(|c| c.iter().count()).unwrap_or(0);
        assert_eq!(cursors, 0, "node {id}: persisted cursor outlived its plan");
    }
    assert_eq!(registry.snapshot().gauges.get("migrate.in_flight").copied().unwrap_or(0), 0);
}

/// Capacity weights at boot: a weight-2 node contributes twice the virtual
/// nodes on every member's ring (placement is derived from gossiped
/// effective vnode counts alone, so this needs no migration engine).
#[test]
fn weighted_node_owns_proportional_ring_share_at_boot() {
    let mut spec = ClusterSpec::small(3);
    spec.weights = vec![2, 1, 1];
    let mut sim = spec.build_sim(sim_config(74));
    sim.start();
    sim.run_for(spec.warmup_us());
    for id in spec.storage_ids() {
        let ring = sim.process::<StorageNode>(id).unwrap().ring();
        assert_eq!(ring.vnodes_of(&NodeId(0)), Some(2 * spec.vnodes), "node {id}");
        assert_eq!(ring.vnodes_of(&NodeId(1)), Some(spec.vnodes), "node {id}");
        assert_eq!(ring.vnodes_of(&NodeId(2)), Some(spec.vnodes), "node {id}");
    }
    // And the share of keyspace follows: node 0 is primary for roughly
    // half the keys (2 of 4 weight units), the others a quarter each.
    let ring = sim.process::<StorageNode>(NodeId(0)).unwrap().ring();
    let primaries = (0..400)
        .filter(|i| {
            ring.preference_list(format!("share-{i}").as_bytes(), 1).first() == Some(&NodeId(0))
        })
        .count();
    assert!(
        (140..=260).contains(&primaries),
        "weight-2 node owns {primaries}/400 primaries, expected ≈200"
    );
}

/// Runtime reweight: `set_weight` republishes the scaled vnode count, and
/// with the engine enabled every peer re-derives the ring from gossip
/// alone — no restart, no membership event.
#[test]
fn runtime_reweight_propagates_to_every_ring() {
    let spec = elastic_spec(1000);
    let mut sim = spec.build_sim(sim_config(75));
    sim.start();
    sim.run_for(spec.warmup_us());
    for id in spec.storage_ids() {
        let ring = sim.process::<StorageNode>(id).unwrap().ring();
        assert_eq!(ring.vnodes_of(&NodeId(1)), Some(spec.vnodes));
    }
    assert!(sim.process_mut::<StorageNode>(NodeId(1)).unwrap().set_weight_deferred(3));
    sim.run_for(spec.gossip_interval_us * 6);
    for id in spec.storage_ids() {
        let ring = sim.process::<StorageNode>(id).unwrap().ring();
        assert_eq!(
            ring.vnodes_of(&NodeId(1)),
            Some(3 * spec.vnodes),
            "node {id} did not pick up the reweight"
        );
    }
}
