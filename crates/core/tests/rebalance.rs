//! Rebalance fan-out: a membership change must ship records only to peers
//! that *newly entered* a record's preference list, not to every replica
//! of every record. The pre-fix sweep re-sent each record to all of its
//! other replicas on any ring change — O(records × N) messages for a
//! change that affected a fraction of the keyspace.

use mystore_bson::ObjectId;
use mystore_core::prelude::*;
use mystore_core::StorageNode as Node;
use mystore_engine::{pack_version, Record};
use mystore_net::{FaultPlan, NetConfig, NodeConfig, NodeId, Sim, SimConfig, SimTime};

#[test]
fn node_addition_ships_records_only_to_new_preference_members() {
    // Node 5 exists but is down from t=0; it "joins" when restarted.
    let spec = ClusterSpec::small(6);
    let mut sim =
        Sim::new(SimConfig { net: NetConfig::gigabit_lan(), faults: FaultPlan::none(), seed: 53 });
    for i in 0..spec.storage_nodes as u32 {
        sim.add_node(Node::new(NodeId(i), spec.storage_config()), NodeConfig { concurrency: 4 });
    }
    sim.schedule_crash(SimTime(0), NodeId(5), None);
    sim.start();
    sim.run_for(spec.warmup_us() + 3_000_000);

    // Fully replicate a corpus on the 5-node ring.
    let total = 60usize;
    let ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    assert_eq!(ring.len(), 5, "newcomer must still be unknown");
    for i in 0..total {
        let key = format!("rb-{i:02}");
        let rec = Record::new(
            ObjectId::from_parts(1, 13, i as u32),
            key.clone(),
            b"payload".to_vec(),
            pack_version(1_000_000 + i as u64, 0),
        );
        for n in ring.preference_list(key.as_bytes(), 3) {
            sim.process_mut::<Node>(n).unwrap().preload_record(&rec);
        }
    }

    // The newcomer boots; every live node re-rings and sweeps.
    sim.schedule_restart(sim.now() + 1, NodeId(5));
    sim.run_for(20_000_000);

    let new_ring = sim.process::<Node>(NodeId(0)).unwrap().ring().clone();
    assert_eq!(new_ring.len(), 6);
    // Placement restored: every key is on all members of its new list.
    for i in 0..total {
        let key = format!("rb-{i:02}");
        for n in new_ring.preference_list(key.as_bytes(), 3) {
            assert!(
                sim.process::<Node>(n).unwrap().db().get_record("data", &key).unwrap().is_some(),
                "{key} missing from new replica {n}"
            );
        }
    }

    // Fan-out bound: the pre-fix sweep sent every record to both of its
    // other replicas — 60 keys × 3 holders × 2 peers = 360 sends minimum.
    // The diff-bounded sweep sends only for keys whose preference list the
    // newcomer actually entered (plus full re-sends where a holder dropped
    // its own copy), a fraction of that.
    let sent: u64 = (0..spec.storage_nodes as u32)
        .map(|i| sim.process::<Node>(NodeId(i)).unwrap().stats().rebalance_records_sent)
        .sum();
    assert!(sent > 0, "the newcomer must have been sent something");
    assert!(sent < 180, "rebalance fan-out too broad: {sent} record sends for one node joining");
}
