//! Model-based property test: the intrusive-list LRU must behave exactly
//! like a naive reference implementation under arbitrary operation
//! sequences, and its byte accounting must never exceed capacity.

use mystore_cache::LruCache;
use proptest::prelude::*;

/// Naive reference: a Vec ordered most-recent-first.
struct ModelLru {
    capacity: usize,
    entries: Vec<(String, Vec<u8>)>, // MRU first
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, entries: Vec::new() }
    }

    fn used(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let e = self.entries.remove(idx);
        let v = e.1.clone();
        self.entries.insert(0, e);
        Some(v)
    }

    fn put(&mut self, key: &str, value: Vec<u8>) -> bool {
        if key.len() + value.len() > self.capacity {
            return false;
        }
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(idx);
        }
        self.entries.insert(0, (key.to_string(), value));
        while self.used() > self.capacity {
            self.entries.pop();
        }
        true
    }

    fn remove(&mut self, key: &str) -> bool {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(idx) => {
                self.entries.remove(idx);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u16),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24).prop_map(Op::Get),
        (0u8..24, 0u16..200).prop_map(|(k, len)| Op::Put(k, len)),
        (0u8..24).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_reference_model(
        capacity in 64usize..1024,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut real = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for op in &ops {
            match op {
                Op::Get(k) => {
                    let key = format!("key{k}");
                    let a = real.get(&key).map(|v| v.as_ref().clone());
                    let b = model.get(&key);
                    prop_assert_eq!(a, b, "get {} diverged", key);
                }
                Op::Put(k, len) => {
                    let key = format!("key{k}");
                    let val = vec![*k; *len as usize];
                    let a = real.put(&key, val.clone());
                    let b = model.put(&key, val);
                    prop_assert_eq!(a, b, "put {} accepted differently", key);
                }
                Op::Remove(k) => {
                    let key = format!("key{k}");
                    prop_assert_eq!(real.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.used_bytes(), model.used());
            prop_assert!(real.used_bytes() <= capacity);
            // Recency order must match exactly.
            let real_order: Vec<&str> = real.keys_by_recency();
            let model_order: Vec<&str> =
                model.entries.iter().map(|(k, _)| k.as_str()).collect();
            prop_assert_eq!(real_order, model_order);
        }
    }
}
