//! A byte-bounded LRU cache.
//!
//! The paper's cache module stores `{key: value}` items "using LRU (Least
//! Recently Used) algorithm for age-out" (§4). Entries are unstructured
//! payloads, so capacity is measured in *bytes*, not entries: one 600 KB
//! scene file should evict many 3 KB components.
//!
//! Implementation: an intrusive doubly-linked list over a slab of entries,
//! with a `HashMap` from key to slot — O(1) get/put/evict with no
//! per-operation allocation beyond the stored data. Values are held behind
//! `Arc` so a hit hands the caller a shared reference to the cached bytes
//! instead of copying them out.

use std::collections::HashMap;
use std::sync::Arc;

/// Statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts rejected because the item alone exceeds capacity.
    pub rejected: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: String,
    value: Arc<Vec<u8>>,
    prev: usize,
    next: usize,
}

/// Byte-bounded LRU map from string keys to binary values.
pub struct LruCache {
    capacity_bytes: usize,
    used_bytes: usize,
    map: HashMap<String, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: CacheStats,
}

impl LruCache {
    /// Creates a cache bounded to `capacity_bytes` (key + value bytes count
    /// against the budget).
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, promoting it to most-recently-used on hit. The hit
    /// shares the stored allocation — no payload copy.
    pub fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(Arc::clone(&self.slab[idx].value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks for presence without affecting recency or stats.
    pub fn peek(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(|&idx| self.slab[idx].value.as_slice())
    }

    /// Inserts or replaces `key`. Evicts LRU entries until the item fits;
    /// an item larger than the whole cache is rejected (returns `false`).
    /// Accepts an already-shared `Arc` (no copy) or a plain `Vec`.
    pub fn put(&mut self, key: &str, value: impl Into<Arc<Vec<u8>>>) -> bool {
        let value = value.into();
        let item_bytes = key.len() + value.len();
        if item_bytes > self.capacity_bytes {
            self.stats.rejected += 1;
            return false;
        }
        if let Some(idx) = self.map.get(key).copied() {
            self.used_bytes -= self.slab[idx].key.len() + self.slab[idx].value.len();
            self.used_bytes += item_bytes;
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let idx = self.alloc(key.to_string(), value);
            self.map.insert(key.to_string(), idx);
            self.used_bytes += item_bytes;
            self.push_front(idx);
        }
        while self.used_bytes > self.capacity_bytes {
            self.evict_lru();
        }
        true
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &str) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.used_bytes -= self.slab[idx].key.len() + self.slab[idx].value.len();
                self.release(idx);
                true
            }
            None => false,
        }
    }

    /// Drops every entry (stats are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slab[cur].key.as_str());
            cur = self.slab[cur].next;
        }
        out
    }

    fn alloc(&mut self, key: String, value: Arc<Vec<u8>>) -> usize {
        let entry = Entry { key, value, prev: NIL, next: NIL };
        match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = entry;
                idx
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        }
    }

    fn release(&mut self, idx: usize) {
        self.slab[idx].value = Arc::new(Vec::new());
        self.slab[idx].key = String::new();
        self.free.push(idx);
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        if victim == NIL {
            return;
        }
        self.unlink(victim);
        let key = std::mem::take(&mut self.slab[victim].key);
        self.used_bytes -= key.len() + self.slab[victim].value.len();
        self.map.remove(&key);
        self.release(victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_recency() {
        let mut c = LruCache::new(1_000);
        assert!(c.put("a", vec![1; 10]));
        assert!(c.put("b", vec![2; 10]));
        assert!(c.put("c", vec![3; 10]));
        assert_eq!(c.keys_by_recency(), ["c", "b", "a"]);
        assert_eq!(c.get("a").as_deref(), Some(&vec![1u8; 10]));
        assert_eq!(c.keys_by_recency(), ["a", "c", "b"]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn byte_capacity_evicts_lru_first() {
        let mut c = LruCache::new(100);
        c.put("a", vec![0; 39]); // 40 bytes with key
        c.put("b", vec![0; 39]);
        assert_eq!(c.len(), 2);
        c.put("c", vec![0; 39]); // exceeds 100 → evict "a"
        assert_eq!(c.len(), 2);
        assert!(c.peek("a").is_none());
        assert!(c.peek("b").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn one_huge_item_evicts_many_small() {
        let mut c = LruCache::new(1000);
        for i in 0..9 {
            c.put(&format!("k{i}"), vec![0; 99]); // 9 × 101 = 909 bytes
        }
        assert_eq!(c.len(), 9);
        c.put("big", vec![0; 900]);
        assert!(c.peek("big").is_some());
        assert!(c.len() <= 2, "len {}", c.len());
        assert!(c.used_bytes() <= 1000);
    }

    #[test]
    fn oversized_item_is_rejected() {
        let mut c = LruCache::new(100);
        c.put("small", vec![0; 10]);
        assert!(!c.put("huge", vec![0; 200]));
        assert!(c.peek("small").is_some(), "rejection must not evict");
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn replace_updates_bytes_and_recency() {
        let mut c = LruCache::new(100);
        c.put("a", vec![0; 30]);
        c.put("b", vec![0; 30]);
        c.put("a", vec![0; 50]);
        assert_eq!(c.used_bytes(), 1 + 50 + 1 + 30);
        assert_eq!(c.keys_by_recency(), ["a", "b"]);
        assert_eq!(c.peek("a").unwrap().len(), 50);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(1000);
        c.put("a", vec![1]);
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.used_bytes(), 0);
        c.put("b", vec![2]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("b").as_deref(), Some(&vec![2u8]));
    }

    #[test]
    fn stats_and_hit_ratio() {
        let mut c = LruCache::new(100);
        c.put("a", vec![0; 10]);
        let _ = c.get("a");
        let _ = c.get("a");
        let _ = c.get("zzz");
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut c = LruCache::new(100);
        c.put("a", vec![0; 10]);
        let _ = c.get("a");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1);
        // Reusable after clear.
        c.put("b", vec![0; 10]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn heavy_churn_maintains_invariants() {
        let mut c = LruCache::new(10_000);
        for i in 0..10_000u32 {
            let key = format!("k{}", i % 500);
            c.put(&key, vec![(i % 251) as u8; (i % 97) as usize]);
            if i % 3 == 0 {
                let _ = c.get(&format!("k{}", (i / 2) % 500));
            }
            if i % 11 == 0 {
                c.remove(&format!("k{}", (i / 3) % 500));
            }
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        // Recency list length matches the map.
        assert_eq!(c.keys_by_recency().len(), c.len());
    }
}
