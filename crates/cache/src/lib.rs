//! The MyStore cache module (paper §4).
//!
//! An independent in-memory cache tier sitting between the REST front end
//! and the storage module: items read, inserted or updated recently are
//! cached; GETs try the cache first and fall back to the database, inserting
//! the returned value; DELETEs invalidate. Shards ("cache servers") are
//! selected by MD5 key hash, and each shard ages out entries with a
//! byte-bounded LRU.

#![forbid(unsafe_code)]

pub mod lru;
pub mod tier;

pub use lru::{CacheStats, LruCache};
pub use tier::{CacheTier, CacheTierMetrics};
