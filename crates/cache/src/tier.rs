//! The sharded cache tier.
//!
//! "Cache module is an independent memory cache system consisting of several
//! cache servers, which are responsible for different partitions of data
//! resources. Their load balances are based on the hash of resources' keys."
//! (§4). Each shard is one [`LruCache`]; keys route by MD5 hash, the same
//! family of hashing the rest of the system uses.

use mystore_obs::{Counter, Registry};
use parking_lot::Mutex;

use mystore_ring::md5::md5;

use crate::lru::{CacheStats, LruCache};

/// Observability handles for cache-tier hot paths. Default-constructed
/// handles are standalone; attach registry-backed ones with
/// [`CacheTier::attach_metrics`] to surface the tier in `/_stats`.
#[derive(Debug, Clone, Default)]
pub struct CacheTierMetrics {
    /// Lookups answered from cache.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Entries inserted (or refreshed).
    pub inserts: Counter,
    /// Entries invalidated.
    pub invalidations: Counter,
}

impl CacheTierMetrics {
    /// Resolves the standard `cache.*` metric names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        CacheTierMetrics {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            inserts: registry.counter("cache.inserts"),
            invalidations: registry.counter("cache.invalidations"),
        }
    }
}

/// A set of cache shards with hash-based key routing.
///
/// Thread-safe: each shard has its own lock, so concurrent traffic to
/// different shards never contends (this mirrors the paper's independent
/// cache *servers*).
pub struct CacheTier {
    shards: Vec<Mutex<LruCache>>,
    metrics: CacheTierMetrics,
}

impl CacheTier {
    /// Creates `shards` caches of `bytes_per_shard` each.
    pub fn new(shards: usize, bytes_per_shard: usize) -> Self {
        assert!(shards > 0, "cache tier needs at least one shard");
        CacheTier {
            shards: (0..shards).map(|_| Mutex::new(LruCache::new(bytes_per_shard))).collect(),
            metrics: CacheTierMetrics::default(),
        }
    }

    /// Attaches registry-backed metric handles.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = CacheTierMetrics::from_registry(registry);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard serves `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        let d = md5(key.as_bytes());
        (u64::from_le_bytes(d[..8].try_into().expect("len 8")) % self.shards.len() as u64) as usize
    }

    /// Looks up `key` on its shard; a hit shares the cached allocation.
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<Vec<u8>>> {
        let found = self.shards[self.shard_of(key)].lock().get(key);
        if found.is_some() {
            self.metrics.hits.inc();
        } else {
            self.metrics.misses.inc();
        }
        found
    }

    /// Inserts `key` on its shard; returns `false` if rejected (oversized).
    pub fn put(&self, key: &str, value: impl Into<std::sync::Arc<Vec<u8>>>) -> bool {
        self.metrics.inserts.inc();
        self.shards[self.shard_of(key)].lock().put(key, value)
    }

    /// Invalidates `key` (DELETE path: "the item with this key will be
    /// deleted from cache", §4).
    pub fn remove(&self, key: &str) -> bool {
        self.metrics.invalidations.inc();
        self.shards[self.shard_of(key)].lock().remove(key)
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.rejected += s.rejected;
        }
        total
    }

    /// Total bytes cached across shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts (for balance checks).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let tier = CacheTier::new(4, 1024);
        for i in 0..100 {
            let key = format!("key{i}");
            let s1 = tier.shard_of(&key);
            let s2 = tier.shard_of(&key);
            assert_eq!(s1, s2);
            assert!(s1 < 4);
        }
    }

    #[test]
    fn get_put_remove_roundtrip() {
        let tier = CacheTier::new(4, 1024);
        assert!(tier.get("a").is_none());
        assert!(tier.put("a", vec![1, 2, 3]));
        assert_eq!(tier.get("a").as_deref(), Some(&vec![1, 2, 3]));
        assert!(tier.remove("a"));
        assert!(tier.get("a").is_none());
        let s = tier.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn keys_spread_across_shards() {
        let tier = CacheTier::new(4, 1 << 20);
        for i in 0..1000 {
            tier.put(&format!("key{i}"), vec![0; 8]);
        }
        let lens = tier.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1000);
        for len in lens {
            assert!((150..350).contains(&len), "shard holds {len}");
        }
    }

    #[test]
    fn shards_evict_independently() {
        let tier = CacheTier::new(2, 100);
        // Fill both shards beyond capacity.
        for i in 0..50 {
            tier.put(&format!("k{i}"), vec![0; 20]);
        }
        assert!(tier.used_bytes() <= 200);
        assert!(tier.stats().evictions > 0);
    }

    #[test]
    fn attached_metrics_mirror_hit_miss_counts() {
        let reg = Registry::new();
        let mut tier = CacheTier::new(2, 1024);
        tier.attach_metrics(&reg);
        tier.put("a", vec![1]);
        let _ = tier.get("a");
        let _ = tier.get("nope");
        tier.remove("a");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cache.hits"], 1);
        assert_eq!(snap.counters["cache.misses"], 1);
        assert_eq!(snap.counters["cache.inserts"], 1);
        assert_eq!(snap.counters["cache.invalidations"], 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let tier = Arc::new(CacheTier::new(4, 1 << 16));
        let mut handles = Vec::new();
        for t in 0..4 {
            let tier = Arc::clone(&tier);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let key = format!("t{t}-k{}", i % 50);
                    tier.put(&key, vec![t as u8; 32]);
                    let _ = tier.get(&key);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(tier.stats().hits > 0);
    }
}
