//! Versioned endpoint state — the unit of gossip.
//!
//! The paper's gossip message template is
//! `HostAddress@VirtualNode;bootGeneration:ver;heartbeat:ver;load:ver` —
//! i.e. each endpoint advertises a *boot generation* plus a set of
//! versioned key/value states (heartbeat, load, virtual-node count, ...).
//! "The greater of version number means newer states" (§5.2.3).

use std::collections::BTreeMap;

use mystore_net::NodeId;

/// Well-known application-state keys.
pub mod keys {
    /// Node load (the paper's `load` field).
    pub const LOAD: &str = "load";
    /// Number of virtual nodes the endpoint contributes (capacity weight
    /// already applied — peers build the ring from this value alone).
    pub const VNODES: &str = "vnodes";
    /// Capacity weight behind the vnode count (informational: feeds the
    /// load-aware balancer and operator dashboards).
    pub const WEIGHT: &str = "weight";
    /// Migration progress of an in-flight rebalance, as
    /// `<arcs_done>/<arcs_total>`; absent or `idle` when none is running.
    pub const MIGRATION: &str = "migration";
    /// Prefix for seed-declared long-failure records:
    /// `removed:<node>` → generation that was declared dead.
    pub const REMOVED_PREFIX: &str = "removed:";
}

/// A value with the version at which it was last set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The value (stringly-typed, as in the paper's message template).
    pub value: String,
    /// Version within the endpoint's (generation, version) clock.
    pub version: u64,
}

/// Everything one node advertises about itself (or has learned about
/// another node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointState {
    /// Boot generation: bumped on every process restart; trumps versions.
    pub generation: u64,
    /// Heartbeat counter version (the liveness signal).
    pub heartbeat: u64,
    /// Versioned application states.
    pub app_states: BTreeMap<String, VersionedValue>,
    /// Highest version used in this generation (heartbeat or app state).
    pub max_version: u64,
}

impl EndpointState {
    /// Fresh state for a node booting with `generation`.
    pub fn new(generation: u64) -> Self {
        EndpointState { generation, heartbeat: 0, app_states: BTreeMap::new(), max_version: 0 }
    }

    /// Increments the heartbeat (and the version clock).
    pub fn beat(&mut self) {
        self.max_version += 1;
        self.heartbeat = self.max_version;
    }

    /// Sets an application state, bumping the version clock.
    pub fn set_app(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.max_version += 1;
        self.app_states
            .insert(key.into(), VersionedValue { value: value.into(), version: self.max_version });
    }

    /// Reads an application state value.
    pub fn app(&self, key: &str) -> Option<&str> {
        self.app_states.get(key).map(|v| v.value.as_str())
    }

    /// The digest entry for this state.
    pub fn digest(&self, endpoint: NodeId) -> Digest {
        Digest { endpoint, generation: self.generation, max_version: self.max_version }
    }

    /// `(generation, max_version)` — the comparison key for freshness.
    pub fn clock(&self) -> (u64, u64) {
        (self.generation, self.max_version)
    }

    /// Entries strictly newer than `after_version` (used to build deltas).
    /// `after_version = 0` returns everything.
    pub fn delta_since(&self, endpoint: NodeId, after_version: u64) -> EndpointDelta {
        EndpointDelta {
            endpoint,
            generation: self.generation,
            heartbeat: if self.heartbeat > after_version { Some(self.heartbeat) } else { None },
            app_states: self
                .app_states
                .iter()
                .filter(|(_, v)| v.version > after_version)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            max_version: self.max_version,
        }
    }

    /// Merges a delta believed newer. Returns `true` if anything changed.
    pub fn merge(&mut self, delta: &EndpointDelta) -> bool {
        if delta.generation < self.generation {
            return false;
        }
        let mut changed = false;
        if delta.generation > self.generation {
            // The node restarted: its state starts over.
            *self = EndpointState::new(delta.generation);
            changed = true;
        }
        if let Some(hb) = delta.heartbeat {
            if hb > self.heartbeat {
                self.heartbeat = hb;
                changed = true;
            }
        }
        for (k, v) in &delta.app_states {
            let newer = self.app_states.get(k).map(|cur| v.version > cur.version).unwrap_or(true);
            if newer {
                self.app_states.insert(k.clone(), v.clone());
                changed = true;
            }
        }
        if delta.max_version > self.max_version {
            self.max_version = delta.max_version;
            changed = true;
        }
        changed
    }

    /// Renders the paper's §5.2.3 message template:
    /// `HostAddress@VirtualNode;bootGeneration:ver;heartbeat:ver;load:ver`.
    /// The structured codec is what actually travels; this string form is
    /// for logs/diagnostics and wire-format compatibility tests.
    pub fn to_template_string(&self, endpoint: NodeId) -> String {
        let vnodes = self.app(keys::VNODES).unwrap_or("0");
        let load = self.app_states.get(keys::LOAD).map(|v| v.version).unwrap_or(0);
        format!(
            "{}@{};bootGeneration:{};heartbeat:{};load:{}",
            endpoint.0, vnodes, self.generation, self.heartbeat, load
        )
    }

    /// Approximate wire size of the full state (for the bandwidth model).
    pub fn wire_size(&self) -> usize {
        24 + self.app_states.iter().map(|(k, v)| k.len() + v.value.len() + 8).sum::<usize>()
    }
}

/// Digest entry of a `GossipDigestSynMessage`: who, which generation, how
/// far its version clock has advanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    /// The endpoint being described.
    pub endpoint: NodeId,
    /// Its boot generation.
    pub generation: u64,
    /// Highest version the sender has for it.
    pub max_version: u64,
}

/// A set of state entries newer than the receiver's knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointDelta {
    /// The endpoint being described.
    pub endpoint: NodeId,
    /// Its boot generation.
    pub generation: u64,
    /// New heartbeat version, if it advanced.
    pub heartbeat: Option<u64>,
    /// App states newer than the receiver's version.
    pub app_states: Vec<(String, VersionedValue)>,
    /// The sender's version high-water mark for this endpoint.
    pub max_version: u64,
}

impl EndpointDelta {
    /// Approximate wire size.
    pub fn wire_size(&self) -> usize {
        28 + self.app_states.iter().map(|(k, v)| k.len() + v.value.len() + 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_string_matches_the_paper() {
        let mut s = EndpointState::new(3);
        s.set_app(keys::VNODES, "128"); // v1
        s.beat(); // heartbeat v2
        s.set_app(keys::LOAD, "6000"); // v3
        assert_eq!(s.to_template_string(NodeId(7)), "7@128;bootGeneration:3;heartbeat:2;load:3");
        // No app states yet: defaults are stable.
        let fresh = EndpointState::new(1);
        assert_eq!(fresh.to_template_string(NodeId(0)), "0@0;bootGeneration:1;heartbeat:0;load:0");
    }

    #[test]
    fn beat_advances_heartbeat_and_clock() {
        let mut s = EndpointState::new(1);
        s.beat();
        s.beat();
        assert_eq!(s.heartbeat, 2);
        assert_eq!(s.max_version, 2);
        assert_eq!(s.clock(), (1, 2));
    }

    #[test]
    fn set_app_versions_monotonically() {
        let mut s = EndpointState::new(1);
        s.beat();
        s.set_app(keys::LOAD, "0.5");
        assert_eq!(s.app(keys::LOAD), Some("0.5"));
        assert_eq!(s.app_states[keys::LOAD].version, 2);
        s.set_app(keys::LOAD, "0.9");
        assert_eq!(s.app_states[keys::LOAD].version, 3);
        assert_eq!(s.max_version, 3);
    }

    #[test]
    fn delta_since_filters_by_version() {
        let mut s = EndpointState::new(1);
        s.set_app("a", "1"); // v1
        s.beat(); // v2
        s.set_app("b", "2"); // v3
        let d = s.delta_since(NodeId(0), 1);
        assert_eq!(d.heartbeat, Some(2));
        assert_eq!(d.app_states.len(), 1);
        assert_eq!(d.app_states[0].0, "b");
        let full = s.delta_since(NodeId(0), 0);
        assert_eq!(full.app_states.len(), 2);
    }

    #[test]
    fn merge_takes_newer_entries_only() {
        let mut local = EndpointState::new(1);
        local.set_app("x", "old"); // v1
        let mut remote = EndpointState::new(1);
        remote.set_app("x", "ignored-v1"); // v1 — same version, not newer
        remote.set_app("x", "new"); // v2
        remote.beat(); // v3
        let delta = remote.delta_since(NodeId(0), local.max_version);
        assert!(local.merge(&delta));
        assert_eq!(local.app("x"), Some("new"));
        assert_eq!(local.heartbeat, 3);
        assert_eq!(local.max_version, 3);
        // Merging the same delta again changes nothing.
        assert!(!local.merge(&delta));
    }

    #[test]
    fn newer_generation_resets_state() {
        let mut local = EndpointState::new(1);
        local.set_app("x", "stale");
        local.beat();
        let mut rebooted = EndpointState::new(2);
        rebooted.beat(); // v1 in gen 2
        let delta = rebooted.delta_since(NodeId(0), 0);
        assert!(local.merge(&delta));
        assert_eq!(local.generation, 2);
        assert_eq!(local.heartbeat, 1);
        assert!(local.app("x").is_none(), "old-generation app state must be dropped");
    }

    #[test]
    fn generation_trumps_version_on_both_sides() {
        // A dead generation with a far *higher* version clock must lose...
        let mut local = EndpointState::new(3);
        local.beat(); // (3, 1)
        let mut ancient = EndpointState::new(2);
        for _ in 0..100 {
            ancient.beat();
        }
        ancient.set_app(keys::LOAD, "stale"); // (2, 101)
        assert!(!local.merge(&ancient.delta_since(NodeId(0), 0)));
        assert_eq!(local.clock(), (3, 1));
        assert!(local.app(keys::LOAD).is_none(), "dead-generation state must not resurrect");

        // ...and a newer generation with a far *lower* version must win.
        let mut veteran = EndpointState::new(1);
        for _ in 0..50 {
            veteran.beat();
        }
        veteran.set_app(keys::LOAD, "dead"); // (1, 51)
        let mut reborn = EndpointState::new(2);
        reborn.beat(); // (2, 1)
        assert!(veteran.merge(&reborn.delta_since(NodeId(0), 0)));
        assert_eq!(veteran.clock(), (2, 1));
        assert_eq!(veteran.heartbeat, 1);
        assert!(veteran.app(keys::LOAD).is_none(), "old incarnation's states die with it");
    }

    #[test]
    fn older_generation_is_ignored() {
        let mut local = EndpointState::new(3);
        local.beat();
        let old = EndpointState::new(2);
        assert!(!local.merge(&old.delta_since(NodeId(0), 0)));
        assert_eq!(local.generation, 3);
    }
}
