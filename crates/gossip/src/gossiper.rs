//! The gossip protocol engine (paper §5.2.3, Fig. 6 & 7).
//!
//! Push-pull gossip with the paper's three messages:
//!
//! 1. **`GossipDigestSynMessage`** — A sends digests (endpoint, generation,
//!    max version) for everything it knows.
//! 2. **`GossipDigestAck1Message`** — B replies with (a) deltas for
//!    endpoints where B is newer and (b) requests for endpoints where A is
//!    newer.
//! 3. **`GossipDigestAck2Message`** — A answers the requests with its
//!    deltas; both sides now agree.
//!
//! Node roles follow Fig. 7: **seed nodes** gossip with every other seed
//! each round (keeping the authoritative view consistent) and answer
//! everyone; **normal nodes** gossip with a seed each round (plus
//! occasionally a random peer, which speeds convergence without changing
//! the role structure). Seeds — not normal nodes — declare *long failure*
//! (§5.2.4 issue 1): after `remove_after_us` without a heartbeat, a seed
//! publishes `removed:<node>` in its own versioned state, which gossip then
//! spreads to the whole cluster within a few rounds.
//!
//! The gossiper is sans-io: the owner calls [`Gossiper::tick`] on a timer
//! and [`Gossiper::handle`] per received message, and sends whatever
//! `(destination, message)` pairs come back. Membership changes surface as
//! [`MembershipEvent`]s via [`Gossiper::drain_events`].

use std::collections::BTreeMap;

use mystore_net::{NodeId, Rng, SimTime};
use mystore_obs::{Counter, Gauge, Histogram, Registry};

use crate::state::{keys, Digest, EndpointDelta, EndpointState};

/// Gossip protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMsg {
    /// Round opener: the sender's digests.
    Syn(Vec<Digest>),
    /// Reply: deltas the receiver had newer, plus requests for what the
    /// sender had newer.
    Ack1 {
        /// States where the replier was ahead.
        deltas: Vec<EndpointDelta>,
        /// Digests (with the replier's versions) the replier wants updated.
        requests: Vec<Digest>,
    },
    /// Final: the requested deltas.
    Ack2 {
        /// The states requested in the Ack1.
        deltas: Vec<EndpointDelta>,
    },
}

impl GossipMsg {
    /// Approximate encoded size (for the simulator's bandwidth model).
    pub fn wire_size(&self) -> usize {
        match self {
            GossipMsg::Syn(digests) => 8 + digests.len() * 20,
            GossipMsg::Ack1 { deltas, requests } => {
                8 + requests.len() * 20 + deltas.iter().map(EndpointDelta::wire_size).sum::<usize>()
            }
            GossipMsg::Ack2 { deltas } => {
                8 + deltas.iter().map(EndpointDelta::wire_size).sum::<usize>()
            }
        }
    }
}

/// Membership changes derived from gossip, in detection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// First contact with an endpoint.
    Joined(NodeId),
    /// An endpoint transitioned dead → alive (or was first seen alive).
    Up(NodeId),
    /// An endpoint stopped heartbeating (short-failure suspicion).
    Down(NodeId),
    /// A seed declared the endpoint long-failed; replicas must be rebuilt.
    Removed(NodeId),
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Gossip round interval (µs). The owner arms a timer at this period
    /// and calls [`Gossiper::tick`].
    pub interval_us: u64,
    /// No heartbeat change for this long ⇒ endpoint considered down.
    pub fail_after_us: u64,
    /// (Seeds only) no heartbeat for this long ⇒ declare long failure.
    pub remove_after_us: u64,
    /// Seed endpoints (Fig. 7).
    pub seeds: Vec<NodeId>,
    /// Extra random peers contacted per round, beyond the role-mandated
    /// targets.
    pub extra_fanout: usize,
    /// Idle backoff cap: after consecutive quiet rounds (no membership
    /// events observed), the effective round interval doubles per extra
    /// quiet round, up to `interval_us * idle_backoff_max`. Any membership
    /// event snaps it back to `interval_us`. `1` disables backoff (the
    /// default) and preserves the fixed-cadence behaviour exactly. Owners
    /// must re-arm their gossip timer from [`Gossiper::current_interval_us`]
    /// for the backoff to take effect.
    pub idle_backoff_max: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            interval_us: 1_000_000,      // 1 s rounds
            fail_after_us: 5_000_000,    // 5 s ⇒ down
            remove_after_us: 30_000_000, // 30 s ⇒ long failure
            seeds: Vec::new(),
            extra_fanout: 1,
            idle_backoff_max: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Liveness {
    last_change_us: u64,
    alive: bool,
}

/// Observability handles for gossip rounds. Default handles are standalone
/// (invisible); attach registry-backed ones with [`Gossiper::set_metrics`].
#[derive(Debug, Clone, Default)]
pub struct GossipMetrics {
    /// Gossip rounds run (ticks).
    pub rounds: Counter,
    /// Syns sent per round (seed rounds fan out to all other seeds).
    pub fanout: Histogram,
    /// Endpoints this node has heard of, including itself and dead ones.
    pub known_endpoints: Gauge,
    /// Membership events emitted (Up/Down/Removed).
    pub events: Counter,
}

impl GossipMetrics {
    /// Resolves the standard `gossip.*` metric names in `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        GossipMetrics {
            rounds: registry.counter("gossip.rounds"),
            fanout: registry.histogram("gossip.fanout"),
            known_endpoints: registry.gauge("gossip.known_endpoints"),
            events: registry.counter("gossip.events"),
        }
    }
}

/// Per-node gossip state machine.
pub struct Gossiper {
    me: NodeId,
    config: GossipConfig,
    states: BTreeMap<NodeId, EndpointState>,
    liveness: BTreeMap<NodeId, Liveness>,
    events: Vec<MembershipEvent>,
    /// Nodes already declared removed (to emit Removed once).
    removed: BTreeMap<NodeId, u64>,
    metrics: GossipMetrics,
    /// Monotonic count of membership events ever pushed (activity signal
    /// for the idle backoff; never reset by [`Gossiper::drain_events`]).
    events_total: u64,
    /// `events_total` as of the previous tick.
    events_at_last_tick: u64,
    /// Consecutive ticks that observed no membership events.
    quiet_rounds: u32,
}

/// Quiet rounds tolerated before the idle backoff starts widening the
/// interval — keeps initial convergence and post-fault re-convergence at
/// full cadence.
const IDLE_GRACE_ROUNDS: u32 = 4;

impl Gossiper {
    /// Creates a gossiper for `me`, booting with `generation`.
    pub fn new(me: NodeId, generation: u64, config: GossipConfig) -> Self {
        let mut states = BTreeMap::new();
        states.insert(me, EndpointState::new(generation));
        Gossiper {
            me,
            config,
            states,
            liveness: BTreeMap::new(),
            events: Vec::new(),
            removed: BTreeMap::new(),
            metrics: GossipMetrics::default(),
            events_total: 0,
            events_at_last_tick: 0,
            quiet_rounds: 0,
        }
    }

    /// Attaches registry-backed metric handles.
    pub fn set_metrics(&mut self, metrics: GossipMetrics) {
        self.metrics = metrics;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// This node's current boot generation. Owners persisting a boot clock
    /// read this after a run so the next incarnation can start above it.
    pub fn generation(&self) -> u64 {
        self.states.get(&self.me).expect("own state").generation
    }

    /// True when this node is a seed.
    pub fn is_seed(&self) -> bool {
        self.config.seeds.contains(&self.me)
    }

    /// Round interval (for the owner's timer).
    pub fn interval_us(&self) -> u64 {
        self.config.interval_us
    }

    /// The interval the owner should arm its next gossip timer at: the
    /// configured interval, widened by the idle backoff when the membership
    /// has been quiet (see [`GossipConfig::idle_backoff_max`]). This is what
    /// lets a quiescent 100-node ring fast-forward through long virtual-time
    /// horizons instead of grinding fixed-cadence ticks.
    pub fn current_interval_us(&self) -> u64 {
        let base = self.config.interval_us;
        if self.config.idle_backoff_max <= 1 {
            return base;
        }
        let cap = base.saturating_mul(self.config.idle_backoff_max);
        let shift = self.quiet_rounds.saturating_sub(IDLE_GRACE_ROUNDS).min(32);
        base.saturating_mul(1u64 << shift).min(cap)
    }

    /// Failure-detection windows scaled to the *current* (possibly backed
    /// off) round cadence. With everyone gossiping slowly, heartbeat news
    /// propagates slowly too; judging staleness against the configured
    /// `fail_after_us` would mark healthy-but-quiet peers down and make the
    /// resulting Down/Up churn defeat the backoff entirely.
    fn effective_timeouts(&self) -> (u64, u64) {
        if self.config.idle_backoff_max <= 1 {
            return (self.config.fail_after_us, self.config.remove_after_us);
        }
        let cur = self.current_interval_us();
        (
            self.config.fail_after_us.max(cur.saturating_mul(6)),
            self.config.remove_after_us.max(cur.saturating_mul(12)),
        )
    }

    /// Sets one of this node's application states (load, vnodes, ...).
    pub fn set_app_state(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.states.get_mut(&self.me).expect("own state").set_app(key, value);
    }

    /// Sets one of this node's application states only when the value
    /// actually differs, so steady-state republication (a capacity weight
    /// or migration-progress field re-asserted every tick) does not bump
    /// the version clock — and therefore does not force a re-gossip — for
    /// an unchanged value. Returns `true` when the state was updated.
    pub fn set_app_state_if_changed(&mut self, key: &str, value: impl Into<String>) -> bool {
        let value = value.into();
        let state = self.states.get_mut(&self.me).expect("own state");
        if state.app(key) == Some(value.as_str()) {
            return false;
        }
        state.set_app(key.to_string(), value);
        true
    }

    /// Reads an endpoint's application state.
    pub fn app_state(&self, node: NodeId, key: &str) -> Option<&str> {
        self.states.get(&node).and_then(|s| s.app(key))
    }

    /// All endpoints this node has heard of (including itself and dead ones).
    pub fn known_endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.states.keys().copied()
    }

    /// Endpoints currently believed alive (excluding self).
    pub fn alive_peers(&self) -> Vec<NodeId> {
        self.states.keys().copied().filter(|&n| n != self.me && self.is_alive(n)).collect()
    }

    /// Liveness belief for `node` (self is always alive).
    pub fn is_alive(&self, node: NodeId) -> bool {
        if node == self.me {
            return true;
        }
        self.liveness.get(&node).map(|l| l.alive).unwrap_or(false)
    }

    /// True if a long failure has been declared for `node` (by any seed)
    /// and the node has not rebooted since.
    pub fn is_removed(&self, node: NodeId) -> bool {
        match (self.removed.get(&node), self.states.get(&node)) {
            (Some(&gen), Some(state)) => state.generation <= gen,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Drains pending membership events.
    pub fn drain_events(&mut self) -> Vec<MembershipEvent> {
        self.metrics.events.add(self.events.len() as u64);
        std::mem::take(&mut self.events)
    }

    /// One gossip round: beats the local heartbeat, runs failure detection,
    /// picks role-appropriate targets, and returns the Syns to send.
    pub fn tick(&mut self, now: SimTime, rng: &mut Rng) -> Vec<(NodeId, GossipMsg)> {
        self.states.get_mut(&self.me).expect("own state").beat();
        self.detect_failures(now);
        if self.events_total == self.events_at_last_tick {
            self.quiet_rounds = self.quiet_rounds.saturating_add(1);
        } else {
            self.quiet_rounds = 0;
        }
        self.events_at_last_tick = self.events_total;

        let mut targets: Vec<NodeId> = Vec::new();
        let seeds: Vec<NodeId> =
            self.config.seeds.iter().copied().filter(|&s| s != self.me).collect();
        if self.is_seed() {
            // Fig. 7: seeds keep each other consistent every round.
            targets.extend(seeds.iter().copied());
        } else if let Some(&seed) = rng.choose(&seeds) {
            // Normal nodes refresh from a seed each round.
            targets.push(seed);
        }
        // Extra random fanout across known endpoints.
        let peers: Vec<NodeId> = self
            .states
            .keys()
            .copied()
            .filter(|&n| n != self.me && !targets.contains(&n) && !self.is_removed(n))
            .collect();
        for _ in 0..self.config.extra_fanout {
            if let Some(&p) = rng.choose(&peers) {
                if !targets.contains(&p) {
                    targets.push(p);
                }
            }
        }

        self.metrics.rounds.inc();
        self.metrics.fanout.record(targets.len() as u64);
        self.metrics.known_endpoints.set(self.states.len() as i64);

        let digests = self.digests();
        targets.into_iter().map(|t| (t, GossipMsg::Syn(digests.clone()))).collect()
    }

    /// Handles an incoming gossip message; returns the reply, if the
    /// protocol calls for one.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: GossipMsg,
    ) -> Option<(NodeId, GossipMsg)> {
        match msg {
            GossipMsg::Syn(remote_digests) => {
                if let Some(d) = remote_digests.iter().find(|d| d.endpoint == self.me) {
                    self.reassert_self_authority((d.generation, d.max_version));
                }
                let mut deltas = Vec::new();
                let mut requests = Vec::new();
                for d in &remote_digests {
                    match self.states.get(&d.endpoint) {
                        Some(local) => {
                            let lc = local.clock();
                            let rc = (d.generation, d.max_version);
                            if lc > rc {
                                // We are newer: send what they miss.
                                let after = if local.generation == d.generation {
                                    d.max_version
                                } else {
                                    0
                                };
                                deltas.push(local.delta_since(d.endpoint, after));
                            } else if lc < rc {
                                // They are newer: request it, advertising our version.
                                requests.push(local.digest(d.endpoint));
                            }
                        }
                        None => {
                            // Never heard of it: request everything.
                            requests.push(Digest {
                                endpoint: d.endpoint,
                                generation: 0,
                                max_version: 0,
                            });
                        }
                    }
                }
                // Endpoints the sender did not mention at all.
                for (&ep, state) in &self.states {
                    if !remote_digests.iter().any(|d| d.endpoint == ep) {
                        deltas.push(state.delta_since(ep, 0));
                    }
                }
                Some((from, GossipMsg::Ack1 { deltas, requests }))
            }
            GossipMsg::Ack1 { deltas, requests } => {
                self.apply_deltas(now, &deltas);
                if let Some(req) = requests.iter().find(|r| r.endpoint == self.me) {
                    self.reassert_self_authority((req.generation, req.max_version));
                }
                let answers: Vec<EndpointDelta> = requests
                    .iter()
                    .filter_map(|req| {
                        self.states.get(&req.endpoint).map(|local| {
                            let after = if local.generation == req.generation {
                                req.max_version
                            } else {
                                0
                            };
                            local.delta_since(req.endpoint, after)
                        })
                    })
                    .collect();
                Some((from, GossipMsg::Ack2 { deltas: answers }))
            }
            GossipMsg::Ack2 { deltas } => {
                self.apply_deltas(now, &deltas);
                None
            }
        }
    }

    fn digests(&self) -> Vec<Digest> {
        self.states.iter().map(|(&ep, s)| s.digest(ep)).collect()
    }

    /// Re-establishes authority over our own state when a peer demonstrably
    /// holds a *newer* clock for us than we do. That only happens after a
    /// restart that lost the boot-clock file: we came back with a lower
    /// generation, so every peer keeps preferring the dead incarnation's
    /// states and marks us down once its heartbeat goes stale. The remedy
    /// (§5.2.3's generation-trumps-version rule, applied to ourselves) is to
    /// jump past the observed generation, carrying the current incarnation's
    /// app states forward re-versioned, so our next gossip wins everywhere
    /// and the stale states die with the old generation.
    fn reassert_self_authority(&mut self, observed: (u64, u64)) {
        let own = self.states.get_mut(&self.me).expect("own state");
        if own.clock() >= observed {
            return;
        }
        let mut fresh = EndpointState::new(observed.0 + 1);
        for (key, value) in &own.app_states {
            fresh.set_app(key.clone(), value.value.clone());
        }
        fresh.beat();
        *own = fresh;
    }

    fn apply_deltas(&mut self, now: SimTime, deltas: &[EndpointDelta]) {
        for delta in deltas {
            if delta.endpoint == self.me {
                // Nobody else is authoritative about us — but a peer echoing
                // a clock *ahead* of ours means we restarted with a lost
                // boot-clock file; jump past the dead incarnation instead of
                // silently dropping the evidence (which would livelock: the
                // peer keeps preferring the dead generation and we keep
                // ignoring its deltas).
                self.reassert_self_authority((delta.generation, delta.max_version));
                continue;
            }
            let entry = self.states.entry(delta.endpoint);
            let is_new = matches!(entry, std::collections::btree_map::Entry::Vacant(_));
            let state = entry.or_insert_with(|| EndpointState::new(delta.generation));
            let before_hb = (state.generation, state.heartbeat);
            let rebooted = delta.generation > state.generation;
            state.merge(delta);
            let after_hb = (state.generation, state.heartbeat);
            if is_new {
                self.events.push(MembershipEvent::Joined(delta.endpoint));
                self.events_total += 1;
            }
            if rebooted {
                // A reboot invalidates any standing removal record.
                self.removed
                    .retain(|&n, &mut gen| !(n == delta.endpoint && delta.generation > gen));
            }
            if after_hb != before_hb {
                // Fresh heartbeat: endpoint is alive.
                let l = self
                    .liveness
                    .entry(delta.endpoint)
                    .or_insert(Liveness { last_change_us: now.as_micros(), alive: false });
                l.last_change_us = now.as_micros();
                if !l.alive {
                    l.alive = true;
                    self.events.push(MembershipEvent::Up(delta.endpoint));
                    self.events_total += 1;
                }
            }
            // Learn seed-declared removals carried in app states.
            let removals: Vec<(NodeId, u64)> = self
                .states
                .get(&delta.endpoint)
                .map(|s| {
                    s.app_states
                        .iter()
                        .filter_map(|(k, v)| {
                            let id = k.strip_prefix(keys::REMOVED_PREFIX)?.parse::<u32>().ok()?;
                            let gen = v.value.parse::<u64>().ok()?;
                            Some((NodeId(id), gen))
                        })
                        .collect()
                })
                .unwrap_or_default();
            for (node, gen) in removals {
                if node == self.me {
                    continue;
                }
                let newer_boot =
                    self.states.get(&node).map(|s| s.generation > gen).unwrap_or(false);
                if !newer_boot && self.removed.insert(node, gen) != Some(gen) {
                    self.events.push(MembershipEvent::Removed(node));
                    self.events_total += 1;
                }
            }
        }
    }

    fn detect_failures(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        let is_seed = self.is_seed();
        let (fail_after_us, remove_after_us) = self.effective_timeouts();
        let mut to_remove: Vec<(NodeId, u64)> = Vec::new();
        for (&node, l) in self.liveness.iter_mut() {
            if l.alive && now_us.saturating_sub(l.last_change_us) > fail_after_us {
                l.alive = false;
                self.events.push(MembershipEvent::Down(node));
                self.events_total += 1;
            }
            if is_seed && !l.alive && now_us.saturating_sub(l.last_change_us) > remove_after_us {
                if let Some(state) = self.states.get(&node) {
                    let gen = state.generation;
                    if self.removed.get(&node) != Some(&gen) {
                        to_remove.push((node, gen));
                    }
                }
            }
        }
        for (node, gen) in to_remove {
            // Publish the long-failure declaration in our own state so
            // gossip spreads it (§5.2.4: seeds, not normal nodes, detect
            // long failure; normal nodes then learn it from seeds).
            self.set_app_state(format!("{}{}", keys::REMOVED_PREFIX, node.0), gen.to_string());
            self.removed.insert(node, gen);
            self.events.push(MembershipEvent::Removed(node));
            self.events_total += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seeds: Vec<NodeId>) -> GossipConfig {
        GossipConfig {
            interval_us: 1_000_000,
            fail_after_us: 5_000_000,
            remove_after_us: 30_000_000,
            seeds,
            extra_fanout: 1,
            idle_backoff_max: 1,
        }
    }

    #[test]
    fn idle_backoff_widens_interval_and_resets_on_activity() {
        let mut config = cfg(vec![NodeId(0)]);
        config.idle_backoff_max = 8;
        let mut a = Gossiper::new(NodeId(0), 1, config);
        let mut rng = Rng::new(7);
        assert_eq!(a.current_interval_us(), 1_000_000);
        // Quiet ticks: full cadence through the grace window, then doubling
        // up to the cap.
        for i in 0..20u64 {
            let _ = a.tick(SimTime::from_secs(1 + i), &mut rng);
        }
        assert_eq!(a.current_interval_us(), 8_000_000, "capped at interval * idle_backoff_max");
        // Any membership event snaps the cadence back to the base interval.
        let mut b = Gossiper::new(NodeId(1), 1, cfg(vec![NodeId(0)]));
        exchange(&mut a, &mut b, SimTime::from_secs(30));
        let _ = a.tick(SimTime::from_secs(31), &mut rng);
        assert_eq!(a.current_interval_us(), 1_000_000);
    }

    #[test]
    fn backoff_disabled_keeps_fixed_interval() {
        let mut a = Gossiper::new(NodeId(0), 1, cfg(vec![NodeId(0)]));
        let mut rng = Rng::new(8);
        for i in 0..50u64 {
            let _ = a.tick(SimTime::from_secs(1 + i), &mut rng);
        }
        assert_eq!(a.current_interval_us(), a.interval_us());
    }

    /// With the backoff active, failure detection must scale with the
    /// widened cadence: a healthy-but-quiet peer whose heartbeat news simply
    /// travels slowly may not be declared down at the configured
    /// `fail_after_us`, or the resulting Down/Up churn would defeat the
    /// backoff.
    #[test]
    fn backed_off_failure_detection_tolerates_slow_heartbeat_news() {
        let mut config = cfg(vec![NodeId(0)]);
        config.idle_backoff_max = 64;
        let mut a = Gossiper::new(NodeId(0), 1, config);
        let mut b = Gossiper::new(NodeId(1), 1, cfg(vec![NodeId(0)]));
        let mut rng = Rng::new(9);
        let _ = a.tick(SimTime::from_secs(1), &mut rng);
        let _ = b.tick(SimTime::from_secs(1), &mut rng);
        exchange(&mut a, &mut b, SimTime::from_secs(1));
        assert!(a.is_alive(NodeId(1)));
        a.drain_events();
        // 50 quiet ticks, 1 s apart: b's last observed heartbeat goes 50 s
        // stale — far beyond fail_after (5 s), but within the scaled window
        // once the interval has backed off.
        for i in 0..50u64 {
            let _ = a.tick(SimTime::from_secs(2 + i), &mut rng);
        }
        assert!(a.is_alive(NodeId(1)), "scaled fail_after must cover backed-off cadence");
        // The identical sequence with backoff disabled marks b down.
        let mut c = Gossiper::new(NodeId(0), 1, cfg(vec![NodeId(0)]));
        let mut b2 = Gossiper::new(NodeId(1), 1, cfg(vec![NodeId(0)]));
        let _ = c.tick(SimTime::from_secs(1), &mut rng);
        let _ = b2.tick(SimTime::from_secs(1), &mut rng);
        exchange(&mut c, &mut b2, SimTime::from_secs(1));
        for i in 0..50u64 {
            let _ = c.tick(SimTime::from_secs(2 + i), &mut rng);
        }
        assert!(!c.is_alive(NodeId(1)));
    }

    /// Pumps one full Syn→Ack1→Ack2 exchange from `a` to `b`.
    fn exchange(a: &mut Gossiper, b: &mut Gossiper, now: SimTime) {
        let digests = a.digests();
        let (_, ack1) = b.handle(now, a.id(), GossipMsg::Syn(digests)).expect("ack1");
        if let Some((_, ack2)) = a.handle(now, b.id(), ack1) {
            b.handle(now, a.id(), ack2);
        }
    }

    #[test]
    fn three_way_handshake_converges_two_nodes() {
        let mut a = Gossiper::new(NodeId(0), 1, cfg(vec![NodeId(0)]));
        let mut b = Gossiper::new(NodeId(1), 1, cfg(vec![NodeId(0)]));
        a.set_app_state(keys::LOAD, "0.3");
        b.set_app_state(keys::VNODES, "128");
        let now = SimTime::from_secs(1);
        let mut rng = Rng::new(1);
        let _ = a.tick(now, &mut rng);
        let _ = b.tick(now, &mut rng);
        exchange(&mut a, &mut b, now);
        assert_eq!(a.app_state(NodeId(1), keys::VNODES), Some("128"));
        assert_eq!(b.app_state(NodeId(0), keys::LOAD), Some("0.3"));
        assert!(a.is_alive(NodeId(1)));
        assert!(b.is_alive(NodeId(0)));
        let events = a.drain_events();
        assert!(events.contains(&MembershipEvent::Joined(NodeId(1))));
        assert!(events.contains(&MembershipEvent::Up(NodeId(1))));
    }

    #[test]
    fn syn_with_unknown_endpoint_requests_everything() {
        let a = Gossiper::new(NodeId(0), 1, cfg(vec![]));
        let mut b = Gossiper::new(NodeId(1), 1, cfg(vec![]));
        let (_, ack1) =
            b.handle(SimTime::ZERO, NodeId(0), GossipMsg::Syn(a.digests())).expect("reply");
        match ack1 {
            GossipMsg::Ack1 { requests, deltas } => {
                assert_eq!(requests.len(), 1, "b must request a's state");
                assert_eq!(requests[0].endpoint, NodeId(0));
                assert_eq!(requests[0].max_version, 0);
                // b also pushes its own (unmentioned) state.
                assert!(deltas.iter().any(|d| d.endpoint == NodeId(1)));
            }
            other => panic!("expected Ack1, got {other:?}"),
        }
    }

    #[test]
    fn state_spreads_transitively_via_seed() {
        // a and c never talk directly; the seed b relays.
        let seeds = vec![NodeId(1)];
        let mut a = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut b = Gossiper::new(NodeId(1), 1, cfg(seeds.clone()));
        let mut c = Gossiper::new(NodeId(2), 1, cfg(seeds));
        a.set_app_state(keys::LOAD, "0.9");
        let now = SimTime::from_secs(1);
        let mut rng = Rng::new(2);
        for g in [&mut a, &mut b, &mut c] {
            let _ = g.tick(now, &mut rng);
        }
        exchange(&mut a, &mut b, now);
        exchange(&mut c, &mut b, now);
        assert_eq!(c.app_state(NodeId(0), keys::LOAD), Some("0.9"));
    }

    #[test]
    fn normal_nodes_target_a_seed_seeds_target_all_seeds() {
        let seeds = vec![NodeId(0), NodeId(1)];
        let mut seed = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut normal = Gossiper::new(NodeId(2), 1, cfg(seeds.clone()));
        let mut rng = Rng::new(3);
        let out_seed = seed.tick(SimTime::from_secs(1), &mut rng);
        assert!(out_seed.iter().any(|(t, _)| *t == NodeId(1)), "seed gossips to other seed");
        let out_normal = normal.tick(SimTime::from_secs(1), &mut rng);
        assert!(
            out_normal.iter().any(|(t, _)| seeds.contains(t)),
            "normal node must contact a seed: {out_normal:?}"
        );
    }

    #[test]
    fn missing_heartbeats_mark_node_down_then_seed_removes_it() {
        let seeds = vec![NodeId(0)];
        let mut seed = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut normal = Gossiper::new(NodeId(1), 1, cfg(seeds));
        let mut rng = Rng::new(4);
        // Initial contact at t=1s.
        let t1 = SimTime::from_secs(1);
        let _ = normal.tick(t1, &mut rng);
        exchange(&mut normal, &mut seed, t1);
        assert!(seed.is_alive(NodeId(1)));
        seed.drain_events();

        // The normal node falls silent. At t=7s it is down...
        let _ = seed.tick(SimTime::from_secs(7), &mut rng);
        assert!(!seed.is_alive(NodeId(1)));
        assert!(seed.drain_events().contains(&MembershipEvent::Down(NodeId(1))));
        assert!(!seed.is_removed(NodeId(1)));

        // ...and at t=40s the seed declares long failure.
        let _ = seed.tick(SimTime::from_secs(40), &mut rng);
        assert!(seed.is_removed(NodeId(1)));
        assert!(seed.drain_events().contains(&MembershipEvent::Removed(NodeId(1))));
        // The declaration is carried in the seed's own gossip state.
        assert_eq!(seed.app_state(NodeId(0), "removed:1"), Some("1"));
    }

    #[test]
    fn removal_spreads_to_normal_nodes_via_gossip() {
        let seeds = vec![NodeId(0)];
        let mut seed = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut n1 = Gossiper::new(NodeId(1), 1, cfg(seeds.clone()));
        let mut n2 = Gossiper::new(NodeId(2), 1, cfg(seeds));
        let mut rng = Rng::new(5);
        let t1 = SimTime::from_secs(1);
        for g in [&mut n1, &mut n2] {
            let _ = g.tick(t1, &mut rng);
        }
        exchange(&mut n1, &mut seed, t1);
        exchange(&mut n2, &mut seed, t1);
        // n1 dies; the seed declares it at t=40.
        let _ = seed.tick(SimTime::from_secs(40), &mut rng);
        assert!(seed.is_removed(NodeId(1)));
        // n2 syncs with the seed and learns of the removal.
        let t2 = SimTime::from_secs(41);
        let _ = n2.tick(t2, &mut rng);
        exchange(&mut n2, &mut seed, t2);
        assert!(n2.is_removed(NodeId(1)));
        assert!(n2.drain_events().contains(&MembershipEvent::Removed(NodeId(1))));
    }

    #[test]
    fn reboot_with_higher_generation_clears_removal() {
        let seeds = vec![NodeId(0)];
        let mut seed = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut old = Gossiper::new(NodeId(1), 1, cfg(seeds.clone()));
        let mut rng = Rng::new(6);
        let t1 = SimTime::from_secs(1);
        let _ = old.tick(t1, &mut rng);
        exchange(&mut old, &mut seed, t1);
        let _ = seed.tick(SimTime::from_secs(40), &mut rng);
        assert!(seed.is_removed(NodeId(1)));
        // Node 1 reboots with generation 2 and gossips again.
        let mut fresh = Gossiper::new(NodeId(1), 2, cfg(seeds));
        let t2 = SimTime::from_secs(50);
        let _ = fresh.tick(t2, &mut rng);
        exchange(&mut fresh, &mut seed, t2);
        assert!(!seed.is_removed(NodeId(1)), "newer generation must clear the removal");
        assert!(seed.is_alive(NodeId(1)));
    }

    #[test]
    fn lost_clock_restart_reasserts_authority() {
        // Node 1 runs at generation 5, publishes state, and gossips with the
        // seed. It then restarts having lost its boot-clock file, coming
        // back at generation 1 — lower than what the cluster remembers.
        let seeds = vec![NodeId(0)];
        let mut seed = Gossiper::new(NodeId(0), 1, cfg(seeds.clone()));
        let mut old = Gossiper::new(NodeId(1), 5, cfg(seeds.clone()));
        old.set_app_state(keys::LOAD, "old-load");
        let mut rng = Rng::new(8);
        let t1 = SimTime::from_secs(1);
        let _ = old.tick(t1, &mut rng);
        exchange(&mut old, &mut seed, t1);
        assert_eq!(seed.app_state(NodeId(1), keys::LOAD), Some("old-load"));

        let mut fresh = Gossiper::new(NodeId(1), 1, cfg(seeds));
        fresh.set_app_state(keys::VNODES, "64");
        let t2 = SimTime::from_secs(2);
        let _ = fresh.tick(t2, &mut rng);
        exchange(&mut fresh, &mut seed, t2);
        // The seed's reply carried the dead incarnation (generation 5); the
        // restarted node must jump past it rather than ignore it.
        assert!(fresh.generation() > 5, "got generation {}", fresh.generation());

        // One more round spreads the new incarnation back to the seed: the
        // fresh states win and the dead generation's states die with it.
        let t3 = SimTime::from_secs(3);
        let _ = fresh.tick(t3, &mut rng);
        exchange(&mut fresh, &mut seed, t3);
        assert_eq!(seed.app_state(NodeId(1), keys::VNODES), Some("64"));
        assert_eq!(
            seed.app_state(NodeId(1), keys::LOAD),
            None,
            "stale app state from the dead generation must not be resurrected"
        );
        assert!(seed.is_alive(NodeId(1)));
    }

    #[test]
    fn own_state_is_never_overwritten_by_peers() {
        let mut a = Gossiper::new(NodeId(0), 1, cfg(vec![]));
        a.set_app_state(keys::LOAD, "truth");
        // A malicious/buggy delta claiming to describe node 0.
        let mut fake = EndpointState::new(9);
        fake.set_app(keys::LOAD, "lies");
        a.apply_deltas(SimTime::ZERO, &[fake.delta_since(NodeId(0), 0)]);
        assert_eq!(a.app_state(NodeId(0), keys::LOAD), Some("truth"));
    }

    #[test]
    fn convergence_over_random_rounds() {
        // 8 nodes, seeds {0,1}: after a handful of rounds everyone knows
        // everyone's app state.
        let seeds = vec![NodeId(0), NodeId(1)];
        let mut nodes: Vec<Gossiper> = (0..8)
            .map(|i| {
                let mut g = Gossiper::new(NodeId(i), 1, cfg(seeds.clone()));
                g.set_app_state(keys::VNODES, format!("{}", 100 + i));
                g
            })
            .collect();
        let mut rng = Rng::new(7);
        for round in 0..6u64 {
            let now = SimTime::from_secs(round + 1);
            // Collect this round's Syns.
            let mut mail: Vec<(usize, usize, GossipMsg)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                for (to, msg) in node.tick(now, &mut rng) {
                    mail.push((i, to.0 as usize, msg));
                }
            }
            // Deliver Syn → Ack1 → Ack2 synchronously.
            for (from, to, msg) in mail {
                let reply = nodes[to].handle(now, NodeId(from as u32), msg);
                if let Some((_, ack1)) = reply {
                    if let Some((_, ack2)) = nodes[from].handle(now, NodeId(to as u32), ack1) {
                        nodes[to].handle(now, NodeId(from as u32), ack2);
                    }
                }
            }
        }
        for g in &nodes {
            for i in 0..8u32 {
                assert_eq!(
                    g.app_state(NodeId(i), keys::VNODES),
                    Some(format!("{}", 100 + i).as_str()),
                    "node {} missing state of {}",
                    g.id(),
                    i
                );
            }
        }
    }
}
