//! Push-pull gossip for MyStore (paper §5.2.3).
//!
//! State transfer between storage nodes uses the paper's three-message
//! push-pull protocol (`GossipDigestSynMessage` / `Ack1` / `Ack2`) over
//! versioned endpoint states, with heartbeat-based failure detection and
//! the seed/normal role split of Fig. 7. The [`Gossiper`] is a sans-io
//! state machine embedded in each storage node process; membership changes
//! surface as [`MembershipEvent`]s that drive hinted handoff and replica
//! rebuilding in `mystore-core`.

#![forbid(unsafe_code)]

pub mod gossiper;
pub mod state;

pub use gossiper::{GossipConfig, GossipMetrics, GossipMsg, Gossiper, MembershipEvent};
pub use state::{keys, Digest, EndpointDelta, EndpointState, VersionedValue};
