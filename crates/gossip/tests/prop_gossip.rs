//! Property tests for the gossip protocol: under arbitrary exchange
//! schedules, state never regresses and sufficiently-connected schedules
//! converge.

use mystore_gossip::{keys, GossipConfig, Gossiper};
use mystore_net::{NodeId, SimTime};
use proptest::prelude::*;

fn cfg(seeds: Vec<NodeId>) -> GossipConfig {
    GossipConfig {
        interval_us: 1_000_000,
        fail_after_us: 1 << 40, // liveness not under test here
        remove_after_us: 1 << 41,
        seeds,
        extra_fanout: 1,
        idle_backoff_max: 1,
    }
}

/// Runs one full Syn→Ack1→Ack2 exchange initiated by `a` toward `b`.
/// The Syn is taken from `a`'s regular tick (digests are independent of the
/// tick's own target choice).
fn exchange(nodes: &mut [Gossiper], a: usize, b: usize, now: SimTime) {
    let syn = {
        let mut rng = mystore_net::Rng::new((a * 31 + b) as u64);
        let out = nodes[a].tick(now, &mut rng);
        match out.into_iter().next() {
            Some((_, m)) => m,
            None => return,
        }
    };
    if let Some((_, ack1)) = nodes[b].handle(now, NodeId(a as u32), syn) {
        if let Some((_, ack2)) = nodes[a].handle(now, NodeId(b as u32), ack1) {
            nodes[b].handle(now, NodeId(a as u32), ack2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Versioned state is monotone: once a node has seen version v of an
    /// endpoint's app state, no exchange can take it back to an older value.
    #[test]
    fn state_never_regresses(
        schedule in proptest::collection::vec((0usize..5, 0usize..5), 1..60),
        updates in proptest::collection::vec((0usize..5, 0u32..100), 1..10),
    ) {
        let seeds = vec![NodeId(0)];
        let mut nodes: Vec<Gossiper> =
            (0..5).map(|i| Gossiper::new(NodeId(i as u32), 1, cfg(seeds.clone()))).collect();
        // Apply numbered updates to random owners; values strictly increase.
        for (round, &(owner, v)) in updates.iter().enumerate() {
            nodes[owner].set_app_state(keys::LOAD, format!("{}", round * 1000 + v as usize));
        }
        // Remember each owner's final (authoritative) value.
        let truth: Vec<Option<String>> = (0..5)
            .map(|i| nodes[i].app_state(NodeId(i as u32), keys::LOAD).map(str::to_string))
            .collect();

        let mut best_seen: Vec<Vec<Option<String>>> = vec![vec![None; 5]; 5];
        for (step, &(a, b)) in schedule.iter().enumerate() {
            if a == b {
                continue;
            }
            let now = SimTime::from_secs(step as u64 + 1);
            exchange(&mut nodes, a, b, now);
            for i in 0..5 {
                for (j, best) in best_seen[i].iter_mut().enumerate() {
                    let cur = nodes[i].app_state(NodeId(j as u32), keys::LOAD).map(str::to_string);
                    if let (Some(prev), Some(cur)) = (&*best, &cur) {
                        // Values encode their update round, so ordering is
                        // numeric.
                        let p: usize = prev.parse().unwrap();
                        let c: usize = cur.parse().unwrap();
                        prop_assert!(c >= p, "node {i} regressed its view of {j}: {p} -> {c}");
                    }
                    if cur.is_some() {
                        *best = cur;
                    }
                }
            }
        }
        // The owner's own view always stays authoritative.
        for (i, t) in truth.iter().enumerate() {
            prop_assert_eq!(
                nodes[i].app_state(NodeId(i as u32), keys::LOAD).map(str::to_string),
                t.clone()
            );
        }
    }

    /// A schedule where every node exchanges with the seed at least twice
    /// converges: everyone knows everyone's final state.
    #[test]
    fn seed_star_schedules_converge(seed_val in 0u64..1000) {
        let seeds = vec![NodeId(0)];
        let mut nodes: Vec<Gossiper> =
            (0..6).map(|i| Gossiper::new(NodeId(i as u32), 1, cfg(seeds.clone()))).collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            node.set_app_state(keys::VNODES, format!("{}", 10 + i));
        }
        let _ = seed_val;
        // Two passes of everyone↔seed.
        for pass in 0..2u64 {
            for i in 1..6 {
                let now = SimTime::from_secs(pass * 10 + i as u64);
                exchange(&mut nodes, i, 0, now);
            }
        }
        for g in &nodes {
            for j in 0..6u32 {
                let expect = format!("{}", 10 + j as usize);
                prop_assert_eq!(
                    g.app_state(NodeId(j), keys::VNODES),
                    Some(expect.as_str()),
                    "node {} missing vnodes of {}", g.id(), j
                );
            }
        }
    }
}
