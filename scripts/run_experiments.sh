#!/usr/bin/env bash
set -euo pipefail
cd "$(dirname "$0")/.."
BINS="table2 fig11 fig12 fig13 fig14 fig15 fig16 fig17 soak ablate_vnodes ablate_remap ablate_nwr ablate_handoff ablate_cache ablate_gossip ablate_antientropy"
for bin in $BINS; do
  echo "=== running $bin ==="
  cargo run --release -q -p mystore-bench --bin "$bin"
done
echo "all experiments done; see results/"
