#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full workspace test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> mystore-lint --check-schema (wire-compat gate)"
# The fast schema stage (DESIGN.md §15): rebuild the tag table from the
# codec sources and diff against crates/lint/schema.lock. A tag renumber,
# layout change, or encode/decode asymmetry fails here before anything
# compiles the full workspace.
cargo run --release -q -p mystore-lint -- --workspace --check-schema

echo "==> mystore-lint --workspace"
# The in-tree static-analysis pass (DESIGN.md §10/§15): determinism, panic
# freedom, atomics hygiene, unguarded decoded-length allocations, and the
# interprocedural lock-order analysis. Fails on any unexempted diagnostic.
cargo run --release -q -p mystore-lint -- --workspace
# The linter itself must still catch the seeded fixture violations; if the
# fixtures ever lint clean, the rules have silently stopped firing.
badcrate_out=$(cargo run --release -q -p mystore-lint -- \
    crates/lint/tests/fixtures/badcrate/src/lib.rs 2>/dev/null) && {
  echo "lint fixture unexpectedly clean — rule engine is broken"
  exit 1
}
for rule in unguarded-alloc lock-order recv-under-lock; do
  if ! grep -q "$rule" <<<"$badcrate_out"; then
    echo "lint fixture no longer trips $rule — the rule has stopped firing"
    exit 1
  fi
done
# Same teeth check for the schema gate: the seeded badwire fixture (tag
# renumber + width change + missing decode arm) must fail its lockfile.
if cargo run --release -q -p mystore-lint -- \
    --check-schema --root crates/lint/tests/fixtures/badwire >/dev/null 2>&1; then
  echo "badwire fixture unexpectedly passed the schema gate"
  exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> quorum engine (driver goldens, CAS, schedule lock)"
# The PR-5 refactor contract: the generic quorum driver must replay the
# pre-refactor retry/backoff schedule bit-identically (quorum_golden) and
# serve CAS through the same engine (rest_frontend/chaos cas tests).
cargo test -p mystore-core quorum -q

echo "==> chaos suite (fixed seed)"
cargo test -p mystore-core --test chaos -q
cargo run --release -p mystore-bench --bin chaos -- 42

echo "==> real-transport runtime (threaded integration + wire smoke)"
# The PR-6 production runtime: the threaded-cluster flow as tests (bounded
# convergence polling, mid-run node kill, graceful drain + WAL durability),
# then the binary wire path end-to-end over real TCP sockets.
cargo test --test threaded_cluster -q
cargo run --release -p mystore-bench --bin bench_net -- --smoke

echo "==> scenario-matrix smoke (idle-clock fast-forward + chaos invariants)"
# The PR-7 matrix runner: a 25-node, 1-virtual-hour kill cell must finish
# with 0 client errors and no acked-write loss (full sweep: --bin matrix).
rm -f results/BENCH_PR7_SMOKE.json
cargo run --release -p mystore-bench --bin matrix -- --smoke
test -s results/BENCH_PR7_SMOKE.json || { echo "matrix smoke wrote no JSON"; exit 1; }
rm -f results/BENCH_PR7_SMOKE.json

echo "==> anti-entropy sync suite (Merkle exchange + regression tests)"
# The PR-8 sync work: Merkle convergence/determinism tests, the
# resurrection-after-reap and rebalance fan-out regressions, and the
# digest-traffic smoke bench (legacy vs tree walk, ratio bar asserted
# inside the binary; full figure: --bin bench_sync without --smoke).
cargo test -p mystore-core --test anti_entropy --test merkle_sync --test rebalance -q
rm -f results/BENCH_PR8_SMOKE.json
cargo run --release -p mystore-bench --bin bench_sync -- --smoke
test -s results/BENCH_PR8_SMOKE.json || { echo "sync smoke wrote no JSON"; exit 1; }
rm -f results/BENCH_PR8_SMOKE.json

echo "==> online elasticity (migration engine + weighted placement)"
# The PR-10 elasticity work: the incremental, rate-limited migration
# engine's test suite (per-tick budget bound, crash-resume from the
# persisted cursor, dual-ownership reads, weighted placement), then the
# cluster-doubling smoke bench — 0 client errors, 0 acked-write loss,
# corpus fully replicated on the new weighted ring (full figure:
# --bin bench_elastic without --smoke).
cargo test -p mystore-core --test elastic -q
rm -f results/BENCH_PR10_SMOKE.json
cargo run --release -p mystore-bench --bin bench_elastic -- --smoke
test -s results/BENCH_PR10_SMOKE.json || { echo "elastic smoke wrote no JSON"; exit 1; }
rm -f results/BENCH_PR10_SMOKE.json

echo "==> write-throughput bench smoke (group commit)"
rm -f results/BENCH_PR3_SMOKE.json
cargo run --release -p mystore-bench --bin bench_pr3 -- --smoke
test -s results/BENCH_PR3_SMOKE.json || { echo "bench smoke wrote no JSON"; exit 1; }
rm -f results/BENCH_PR3_SMOKE.json

echo "CI OK"
