#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full workspace test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos suite (fixed seed)"
cargo test -p mystore-core --test chaos -q
cargo run --release -p mystore-bench --bin chaos -- 42

echo "==> write-throughput bench smoke (group commit)"
rm -f results/BENCH_PR3_SMOKE.json
cargo run --release -p mystore-bench --bin bench_pr3 -- --smoke
test -s results/BENCH_PR3_SMOKE.json || { echo "bench smoke wrote no JSON"; exit 1; }
rm -f results/BENCH_PR3_SMOKE.json

echo "CI OK"
