//! Embedded document store — `mystore-engine` standalone.
//!
//! The paper picked MongoDB as its per-node store because it "can provide
//! complex query functions ... like relational databases" (§2). This
//! example uses the engine directly as an embedded database: collections,
//! secondary indexes, MongoDB-style filters and updates, durable WAL
//! persistence, and crash recovery.
//!
//! ```bash
//! cargo run --example embedded_db
//! ```

use mystore::bson::{doc, Value};
use mystore::engine::query::{Filter, Update};
use mystore::engine::{Db, FindOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("mystore-embedded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("components.wal");
    let _ = std::fs::remove_file(&path);

    // ---- populate a component catalogue ------------------------------------
    {
        let mut db = Db::open(&path).expect("open");
        db.create_index("components", "kind").unwrap();
        db.create_index("components", "ohms").unwrap();
        for (name, kind, ohms, tags) in [
            ("Resistor5", "resistor", Some(470), vec!["smd", "passive"]),
            ("Resistor9", "resistor", Some(10_000), vec!["tht", "passive"]),
            ("Cap33n", "capacitor", None, vec!["smd", "passive"]),
            ("Led3mm", "led", None, vec!["tht", "active"]),
            ("Pot10k", "resistor", Some(10_000), vec!["tht", "variable"]),
        ] {
            let mut d = doc! { "self-key": name, "kind": kind, "tags": Value::from(tags) };
            if let Some(o) = ohms {
                d.insert("ohms", o);
            }
            db.insert_doc("components", d).unwrap();
        }
        println!("catalogue: {} components", db.count("components", &Filter::True).unwrap());

        // Indexed point query.
        let f = Filter::parse(&doc! { "kind": "resistor" }).unwrap();
        let (rows, explain) =
            db.find_explain("components", &f, &FindOptions::default().sort_asc("ohms")).unwrap();
        println!(
            "resistors by ohms (index: {:?}, scanned {}):",
            explain.used_index, explain.scanned
        );
        for r in &rows {
            println!("  {} -> {:?} ohms", r.get_str("self-key").unwrap(), r.get_i64("ohms"));
        }
        assert_eq!(rows.len(), 3);

        // Range + array-membership + boolean combinators.
        let complex = Filter::parse(&doc! {
            "$or": vec![
                Value::Document(doc! { "ohms": doc! { "$gte": 1000 } }),
                Value::Document(doc! { "tags": "active" }),
            ]
        })
        .unwrap();
        let hits = db.find("components", &complex, &FindOptions::default()).unwrap();
        println!("ohms>=1000 OR active: {} hits", hits.len());
        assert_eq!(hits.len(), 3);

        // Update operators.
        let u = Update::parse(&doc! {
            "$set": doc! { "stock.shelf": "B3" },
            "$inc": doc! { "stock.count": 42 },
            "$push": doc! { "tags": "audited" },
        })
        .unwrap();
        let f = Filter::parse(&doc! { "self-key": "Resistor5" }).unwrap();
        db.update_many("components", &f, &u).unwrap();
        let updated = db.find_one("components", &f).unwrap().unwrap();
        println!(
            "after update: shelf={:?} count={:?} tags={:?}",
            updated.get_path("stock.shelf").unwrap(),
            updated.get_path("stock.count").unwrap(),
            updated.get_array("tags").unwrap().len()
        );
        // Db dropped here without a clean shutdown — a "crash".
    }

    // ---- crash recovery ------------------------------------------------------
    let db = Db::open(&path).expect("recover");
    let f = Filter::parse(&doc! { "self-key": "Resistor5" }).unwrap();
    let recovered = db.find_one("components", &f).unwrap().expect("survives recovery");
    assert_eq!(recovered.get_path("stock.count").and_then(Value::as_i64), Some(42));
    let (_, explain) = db
        .find_explain(
            "components",
            &Filter::parse(&doc! { "kind": "capacitor" }).unwrap(),
            &FindOptions::default(),
        )
        .unwrap();
    assert_eq!(explain.used_index.as_deref(), Some("kind"), "indexes rebuilt on recovery");
    println!(
        "recovered from WAL: {} components, indexes intact, stats: {:?}",
        db.count("components", &Filter::True).unwrap(),
        db.stats()
    );

    std::fs::remove_file(&path).ok();
    println!("embedded_db OK");
}
