//! VeePalms — the multi-discipline virtual-experiment platform the paper
//! deploys MyStore under (§1, §6).
//!
//! The platform stores four kinds of unstructured data: XML experiment
//! components, experiment scenes, guideline videos, and experiment reports.
//! This example drives a day-in-the-life slice of that workload with
//! authenticated requests:
//!
//! 1. instructors upload components and scenes (signed POSTs),
//! 2. a large guideline video goes in through the chunked-value extension,
//! 3. a class of students hammers GETs on the hot scene (cache at work),
//! 4. a scene is revised (update) and an obsolete one deleted.
//!
//! ```bash
//! cargo run --example veepalms
//! ```

use mystore::core::chunks;
use mystore::core::prelude::*;
use mystore::core::testing::Probe;
use mystore::core::{sign_request, AuthConfig, Frontend};
use mystore::net::{FaultPlan, NetConfig, NodeConfig, NodeId, SimConfig};

fn main() {
    let mut spec = ClusterSpec::paper_topology();
    spec.frontends = 0; // we add one with authentication enabled
    let warm = spec.warmup_us();
    let mut sim = spec.build_sim(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed: 2026,
    });

    // Authenticated front end: the instructor holds a secret key issued by
    // the platform's web interface (paper Fig. 2).
    let mut fe_cfg = spec.frontend_config();
    fe_cfg.auth = Some(AuthConfig::default().with_user("instructor", "circuits-2026"));
    let mut fe_proc = Frontend::new(fe_cfg);
    // RESTful interfaces are stateless, so every request carries its own
    // single-use token (paper Fig. 2). Pre-issue enough for the session.
    let tokens: Vec<String> = (0..200).map(|_| fe_proc.issue_token("instructor")).collect();
    let fe = sim.add_node(fe_proc, NodeConfig { concurrency: 32 });

    // --- build the signed instructor uploads -------------------------------
    let signed = |req: u64, token: &str, key: &str, body: &[u8]| {
        let sig = sign_request(token, &format!("/data/{key}"), "circuits-2026");
        Msg::RestReq(RestRequest {
            req,
            method: Method::Post,
            key: Some(key.to_string()),
            body: body.to_vec().into(),
            if_match: None,
            auth: Some(("instructor".to_string(), sig)),
        })
    };
    let component = br#"<component id="Resistor5" ohms="470" package="smd"/>"#;
    let scene = br#"<scene id="rc-filter"><use ref="Resistor5"/><use ref="Cap33n"/></scene>"#;

    // A 1.2 MB guideline video, split by the chunked-value extension
    // (paper §7 future work: "segmentation, storage and schedule of large
    // video files").
    let video: Vec<u8> = (0..1_200_000u32).map(|i| (i % 251) as u8).collect();
    let plan = chunks::plan_chunks("video:rc-filter-howto", &video, chunks::DEFAULT_CHUNK_BYTES);
    println!("guideline video: {} bytes -> {} chunks + manifest", video.len(), plan.chunks.len());

    let mut script: Vec<(u64, NodeId, Msg)> = vec![
        (warm, fe, signed(1, &tokens[0], "component:Resistor5", component)),
        (warm + 200_000, fe, signed(2, &tokens[1], "scene:rc-filter", scene)),
    ];
    // Chunk uploads from the media pipeline, each with its own token.
    let mut req = 10u64;
    let mut tok = 4usize;
    for (key, body) in plan.chunks.iter() {
        script.push((warm + 400_000 + req * 20_000, fe, signed(req, &tokens[tok], key, body)));
        req += 1;
        tok += 1;
    }
    script.push((
        warm + 400_000 + req * 20_000,
        fe,
        signed(8, &tokens[tok], "video:rc-filter-howto", &plan.manifest),
    ));
    tok += 1;

    // --- students read the hot scene (and the video manifest) --------------
    for i in 0..60u64 {
        let key = if i % 10 == 0 { "video:rc-filter-howto" } else { "scene:rc-filter" };
        let sig = sign_request(&tokens[tok], &format!("/data/{key}"), "circuits-2026");
        tok += 1;
        script.push((
            warm + 2_000_000 + i * 30_000,
            fe,
            Msg::RestReq(RestRequest {
                req: 100 + i,
                method: Method::Get,
                key: Some(key.into()),
                body: Default::default(),
                if_match: None,
                auth: Some(("instructor".into(), sig)),
            }),
        ));
    }
    // --- revise + retire ------------------------------------------------------
    script.push((
        warm + 5_000_000,
        fe,
        signed(3, &tokens[tok], "scene:rc-filter", b"<scene id=\"rc-filter\" v=\"2\"/>"),
    ));
    tok += 1;
    script.push((
        warm + 5_400_000,
        fe,
        Msg::RestReq(RestRequest {
            req: 4,
            method: Method::Delete,
            key: Some("component:Resistor5".into()),
            body: Default::default(),
            if_match: None,
            auth: Some((
                "instructor".into(),
                sign_request(&tokens[tok], "/data/component:Resistor5", "circuits-2026"),
            )),
        }),
    ));

    let probe = sim.add_node(Probe::new(script), NodeConfig::default());
    sim.start();
    sim.run_for(warm + 8_000_000);

    // --- report ------------------------------------------------------------
    let p = sim.process::<Probe>(probe).expect("probe");
    let ok = p.count_where(|m| matches!(m, Msg::RestResp(r) if r.status < 300));
    let cached = p.count_where(|m| matches!(m, Msg::RestResp(r) if r.from_cache));
    println!("{ok} successful responses, {cached} served from cache");

    // Reassemble the video from what the cluster stores, via a replica scan.
    let any_node = sim.process::<StorageNode>(NodeId(0)).expect("node");
    let manifest = any_node.db().get_record("data", "video:rc-filter-howto").ok().flatten();
    if let Some(m) = manifest {
        println!("video manifest replicated to node 0: {} bytes", m.val.len());
    }
    // Chunks are spread over the ring; count replicas cluster-wide.
    let chunk_replicas: usize = spec
        .storage_ids()
        .iter()
        .map(|&id| {
            let node = sim.process::<StorageNode>(id).unwrap();
            (0..plan.chunks.len())
                .filter(|&i| {
                    node.db()
                        .get_record("data", &chunks::chunk_key("video:rc-filter-howto", i))
                        .ok()
                        .flatten()
                        .is_some()
                })
                .count()
        })
        .sum();
    println!(
        "video chunk replicas across the cluster: {chunk_replicas} ({} chunks x N=3)",
        plan.chunks.len()
    );

    assert!(ok >= 65, "most operations must succeed, got {ok}");
    assert!(cached >= 40, "the hot scene must be served from cache, got {cached}");
    assert_eq!(chunk_replicas, plan.chunks.len() * 3);
    println!("veepalms OK");
}
