//! Failure drill — watch §5.2.4 happen.
//!
//! Timeline:
//!   1. a 6-node cluster converges and takes 200 records,
//!   2. **short failure**: one replica node drops off for 10 s while a
//!      write lands → the coordinator diverts to a fallback (hinted
//!      handoff, Fig. 8), and the hint is written back on recovery,
//!   3. **long failure**: another node breaks down for good → the seed
//!      declares it removed, the ring shrinks, and survivors re-replicate
//!      its ranges (Fig. 9),
//!   4. **node addition**: a fresh node joins → ranges migrate to it.
//!
//! ```bash
//! cargo run --example failure_drill
//! ```

use mystore::core::prelude::*;
use mystore::core::testing::Probe;
use mystore::net::{FaultPlan, NetConfig, NodeConfig, NodeId, SimConfig, SimTime};

fn put(req: u64, key: &str, value: &[u8]) -> Msg {
    Msg::Put { req, key: key.into(), value: value.to_vec().into(), delete: false }
}

fn total_replicas(sim: &mystore::net::Sim<Msg>, nodes: &[NodeId]) -> usize {
    nodes.iter().filter_map(|&id| sim.process::<StorageNode>(id).map(|n| n.record_count())).sum()
}

fn main() {
    // Node 6 exists but stays dark until phase 4 (it "joins" then).
    let spec = ClusterSpec::small(7);
    let mut sim = spec.build_sim(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed: 99,
    });
    sim.schedule_crash(SimTime(0), NodeId(6), None);

    let warm = spec.warmup_us();
    let mut script: Vec<(u64, NodeId, Msg)> = (0..200u64)
        .map(|i| {
            (warm + i * 5_000, NodeId((i % 6) as u32), put(i, &format!("rec-{i}"), b"payload"))
        })
        .collect();
    // The write that will hit the short failure (phase 2).
    script.push((warm + 3_000_000, NodeId(0), put(900, "divert-me", b"short-failure-write")));
    let probe = sim.add_node(Probe::new(script), NodeConfig::default());

    sim.start();
    sim.run_for(warm + 1_500_000);
    let live: Vec<NodeId> = (0..6).map(NodeId).collect();
    println!(
        "phase 1: cluster up, {} records x N=3 = {} replicas",
        200,
        total_replicas(&sim, &live)
    );

    // ---- phase 2: short failure + hinted handoff ---------------------------
    let victim_short = *sim
        .process::<StorageNode>(NodeId(0))
        .unwrap()
        .ring()
        .preference_list(b"divert-me", 3)
        .iter()
        .find(|&&n| n != NodeId(0))
        .expect("replica besides coordinator");
    sim.schedule_crash(SimTime(warm + 2_500_000), victim_short, Some(10_000_000));
    sim.run_for(5_000_000);
    let handoffs: u64 =
        live.iter().map(|&id| sim.process::<StorageNode>(id).unwrap().stats().handoffs_sent).sum();
    let hints: usize =
        live.iter().map(|&id| sim.process::<StorageNode>(id).unwrap().hint_count()).sum();
    println!("phase 2: {victim_short} down briefly -> write diverted ({handoffs} handoffs, {hints} hints parked)");
    sim.run_for(20_000_000);
    let replayed: u64 =
        live.iter().map(|&id| sim.process::<StorageNode>(id).unwrap().stats().hints_replayed).sum();
    let has_it = sim
        .process::<StorageNode>(victim_short)
        .unwrap()
        .db()
        .get_record("data", "divert-me")
        .unwrap()
        .is_some();
    println!("         {victim_short} recovered -> {replayed} hints written back (record present: {has_it})");
    assert!(has_it, "hint must reach the intended replica");

    // ---- phase 3: long failure + re-replication ---------------------------
    let victim_long = NodeId(5);
    println!("phase 3: {victim_long} breaks down permanently...");
    sim.schedule_crash(sim.now() + 1, victim_long, None);
    sim.run_for(spec.remove_after_us + 25_000_000);
    let survivors: Vec<NodeId> = live.iter().copied().filter(|&n| n != victim_long).collect();
    for &id in &survivors {
        assert_eq!(
            sim.process::<StorageNode>(id).unwrap().ring().len(),
            5,
            "{id} must drop the dead node from its ring"
        );
    }
    println!(
        "         seed declared it removed; survivors' rings have 5 members; {} replicas live",
        total_replicas(&sim, &survivors)
    );

    // ---- phase 4: node addition + migration --------------------------------
    println!("phase 4: fresh node n6 joins...");
    sim.schedule_restart(sim.now() + 1, NodeId(6));
    sim.run_for(25_000_000);
    let newcomer = sim.process::<StorageNode>(NodeId(6)).unwrap();
    println!(
        "         n6 ring has {} members and received {} records by migration",
        newcomer.ring().len(),
        newcomer.record_count()
    );
    assert!(newcomer.record_count() > 0, "ranges must migrate to the newcomer");

    // Every original record must still be replicated at N=3 somewhere.
    let mut fully_replicated = 0;
    let final_nodes: Vec<NodeId> = (0..7).map(NodeId).filter(|&n| n != victim_long).collect();
    for i in 0..200u64 {
        let key = format!("rec-{i}");
        let copies = final_nodes
            .iter()
            .filter(|&&id| {
                sim.process::<StorageNode>(id)
                    .unwrap()
                    .db()
                    .get_record("data", &key)
                    .ok()
                    .flatten()
                    .is_some()
            })
            .count();
        if copies >= 3 {
            fully_replicated += 1;
        }
    }
    println!("final: {fully_replicated}/200 records hold >= 3 replicas after the drill");
    assert_eq!(fully_replicated, 200);
    let p = sim.process::<Probe>(probe).unwrap();
    assert_eq!(
        p.count_where(|m| matches!(m, Msg::PutResp { result: Ok(()), .. })),
        201,
        "every write (including the diverted one) must succeed"
    );
    println!("failure drill OK");
}
