//! Quickstart: bring up the paper's Fig. 10 topology on the deterministic
//! simulator, then create, read, update and delete a record through the
//! REST front end.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mystore::core::prelude::*;
use mystore::core::testing::Probe;
use mystore::net::{FaultPlan, NetConfig, NodeConfig, SimConfig};

fn rest(req: u64, method: Method, key: Option<&str>, body: &[u8]) -> Msg {
    Msg::RestReq(RestRequest {
        req,
        method,
        key: key.map(str::to_string),
        body: body.to_vec().into(),
        if_match: None,
        auth: None,
    })
}

fn main() {
    // 1. Describe the deployment: 5 DB nodes (1 seed), 4 cache servers,
    //    1 front end, (N,W,R) = (3,2,1) — exactly the paper's testbed.
    let spec = ClusterSpec::paper_topology();
    println!(
        "topology: {} storage, {} cache, {} front end(s), NWR = (3,2,1)",
        spec.storage_nodes, spec.cache_nodes, spec.frontends
    );

    // 2. Build it on the simulator and add ourselves as a client.
    let mut sim = spec.build_sim(SimConfig {
        net: NetConfig::gigabit_lan(),
        faults: FaultPlan::none(),
        seed: 7,
    });
    let fe = spec.frontend_ids()[0];
    let warm = spec.warmup_us();
    let probe = sim.add_node(
        Probe::new(vec![
            (warm, fe, rest(1, Method::Post, Some("Resistor5"), b"<component ohms=\"470\"/>")),
            (warm + 300_000, fe, rest(2, Method::Get, Some("Resistor5"), b"")),
            (warm + 600_000, fe, rest(3, Method::Get, Some("Resistor5"), b"")),
            (
                warm + 900_000,
                fe,
                rest(4, Method::Post, Some("Resistor5"), b"<component ohms=\"220\"/>"),
            ),
            (warm + 1_200_000, fe, rest(5, Method::Get, Some("Resistor5"), b"")),
            (warm + 1_500_000, fe, rest(6, Method::Delete, Some("Resistor5"), b"")),
            (warm + 1_800_000, fe, rest(7, Method::Get, Some("Resistor5"), b"")),
        ]),
        NodeConfig::default(),
    );

    // 3. Run: gossip converges, then our script plays out.
    sim.start();
    sim.run_for(warm + 3_000_000);

    // 4. Inspect the responses.
    let p = sim.process::<Probe>(probe).expect("probe");
    for (at, _, msg) in &p.responses {
        if let Msg::RestResp(r) = msg {
            println!(
                "t={at} req={} -> {} {}{}",
                r.req,
                r.status,
                String::from_utf8_lossy(&r.body),
                if r.from_cache { " (from cache)" } else { "" },
            );
        }
    }

    // 5. And the cluster's own accounting.
    for id in spec.storage_ids() {
        let node = sim.process::<StorageNode>(id).expect("storage node");
        let s = node.stats();
        println!(
            "{id}: {} records, coordinated {} puts / {} gets",
            node.record_count(),
            s.puts_ok,
            s.gets_ok
        );
    }

    let ok = p.count_where(|m| matches!(m, Msg::RestResp(r) if r.status < 300));
    let not_found =
        p.count_where(|m| matches!(m, Msg::RestResp(r) if r.status == status::NOT_FOUND));
    assert_eq!(ok, 6, "create/read/read/update/read/delete must succeed");
    assert_eq!(not_found, 1, "the final read must be 404 after DELETE");
    println!("quickstart OK");
}
