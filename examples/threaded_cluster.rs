//! Threaded cluster — the same storage nodes on real OS threads.
//!
//! Everything else in the examples runs on the deterministic simulator;
//! this one runs the identical `StorageNode` state machines on the threaded
//! runtime (one thread per node, channels as links) and talks to them from
//! the main thread, demonstrating that the sans-io design really is
//! runtime-agnostic.
//!
//! ```bash
//! cargo run --example threaded_cluster
//! ```

use std::time::Duration;

use mystore::core::prelude::*;
use mystore::gossip::GossipConfig;
use mystore::net::{NodeId, ThreadedClusterBuilder, ThreadedConfig};
use mystore::server::await_ring_convergence;

fn main() {
    // Five storage nodes; node 0 is the gossip seed.
    let gossip = GossipConfig {
        interval_us: 50_000, // 50 ms rounds: converge fast in real time
        fail_after_us: 400_000,
        remove_after_us: 5_000_000,
        seeds: vec![NodeId(0)],
        extra_fanout: 1,
        idle_backoff_max: 1,
    };
    let mut builder = ThreadedClusterBuilder::new(ThreadedConfig::default());
    for i in 0..5u32 {
        let cfg = StorageConfig {
            gossip: gossip.clone(),
            vnodes: 64,
            replica_timeout_us: 100_000,
            request_deadline_us: 2_000_000,
            ..StorageConfig::default()
        };
        builder = builder.add_node(StorageNode::new(NodeId(i), cfg));
    }
    let cluster = builder.build();
    println!("spawned {} node threads; waiting for gossip to converge...", cluster.len());
    // Poll each node's ring view instead of sleeping a fixed interval:
    // bounded above by the timeout, done the moment the ring actually forms.
    let expected: Vec<NodeId> = (0..5).map(NodeId).collect();
    let took = await_ring_convergence(&cluster, &expected, Duration::from_secs(10))
        .expect("ring convergence");
    println!("ring converged in {took:?}");

    // Write 50 records through different coordinators.
    for i in 0..50u64 {
        cluster.send(
            NodeId((i % 5) as u32),
            Msg::Put {
                req: i,
                key: format!("threaded-{i}"),
                value: format!("value-{i}").into_bytes().into(),
                delete: false,
            },
        );
    }
    let mut put_ok = 0;
    while put_ok < 50 {
        match cluster.recv_timeout(Duration::from_secs(5)) {
            Ok((_, Msg::PutResp { result: Ok(()), .. })) => put_ok += 1,
            Ok((_, Msg::PutResp { result: Err(e), .. })) => panic!("put failed: {e}"),
            Ok(_) => {}
            Err(e) => panic!("no reply waiting for put acks ({put_ok}/50): {e}"),
        }
    }
    println!("50/50 quorum writes acknowledged");

    // Read them back through yet other coordinators.
    for i in 0..50u64 {
        cluster.send(
            NodeId(((i + 2) % 5) as u32),
            Msg::Get { req: 1000 + i, key: format!("threaded-{i}") },
        );
    }
    let mut get_ok = 0;
    while get_ok < 50 {
        match cluster.recv_timeout(Duration::from_secs(5)) {
            Ok((_, Msg::GetResp { req, result: Ok(Some(v)) })) => {
                assert_eq!(*v, format!("value-{}", req - 1000).into_bytes());
                get_ok += 1;
            }
            Ok((_, Msg::GetResp { result, .. })) => panic!("unexpected get result: {result:?}"),
            Ok(_) => {}
            Err(e) => panic!("no reply waiting for reads ({get_ok}/50): {e}"),
        }
    }
    println!("50/50 reads returned the written values");

    cluster.shutdown();
    println!("threaded_cluster OK");
}
